"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro <experiment> [--scale small|medium|large] [options]
    repro fig4 --scale medium
    repro fig5 --profile               # append a stage breakdown
    repro stats --experiment fig5      # live telemetry + exporters

Experiment names come from :mod:`repro.experiments.registry`; the parser is
built from that table, so registering a new experiment there is all it
takes to appear here (and in ``repro all``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _scale_arg(parser: argparse.ArgumentParser, default: str = "medium") -> None:
    parser.add_argument(
        "--scale",
        choices=("small", "medium", "large"),
        default=default,
        help="experiment scale (see DESIGN.md section 5)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the workload seed (default: the scale's seed)",
    )


def _experiment_args(parser: argparse.ArgumentParser, default: str) -> None:
    _scale_arg(parser, default)
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect per-stage wall times and append the breakdown",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run bitmap filters on a parallel backend with N worker "
             "processes (results are bit-for-bit identical to serial; "
             "see docs/parallel.md)",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "sharded", "shared"),
        default=None,
        help="execution backend for bitmap filters (default: sharded when "
             "--workers is given, serial otherwise)",
    )
    _filter_arg(parser)


def _filter_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--filter",
        choices=("bitmap", "hybrid"),
        default="bitmap",
        help="filter stack: the plain {k×n}-bitmap, or hybrid — every "
             "bitmap admit confirmed against an exact cuckoo flow table "
             "(see docs/verification.md)",
    )


def _resolve_scale(args: argparse.Namespace):
    """The selected scale, with an optional --seed override applied."""
    from dataclasses import replace

    from repro.experiments.config import get_scale

    scale = get_scale(args.scale)
    if getattr(args, "seed", None) is not None:
        scale = replace(scale, seed=args.seed)
    return scale


def _run_one(name: str, args: argparse.Namespace) -> str:
    result = run_experiment(
        name,
        args.scale,
        seed=getattr(args, "seed", None),
        profile=getattr(args, "profile", False),
    )
    return result.report()


def _cmd_stats(args: argparse.Namespace) -> str:
    """Run an experiment under a live registry with periodic summaries.

    While the run progresses, a one-line summary of admits/drops/marks/
    rotations prints every ``--every`` simulated Δt ticks.  Afterwards the
    full registry is exported in Prometheus text format and as a JSON-lines
    time series (inline, or to ``--prom-out``/``--jsonl-out`` files).

    ``--from-url`` skips the experiment entirely and instead fetches a live
    daemon's ``/metrics`` page, pretty-printing it (optionally filtered by
    ``--prefix``).
    """
    from repro.telemetry import (
        JsonLinesSampler,
        LiveSummarySampler,
        to_prometheus,
        use_registry,
    )

    if args.from_url:
        import urllib.request

        from repro.telemetry import summarize_prometheus

        url = args.from_url
        if "://" not in url:
            url = "http://" + url
        if not url.rstrip("/").endswith("/metrics"):
            url = url.rstrip("/") + "/metrics"
        with urllib.request.urlopen(url, timeout=10.0) as response:
            text = response.read().decode("utf-8", "replace")
        return f"{url}:\n\n" + summarize_prometheus(text, prefix=args.prefix)
    if not args.experiment_name:
        raise SystemExit("stats: pass --experiment NAME or --from-url URL")

    with use_registry() as registry:
        jsonl = JsonLinesSampler()
        registry.add_sampler(jsonl)
        registry.add_sampler(LiveSummarySampler(every=args.every))
        result = run_experiment(
            args.experiment_name,
            args.scale,
            seed=args.seed,
            profile=args.profile,
        )
        prom_text = to_prometheus(registry)
        jsonl_text = jsonl.to_jsonl()

    sections = [result.report()]
    if args.prom_out:
        with open(args.prom_out, "w") as fh:
            fh.write(prom_text)
        sections.append(f"wrote Prometheus metrics to {args.prom_out}")
    else:
        sections.append("--- prometheus ---\n" + prom_text.rstrip("\n"))
    if args.jsonl_out:
        with open(args.jsonl_out, "w") as fh:
            fh.write(jsonl_text)
        sections.append(f"wrote {len(jsonl.rows)} JSON-lines samples "
                        f"to {args.jsonl_out}")
    else:
        sections.append("--- jsonl ---\n" + jsonl_text.rstrip("\n"))
    return "\n\n".join(sections)


def _cmd_trace_gen(args: argparse.Namespace) -> str:
    from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig

    config = WorkloadConfig(duration=args.duration, target_pps=args.pps,
                            seed=args.seed)
    trace = ClientNetworkWorkload(config).generate()
    trace.save_npz(args.out)
    lines = [f"wrote {args.out}: {trace.summary().describe()}"]
    if args.pcap:
        from repro.net.pcap import write_pcap

        count = write_pcap(trace.packets, args.pcap)
        lines.append(f"wrote {args.pcap}: {count} packets (linktype RAW)")
    return "\n".join(lines)


def _cmd_filter(args: argparse.Namespace) -> str:
    """Run a bitmap filter over a saved trace/capture, write the survivors."""
    from repro.core.bitmap_filter import FilterConfig
    from repro.core.filter_api import build_filter
    from repro.net.address import AddressSpace
    from repro.traffic.trace import Trace

    if args.input.endswith(".pcap"):
        from repro.net.pcap import read_pcap

        if not args.protected:
            raise SystemExit("--protected is required for pcap input "
                             "(e.g. --protected 172.16.0.0/24,172.16.1.0/24)")
        packets = read_pcap(args.input).sorted_by_time()
        protected = AddressSpace(args.protected.split(","))
        trace = Trace(packets, protected)
    else:
        trace = Trace.load_npz(args.input)
        if args.protected:
            trace = Trace(trace.packets, AddressSpace(args.protected.split(",")),
                          trace.metadata)

    config = FilterConfig(
        order=args.order, num_vectors=args.k, num_hashes=args.m,
        rotation_interval=args.dt, seed=args.hash_seed,
        layers=("verify",) if args.filter == "hybrid" else ())
    filt = build_filter(config, trace.protected, backend="serial")
    verdicts = filt.process_batch(trace.packets, exact=True)

    lines = [
        f"filter: {filt}",
        f"packets: {len(trace.packets)}  passed: {int(verdicts.sum())}  "
        f"dropped: {int((~verdicts).sum())}",
        f"incoming drop rate: {filt.stats.incoming_drop_rate * 100:.2f}%",
        f"peak utilization: {filt.peak_utilization:.4f}",
    ]
    if args.filter == "hybrid":
        lines.append(
            f"verification: {filt.confirmed} admits confirmed, "
            f"{filt.denied} false admits denied "
            f"(table {filt.table.occupancy}/{filt.table.capacity} slots, "
            f"{filt.table.memory_bytes / 1024:.1f} KiB)")
    if args.out:
        survivors = trace.packets[verdicts]
        if args.out.endswith(".pcap"):
            from repro.net.pcap import write_pcap

            write_pcap(survivors, args.out)
        else:
            Trace(survivors, trace.protected,
                  dict(trace.metadata)).save_npz(args.out)
        lines.append(f"wrote {int(verdicts.sum())} surviving packets to {args.out}")
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> str:
    """Run the online filtering daemon until SIGTERM/SIGINT."""
    import asyncio
    import json

    from repro.core.bitmap_filter import FilterConfig
    from repro.core.resilience import FailPolicy
    from repro.net.address import AddressSpace
    from repro.serve import FilterDaemon, ServeConfig

    config = ServeConfig(
        filter=FilterConfig(
            order=args.order, num_vectors=args.k, num_hashes=args.m,
            rotation_interval=args.dt, seed=args.hash_seed,
            fail_policy=FailPolicy(args.fail_policy),
            layers=("verify",) if args.filter == "hybrid" else ()),
        protected=AddressSpace(args.protected.split(",")),
        host=args.host, port=args.port, unix_path=args.unix,
        http_host=args.http_host, http_port=args.http_port,
        http=not args.no_http,
        workers=args.workers or 0,
        backend=args.backend or "auto",
        clock=args.clock,
        exact=not args.windowed,
        backpressure=args.backpressure,
        queue_frames=args.queue_frames,
        batch_max_packets=args.batch_max_packets,
        snapshot_path=args.snapshot,
        restore_path=args.restore,
        reload_path=args.reload_config,
    )

    async def run() -> None:
        daemon = FilterDaemon(config)
        await daemon.start()
        daemon.install_signal_handlers()
        ready = {
            "data": list(daemon.data_address),
            "unix": daemon.unix_address,
            "http": list(daemon.http_address) if daemon.http_address else None,
            "backend": daemon.backend,
            "clock": config.clock,
        }
        # Machine-readable readiness line: supervisors and the smoke tests
        # wait for it before connecting.
        print("REPRO-SERVE READY " + json.dumps(ready), flush=True)
        await daemon.serve_forever()

    asyncio.run(run())
    return "repro-serve: drained and exited cleanly"


def _cmd_route(args: argparse.Namespace) -> str:
    """Consistent-hash ring math: who owns which flows, and what moves.

    Given node names and a key source (explicit addresses, a saved trace,
    or a uniform sample), prints each node's share; ``--drop NODE``
    additionally shows the remap a node's departure causes — consistent
    hashing guarantees only the departed node's share moves, and this
    command shows it.
    """
    import numpy as np

    from repro.fleet.ring import HashRing
    from repro.net.address import format_ipv4, parse_ipv4

    names = [name for name in args.nodes.split(",") if name]
    if not names:
        raise SystemExit("route: --nodes needs at least one name")
    ring = HashRing(names, replicas=args.replicas, seed=args.ring_seed)

    if args.addr:
        keys = np.array([parse_ipv4(a) for a in args.addr.split(",")],
                        dtype=np.uint64)
        labels = [format_ipv4(int(k)) for k in keys]
    elif args.trace:
        from repro.net.packet import DIRECTION_INCOMING
        from repro.traffic.trace import Trace

        trace = Trace.load_npz(args.trace)
        directions = trace.packets.directions(trace.protected)
        incoming = directions == DIRECTION_INCOMING
        keys = np.where(incoming, trace.packets.dst,
                        trace.packets.src).astype(np.uint64)
        labels = None
    else:
        rng = np.random.default_rng(args.sample_seed)
        keys = rng.integers(0, 2 ** 32, size=args.sample, dtype=np.uint64)
        labels = None

    lines = [f"ring: {len(names)} nodes x {args.replicas} replicas "
             f"(seed {args.ring_seed:#x}), {len(keys)} keys"]
    if labels is not None:
        owners = ring.owners_of(keys)
        for label, owner in zip(labels, owners):
            lines.append(f"  {label} -> {owner}")
        return "\n".join(lines)

    shares = ring.shares(keys)
    total = max(len(keys), 1)
    for name in ring.nodes:
        count = shares[name]
        lines.append(f"  {name:<16} {count:>10} keys  {count / total:7.2%}")
    if args.drop:
        if args.drop not in ring:
            raise SystemExit(f"route: --drop {args.drop!r} not in --nodes")
        before = np.asarray(ring.owners_of(keys))
        ring.remove(args.drop)
        after = np.asarray(ring.owners_of(keys))
        moved = before != after
        stray = int((moved & (before != args.drop)).sum())
        lines.append(
            f"dropping {args.drop}: {int(moved.sum())} keys remap "
            f"({int(moved.sum()) / total:.2%}; owned share was "
            f"{shares[args.drop] / total:.2%}); "
            f"{stray} keys moved that it did not own"
            + (" — NOT minimal!" if stray else " (minimal remap)"))
    return "\n".join(lines)


def _cmd_replay_fleet(args: argparse.Namespace) -> str:
    """Drive a whole fleet: spawn (or target) N daemons, route, verify.

    ``--fleet N`` spawns an ephemeral N-daemon fleet (packet clock, so
    verdicts are deterministic); ``--fleet-nodes`` targets a running one.
    ``--verify`` proves fleet verdicts byte-identical to a single-filter
    offline replay while healthy; with ``--kill-node I`` a daemon is
    SIGKILLed mid-replay and the check becomes: divergence confined to
    the dead node's flows, every diverged verdict equal to the fail
    policy's answer, and zero client hangs.

    ``--reconfig-order N`` runs a **rolling geometry reconfig**
    mid-replay (``FleetManager.rolling_reconfig``): the verify twin
    becomes ``run_filter_with_reconfig`` rebuilding at the same shared
    boundary, and the check stays byte-identity.  ``--add-node`` scales
    the fleet out by one store-pre-warmed node mid-replay: the check is
    divergence confined to the arrival's stolen share, plus a nonzero
    ``restored_arrivals`` in its ``/healthz`` (proof it served warm).
    """
    import tempfile
    import time as _time

    import numpy as np

    from repro.core.resilience import FailPolicy
    from repro.fleet import FleetManager, FleetRouter, NodeSpec, policy_verdicts
    from repro.serve.retry import RetryPolicy
    from repro.traffic.trace import Trace

    trace = Trace.load_npz(args.trace)
    packets = trace.packets.sorted_by_time()
    fail_policy = FailPolicy(args.fail_policy)
    manager = None
    try:
        if args.fleet:
            protected = ",".join(str(net)
                                 for net in trace.protected.networks)
            manager = FleetManager(
                protected, size=args.fleet,
                workdir=tempfile.mkdtemp(prefix="repro-fleet-"),
                fail_policy=args.fail_policy,
                filter_kind=getattr(args, "filter", "bitmap"),
                backend=getattr(args, "backend", None))
            specs = manager.start()
        else:
            specs = []
            for index, endpoint in enumerate(args.fleet_nodes.split(",")):
                host, _, port = endpoint.rpartition(":")
                specs.append(NodeSpec(name=f"node{index}", host=host,
                                      port=int(port)))
        router = FleetRouter(
            specs, protected=trace.protected, fail_policy=fail_policy,
            retry=RetryPolicy(max_attempts=2, base_delay=0.05,
                              max_delay=0.5, deadline=5.0),
            failure_threshold=3, reset_timeout=1.0,
            request_timeout=args.fleet_timeout,
            connect_timeout=args.fleet_timeout)
        with router:
            info = router.fleet_config()  # raises loudly on geometry skew
            step = args.frame_packets
            frames = [packets[i:i + step]
                      for i in range(0, len(packets), step)]
            kill_name = None
            kill_frame = len(frames)
            reconfig = getattr(args, "reconfig_order", None)
            add_node = getattr(args, "add_node", False)
            if (args.kill_node is not None) + bool(reconfig) + add_node > 1:
                raise SystemExit(
                    "replay-to: --kill-node, --reconfig-order and "
                    "--add-node are mutually exclusive")
            if (reconfig or add_node) and manager is None:
                raise SystemExit(
                    "replay-to: --reconfig-order/--add-node require "
                    "--fleet (the driver must own the daemon processes)")
            if args.kill_node is not None:
                if manager is None:
                    raise SystemExit(
                        "replay-to: --kill-node requires --fleet (the "
                        "driver must own the daemon processes to kill one)")
                kill_name = router.ring.nodes[args.kill_node]
                kill_frame = max(1, int(len(frames) * args.kill_at))
            event_frame = (max(1, int(len(frames) * args.reconfig_at))
                           if (reconfig or add_node) else len(frames))
            reconfig_report = None
            add_report = None
            old_fcfg = dict(info["filter"])
            old_fcfg.pop("fail_policy")
            began = _time.perf_counter()
            if reconfig or add_node:
                masks = router.filter_batches(frames[:event_frame],
                                              window=args.window)
                if reconfig:
                    from repro.core.bitmap_filter import FilterConfig

                    new_fcfg = dict(old_fcfg, order=reconfig)
                    reconfig_report = manager.rolling_reconfig(
                        FilterConfig(**new_fcfg, fail_policy=fail_policy))
                else:
                    add_report = manager.add_node(router)
                masks += router.filter_batches(frames[event_frame:],
                                               window=args.window)
            else:
                masks = router.filter_batches(frames[:kill_frame],
                                              window=args.window)
                if kill_name is not None:
                    manager.kill(kill_name)
                    masks += router.filter_batches(frames[kill_frame:],
                                                   window=args.window)
            elapsed = _time.perf_counter() - began
        verdicts = (np.concatenate(masks) if masks
                    else np.zeros(0, dtype=bool))
        pps = len(packets) / elapsed if elapsed > 0 else float("inf")
        owner_names = np.asarray(router.owner_names(packets))
        lines = [
            f"fleet: {len(specs)} nodes, policy {fail_policy.value}, "
            f"clock {info['clock']}",
            f"streamed {len(packets)} packets in {len(frames)} frames "
            f"over {elapsed:.3f}s ({pps:,.0f} packets/s)",
            f"passed: {int(verdicts.sum())}  "
            f"dropped: {int((~verdicts).sum())}",
        ]
        for spec in router.nodes:
            owned = int((owner_names == spec.name).sum())
            suffix = "  [KILLED]" if spec.name == kill_name else ""
            lines.append(f"  {spec.name:<8} {spec.endpoint:<22} "
                         f"{owned:>8} packets{suffix}")
        if reconfig_report is not None:
            lines.append(
                f"rolling reconfig: order -> {reconfig} on "
                f"{len(reconfig_report.nodes)} nodes at shared boundary "
                f"t={reconfig_report.rebuild_at:g}")
        if add_report is not None:
            health = manager.healthz(add_report.spec.name)
            stolen = ", ".join(f"{donor}:{count}" for donor, count
                               in sorted(add_report.stolen.items()))
            source = (f"warm from {add_report.restored_from.path.name}"
                      if add_report.warm else "cold (store was empty)")
            lines.append(
                f"scale-out: {add_report.spec.name} joined {source}; "
                f"stolen share by donor: {stolen}; "
                f"restored_arrivals={health['restored_arrivals']}")
        if args.verify:
            if info["clock"] != "packet":
                lines.append(
                    "verify: SKIPPED — fleet daemons stamp arrival times "
                    "(clock=wall); run them with --clock packet to verify")
                return "\n".join(lines)
            if reconfig_report is not None:
                from repro.core.bitmap_filter import FilterConfig
                from repro.sim.pipeline import run_filter_with_reconfig

                reference = np.asarray(run_filter_with_reconfig(
                    FilterConfig(**old_fcfg, fail_policy=fail_policy),
                    reconfig_report.config,
                    Trace(packets, trace.protected),
                    reconfig_report.rebuild_at,
                    exact=info["exact"]), dtype=bool)
                if np.array_equal(verdicts, reference):
                    lines.append(
                        f"verify: OK — {len(verdicts)} fleet verdicts "
                        "byte-identical to offline replay through the "
                        "rolling reconfig (rebuild at shared boundary "
                        f"t={reconfig_report.rebuild_at:g})")
                else:
                    diff = int((verdicts != reference).sum())
                    lines.append(f"verify: MISMATCH on {diff} of "
                                 f"{len(verdicts)} verdicts across the "
                                 "rolling reconfig")
                    raise SystemExit("\n".join(lines))
                return "\n".join(lines)
            reference = _offline_reference(info, packets)
            if add_report is not None:
                cut = sum(len(frame) for frame in frames[:event_frame])
                diverged = np.flatnonzero(verdicts != reference)
                foreign = [i for i in diverged
                           if i < cut
                           or owner_names[i] != add_report.spec.name]
                if foreign:
                    lines.append(
                        f"verify: FAIL — {len(foreign)} diverged verdicts "
                        "outside the arrival's stolen share (e.g. packet "
                        f"{foreign[0]} owned by {owner_names[foreign[0]]})")
                    raise SystemExit("\n".join(lines))
                if diverged.size == 0:
                    lines.append(
                        f"verify: OK — {len(verdicts)} verdicts identical "
                        "to offline replay straight through the scale-out")
                else:
                    lines.append(
                        f"verify: DEGRADED-CONSISTENT — {len(diverged)} "
                        "verdicts diverged, all on the stolen share "
                        f"{add_report.spec.name} now owns (warm-started "
                        "state approximates the donors' marks)")
                return "\n".join(lines)
            if kill_name is None:
                if np.array_equal(verdicts, reference):
                    lines.append(
                        f"verify: OK — {len(verdicts)} fleet verdicts "
                        "byte-identical to single-filter offline replay")
                else:
                    diff = int((verdicts != reference).sum())
                    lines.append(f"verify: MISMATCH on {diff} of "
                                 f"{len(verdicts)} verdicts")
                    raise SystemExit("\n".join(lines))
            else:
                diverged = np.flatnonzero(verdicts != reference)
                foreign = [i for i in diverged
                           if owner_names[i] != kill_name]
                policy_ref = policy_verdicts(packets, trace.protected,
                                             fail_policy)
                inconsistent = [i for i in diverged
                                if verdicts[i] != policy_ref[i]]
                if foreign:
                    lines.append(
                        f"verify: FAIL — {len(foreign)} diverged verdicts "
                        f"belong to surviving nodes (e.g. packet "
                        f"{foreign[0]} owned by {owner_names[foreign[0]]})")
                    raise SystemExit("\n".join(lines))
                if inconsistent:
                    lines.append(
                        f"verify: FAIL — {len(inconsistent)} diverged "
                        "verdicts do not match the fail policy")
                    raise SystemExit("\n".join(lines))
                lines.append(
                    f"verify: DEGRADED-CONSISTENT — {len(diverged)} "
                    f"verdicts diverged after killing {kill_name}, all "
                    f"owned by it and all equal to the "
                    f"{fail_policy.value} policy answer")
        return "\n".join(lines)
    finally:
        if manager is not None:
            manager.shutdown()


def _offline_reference(info: dict, packets) -> "np.ndarray":
    """Single-filter offline verdicts for a daemon self-description."""
    import numpy as np

    from repro.core.bitmap_filter import FilterConfig
    from repro.core.filter_api import build_filter
    from repro.core.resilience import FailPolicy
    from repro.net.address import AddressSpace
    from repro.sim.pipeline import run_filter_on_trace
    from repro.traffic.trace import Trace

    # The self-description carries the whole stack (geometry + layers), so
    # the twin reproduces a hybrid daemon's verification tier too.
    fcfg = dict(info["filter"])
    policy = FailPolicy(fcfg.pop("fail_policy"))
    twin = build_filter(FilterConfig(**fcfg), AddressSpace(info["protected"]),
                        fail_policy=policy, backend="serial")
    offline = run_filter_on_trace(
        twin, Trace(packets, AddressSpace(info["protected"])),
        exact=info["exact"])
    return np.asarray(offline.verdicts, dtype=bool)


def _cmd_replay_to(args: argparse.Namespace) -> str:
    """Stream a saved trace through a live daemon (the load driver).

    With ``--verify`` the daemon's verdicts are compared bit-for-bit
    against an offline ``run_filter_on_trace`` twin built from the
    daemon's own FT_CONFIG self-description — the online-equals-offline
    differential check.
    """
    import time as _time

    import numpy as np

    from repro.serve.client import FilterClient
    from repro.traffic.trace import Trace

    trace = Trace.load_npz(args.trace)
    packets = trace.packets.sorted_by_time()
    if args.unix:
        client = FilterClient.connect_unix(args.unix)
    else:
        client = FilterClient.connect(args.host, args.port)
    with client:
        info = client.config()
        step = args.frame_packets
        frames = [packets[i:i + step] for i in range(0, len(packets), step)]
        began = _time.perf_counter()
        masks: List[np.ndarray] = []
        for _ in range(args.repeat):
            masks = list(client.filter_stream(frames, window=args.window))
        elapsed = _time.perf_counter() - began
    verdicts = (np.concatenate(masks) if masks
                else np.zeros(0, dtype=bool))
    total = len(packets) * args.repeat
    pps = total / elapsed if elapsed > 0 else float("inf")
    lines = [
        f"streamed {total} packets in {len(frames) * args.repeat} frames "
        f"over {elapsed:.3f}s ({pps:,.0f} packets/s)",
        f"daemon: backend={info['backend']} workers={info['workers']} "
        f"clock={info['clock']} backpressure={info['backpressure']}",
        f"passed: {int(verdicts.sum())}  dropped: {int((~verdicts).sum())}",
    ]
    if args.verify:
        if info["clock"] != "packet":
            lines.append(
                "verify: SKIPPED — the daemon stamps arrival times "
                "(clock=wall), so offline replay is not comparable; "
                "run the daemon with --clock packet to verify")
        else:
            from repro.core.bitmap_filter import FilterConfig
            from repro.core.filter_api import build_filter
            from repro.core.resilience import FailPolicy
            from repro.net.address import AddressSpace
            from repro.sim.pipeline import run_filter_on_trace

            fcfg = dict(info["filter"])
            policy = FailPolicy(fcfg.pop("fail_policy"))
            twin = build_filter(
                FilterConfig(**fcfg), AddressSpace(info["protected"]),
                fail_policy=policy, backend="serial")
            offline = run_filter_on_trace(
                twin, Trace(packets, AddressSpace(info["protected"])),
                exact=info["exact"])
            reference = np.asarray(offline.verdicts, dtype=bool)
            if args.repeat != 1:
                lines.append("verify: SKIPPED — --repeat reuses filter "
                             "state across passes; verify with --repeat 1")
            elif np.array_equal(verdicts, reference):
                lines.append(f"verify: OK — {len(verdicts)} verdicts "
                             "byte-identical to offline replay")
            else:
                diff = int((verdicts != reference).sum())
                lines.append(f"verify: MISMATCH on {diff} of "
                             f"{len(verdicts)} verdicts")
                raise SystemExit("\n".join(lines))
    return "\n".join(lines)


def _cmd_fleet_stats(args: argparse.Namespace) -> str:
    """Scrape every node's /metrics page and merge into one fleet view.

    Counters and histograms sum across nodes (the fleet-wide totals);
    every instrument also appears under a ``node`` label for the
    per-node breakdown.  Gauges stay per-node only — summing uptimes is
    not a fleet uptime.
    """
    import urllib.request

    from repro.telemetry.exporters import summarize_prometheus, to_prometheus
    from repro.telemetry.merge import aggregate_fleet

    pages: Dict[str, str] = {}
    down: List[str] = []
    for index, endpoint in enumerate(args.nodes.split(",")):
        url = endpoint.strip()
        if not url.startswith("http://") and not url.startswith("https://"):
            url = "http://" + url
        url = url.rstrip("/")
        if not url.endswith("/metrics"):
            url += "/metrics"
        try:
            with urllib.request.urlopen(url, timeout=args.timeout) as resp:
                pages[f"node{index}"] = resp.read().decode()
        except OSError as exc:
            # One sick node must not abort the whole scrape: report it
            # DOWN and merge whoever answered.
            down.append(f"node{index} ({url}): {exc}")
    if not pages:
        raise SystemExit("fleet-stats: every node unreachable:\n  "
                         + "\n  ".join(down))
    merged = to_prometheus(aggregate_fleet(pages))
    summary = summarize_prometheus(merged, args.prefix).splitlines()
    unified = [line for line in summary if 'node="' not in line]
    per_node = [line for line in summary if 'node="' in line]
    header = f"fleet: {len(pages)} nodes scraped"
    if down:
        header += f", {len(down)} DOWN"
    lines = [header]
    lines += [f"  DOWN {entry}" for entry in down]
    lines += ["", "fleet-wide:"]
    lines += ["  " + line for line in unified] or ["  (no metrics)"]
    lines += ["", "per-node breakdown:"]
    lines += ["  " + line for line in per_node] or ["  (no metrics)"]
    return "\n".join(lines)


def _multisite_args(parser: argparse.ArgumentParser) -> None:
    """The scenario-engine options layered on the multisite experiment."""
    parser.add_argument("--topologies", default="fat-tree,multi-isp,cross-dc",
                        help="comma-separated topology kinds to run")
    parser.add_argument("--mixes", default="web-search,data-mining",
                        help="comma-separated traffic mixes to run")
    parser.add_argument("--num-sites", type=int, default=3,
                        help="client sites per scenario")
    parser.add_argument("--scenario", default=None, metavar="PATH",
                        help="run one TOML scenario spec instead of the "
                             "topology x mix matrix")
    parser.add_argument("--preset", default=None, metavar="NAME",
                        help="run one named preset scenario "
                             "(see repro.scenarios.PRESETS)")
    parser.add_argument("--online", default=None, metavar="DIR",
                        help="replay each scenario against a live per-site "
                             "daemon fleet (one ephemeral daemon per site); "
                             "DIR holds fleet workdirs + the snapshot store")
    parser.add_argument("--verify", action="store_true",
                        help="with --online: assert verdict byte-identity "
                             "against the offline twin (including roaming "
                             "snapshot handoffs)")


def _cmd_multisite(args: argparse.Namespace) -> str:
    """Run scenarios (matrix, preset, or TOML file), offline or online."""
    from pathlib import Path

    from repro.experiments.multisite import scenario_matrix
    from repro.scenarios import PRESETS, build_scenario, load_scenario
    from repro.scenarios.runner import ScenarioOutcome, run_offline

    if args.verify and args.online is None:
        raise SystemExit("multisite: --verify requires --online")
    if args.scenario is not None:
        specs = [load_scenario(args.scenario)]
    elif args.preset is not None:
        try:
            specs = [PRESETS[args.preset]]
        except KeyError:
            raise SystemExit(
                f"multisite: unknown preset {args.preset!r}; known: "
                f"{', '.join(sorted(PRESETS))}") from None
    else:
        specs = scenario_matrix(
            _resolve_scale(args),
            topologies=tuple(t.strip() for t in args.topologies.split(",")),
            mixes=tuple(m.strip() for m in args.mixes.split(",")),
            num_sites=args.num_sites)

    reports = []
    for spec in specs:
        run = build_scenario(spec)
        if args.online is not None:
            from repro.scenarios.online import run_online

            workdir = Path(args.online) / spec.name.replace("/", "-")
            online = run_online(run, workdir=workdir, verify=args.verify)
            text = ScenarioOutcome(
                spec=spec, sites=online.sites, roamers=online.roamers,
                aggregate=online.aggregate).report()
            text += "\nonline: one daemon per site (packet clock)"
            if online.verified:
                total = sum(s.packets for s in online.sites) + sum(
                    len(r.verdicts) for r in online.roamers)
                text += (f"\nverify: OK — {total} verdicts byte-identical "
                         "to offline replay")
            reports.append(text)
        else:
            reports.append(run_offline(run).report())
    return "\n\n".join(reports)


def _cmd_advise(args: argparse.Namespace) -> str:
    """Recommend (k, n, m, dt) for an observed per-site connection count."""
    from repro.core.parameters import ParameterAdvisor

    advisor = ParameterAdvisor(expiry_timer=args.te,
                               rotation_interval=args.dt)
    params = advisor.recommend(
        args.connections, target_penetration=args.target_p,
        max_num_hashes=args.max_m)
    return (f"for c={args.connections:g} connections per Te={args.te:g}s "
            f"window (target p<={args.target_p:g}):\n"
            f"  {params.describe()}")


def _cmd_trace_info(args: argparse.Namespace) -> str:
    from repro.analysis.composition import composition
    from repro.traffic.trace import Trace

    trace = Trace.load_npz(args.path)
    nets = ", ".join(str(net) for net in trace.protected.networks)
    report = composition(trace.packets, trace.protected)
    return (f"{args.path}: {trace.summary().describe()}\n"
            f"protected networks: {nets}\n"
            f"metadata: {trace.metadata}\n"
            f"\ncomposition:\n{report.describe()}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the tables and figures of 'Mitigating Active Attacks "
            "Towards Client Networks Using the Bitmap Filter' (DSN 2006)."
        ),
    )
    sub = parser.add_subparsers(dest="experiment", required=True)
    for spec in EXPERIMENTS.values():
        p = sub.add_parser(spec.name, help=spec.help)
        _experiment_args(p, spec.default_scale)
        if spec.name == "multisite":
            _multisite_args(p)
    p = sub.add_parser("all", help="regenerate every experiment")
    _experiment_args(p, "small")

    stats = sub.add_parser(
        "stats",
        help="run an experiment with live telemetry and export the metrics",
    )
    stats.add_argument("--experiment", dest="experiment_name", default=None,
                       choices=tuple(EXPERIMENTS),
                       help="which experiment to instrument")
    stats.add_argument("--from-url", default=None, metavar="URL",
                       help="fetch and pretty-print a live daemon's /metrics "
                            "page instead of running an experiment "
                            "(e.g. 127.0.0.1:9100)")
    stats.add_argument("--prefix", default="",
                       help="with --from-url: only show metrics whose name "
                            "starts with this prefix (e.g. repro_serve_)")
    stats.add_argument("--every", type=int, default=1,
                       help="print a live summary every N simulated Δt ticks")
    stats.add_argument("--prom-out", default=None,
                       help="write Prometheus text-format metrics here "
                            "(default: inline)")
    stats.add_argument("--jsonl-out", default=None,
                       help="write the JSON-lines time series here "
                            "(default: inline)")
    _experiment_args(stats, "small")

    gen = sub.add_parser("trace-gen", help="generate a synthetic trace file")
    gen.add_argument("--duration", type=float, default=60.0)
    gen.add_argument("--pps", type=float, default=400.0)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", default="trace.npz")
    gen.add_argument("--pcap", default=None,
                     help="also export a libpcap capture (opens in Wireshark)")

    info = sub.add_parser("trace-info", help="summarize a saved trace")
    info.add_argument("path")

    filt = sub.add_parser(
        "filter", help="run a bitmap filter over a saved trace or pcap"
    )
    filt.add_argument("input", help=".npz trace or .pcap capture")
    filt.add_argument("--out", default=None,
                      help="write surviving packets here (.npz or .pcap)")
    filt.add_argument("--protected", default=None,
                      help="comma-separated CIDRs (required for pcap input)")
    filt.add_argument("--order", "-n", type=int, default=20)
    filt.add_argument("--k", type=int, default=4)
    filt.add_argument("--m", type=int, default=3)
    filt.add_argument("--dt", type=float, default=5.0)
    filt.add_argument("--hash-seed", type=int, default=0x5EED)
    _filter_arg(filt)

    export = sub.add_parser("export", help="dump every figure's data as CSV")
    export.add_argument("--out", default="figures")
    _scale_arg(export, "small")

    serve = sub.add_parser(
        "serve",
        help="run the online filtering daemon (see docs/serving.md)",
    )
    serve.add_argument("--protected", required=True,
                       help="comma-separated protected CIDRs "
                            "(e.g. 172.16.0.0/24,172.16.1.0/24)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9000,
                       help="data port (0 = ephemeral)")
    serve.add_argument("--unix", default=None, metavar="PATH",
                       help="additionally listen on a Unix socket")
    serve.add_argument("--http-host", default="127.0.0.1")
    serve.add_argument("--http-port", type=int, default=9100,
                       help="metrics/health/snapshot port (0 = ephemeral)")
    serve.add_argument("--no-http", action="store_true",
                       help="disable the embedded HTTP endpoint")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes for the parallel backends "
                            "(with --backend unset, N>1 implies sharded)")
    serve.add_argument("--backend",
                       choices=("serial", "sharded", "shared"),
                       default=None,
                       help="execution backend: serial, sharded replicas, "
                            "or one shared-memory bitmap (fastest; see "
                            "docs/parallel.md)")
    serve.add_argument("--clock", choices=("wall", "packet"), default="wall",
                       help="wall: rotations every dt of real time (live "
                            "default); packet: rotations follow packet "
                            "timestamps (deterministic replay)")
    serve.add_argument("--backpressure", choices=("block", "shed"),
                       default="block",
                       help="full-queue behaviour: block the sender (exact) "
                            "or shed via the fail policy (responsive)")
    serve.add_argument("--queue-frames", type=int, default=64)
    serve.add_argument("--batch-max-packets", type=int, default=65536)
    serve.add_argument("--windowed", action="store_true",
                       help="use the approximate windowed batch path "
                            "instead of the exact path")
    serve.add_argument("--snapshot", default=None, metavar="PATH",
                       help="write a final snapshot here on graceful exit")
    serve.add_argument("--restore", default=None, metavar="PATH",
                       help="warm-start from this snapshot file")
    serve.add_argument("--reload-config", default=None, metavar="PATH",
                       help="SIGHUP re-reads this JSON filter config")
    serve.add_argument("--fail-policy", choices=("fail_closed", "fail_open"),
                       default="fail_closed")
    serve.add_argument("--order", "-n", type=int, default=20)
    serve.add_argument("--k", type=int, default=4)
    serve.add_argument("--m", type=int, default=3)
    serve.add_argument("--dt", type=float, default=5.0)
    serve.add_argument("--hash-seed", type=int, default=0x5EED)
    _filter_arg(serve)

    replay = sub.add_parser(
        "replay-to",
        help="stream a saved trace through a live daemon (load driver)",
    )
    replay.add_argument("trace", help=".npz trace file")
    replay.add_argument("--host", default="127.0.0.1")
    replay.add_argument("--port", type=int, default=9000)
    replay.add_argument("--unix", default=None, metavar="PATH",
                        help="connect over a Unix socket instead of TCP")
    replay.add_argument("--frame-packets", type=int, default=1000,
                        help="packets per FT_PACKETS frame")
    replay.add_argument("--window", type=int, default=8,
                        help="frames pipelined in flight")
    replay.add_argument("--repeat", type=int, default=1,
                        help="stream the trace this many times (load tests)")
    replay.add_argument("--verify", action="store_true",
                        help="compare daemon verdicts against an offline "
                             "run_filter_on_trace twin (requires a "
                             "--clock packet daemon)")
    fleet = replay.add_argument_group(
        "fleet", "drive a whole daemon fleet instead of one daemon")
    fleet.add_argument("--fleet", type=int, default=None, metavar="N",
                       help="spawn an ephemeral N-daemon fleet (packet "
                            "clock) and route the trace across it")
    fleet.add_argument("--fleet-nodes", default=None, metavar="HOST:PORT,...",
                       help="route across these already-running daemons "
                            "instead of spawning a fleet")
    fleet.add_argument("--fail-policy", choices=("fail_closed", "fail_open"),
                       default="fail_closed",
                       help="fleet degraded policy for flows whose node "
                            "is unreachable")
    _filter_arg(fleet)
    fleet.add_argument("--backend", choices=("serial", "sharded", "shared"),
                       default=None,
                       help="execution backend for the spawned fleet "
                            "daemons (requires --fleet)")
    fleet.add_argument("--kill-node", type=int, default=None, metavar="I",
                       help="SIGKILL the I-th node mid-replay "
                            "(requires --fleet)")
    fleet.add_argument("--kill-at", type=float, default=0.5,
                       help="fraction of frames streamed before the kill")
    fleet.add_argument("--reconfig-order", type=int, default=None,
                       metavar="N",
                       help="run a rolling geometry reconfig to bitmap "
                            "order N mid-replay (requires --fleet); with "
                            "--verify, proves byte-identity to an offline "
                            "twin rebuilding at the same shared boundary")
    fleet.add_argument("--add-node", action="store_true",
                       help="scale the fleet out by one store-pre-warmed "
                            "node mid-replay (requires --fleet)")
    fleet.add_argument("--reconfig-at", type=float, default=0.5,
                       help="fraction of frames streamed before the "
                            "reconfig / scale-out")
    fleet.add_argument("--fleet-timeout", type=float, default=10.0,
                       help="per-node connect and per-request deadline")

    fstats = sub.add_parser(
        "fleet-stats",
        help="scrape every fleet node's /metrics and print one merged view",
    )
    fstats.add_argument("--nodes", required=True, metavar="URL,...",
                        help="comma-separated node metrics endpoints "
                             "(e.g. 127.0.0.1:9100,127.0.0.1:9101)")
    fstats.add_argument("--prefix", default="repro_",
                        help="only show metrics whose name starts with "
                             "this prefix")
    fstats.add_argument("--timeout", type=float, default=5.0,
                        help="per-node scrape deadline")

    route = sub.add_parser(
        "route",
        help="consistent-hash ring math: node shares and remap on churn",
    )
    route.add_argument("--nodes", required=True,
                       help="comma-separated node names (e.g. a,b,c)")
    route.add_argument("--replicas", type=int, default=128,
                       help="virtual nodes per real node")
    route.add_argument("--ring-seed", type=int, default=0x5EED)
    source = route.add_mutually_exclusive_group()
    source.add_argument("--addr", default=None, metavar="IP[,IP...]",
                        help="show the owner of these specific addresses")
    source.add_argument("--trace", default=None, metavar="PATH",
                        help="key the ring with a saved trace's "
                             "local addresses")
    source.add_argument("--sample", type=int, default=100000, metavar="N",
                        help="key the ring with N uniform random addresses "
                             "(default source)")
    route.add_argument("--sample-seed", type=int, default=0)
    route.add_argument("--drop", default=None, metavar="NODE",
                       help="also show the remap caused by this node leaving")

    advise = sub.add_parser(
        "advise",
        help="recommend bitmap geometry (m, n, dt) from observed demand",
    )
    advise.add_argument("--connections", "-c", type=float, required=True,
                        help="expected max connections per expiry window "
                             "(the c_obs column of a multisite run)")
    advise.add_argument("--target-p", type=float, default=0.01,
                        help="tolerable penetration probability (Eq. 2)")
    advise.add_argument("--te", type=float, default=20.0,
                        help="expiry timer Te in seconds")
    advise.add_argument("--dt", type=float, default=5.0,
                        help="rotation interval in seconds")
    advise.add_argument("--max-m", type=int, default=8,
                        help="cap on the number of hash functions")
    return parser


def _backend_scope(args: argparse.Namespace):
    """The construction context (backend + layers) the run executes under.

    ``--backend``/``--workers N`` install a parallel backend for the whole
    command, so every ``build_filter`` call inside the experiments fans
    out; ``--workers`` alone keeps its historical meaning (sharded).
    ``--filter hybrid`` installs the ambient ``("verify",)`` layer stack
    the same way, so the experiments wrap every filter they build.
    Without any of these flags this is a no-op scope.
    """
    from contextlib import ExitStack

    workers = getattr(args, "workers", None)
    backend = getattr(args, "backend", None)
    scope = ExitStack()
    if args.experiment in ("serve", "replay-to"):
        # The daemon builds its own stack from ServeConfig / the fleet's
        # filter args; no ambient scope needed.
        return scope
    if getattr(args, "filter", "bitmap") == "hybrid":
        from repro.core.filter_api import use_layers

        scope.enter_context(use_layers(("verify",)))
    if workers is None and backend in (None, "serial"):
        return scope
    from repro.core.filter_api import use_backend

    if backend is None:
        backend = "sharded"
    if backend == "serial":
        scope.enter_context(use_backend(name="serial"))
    else:
        scope.enter_context(use_backend(name=backend, workers=workers or 2))
    return scope


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    with _backend_scope(args):
        return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.experiment == "trace-gen":
        print(_cmd_trace_gen(args))
        return 0
    if args.experiment == "trace-info":
        print(_cmd_trace_info(args))
        return 0
    if args.experiment == "filter":
        print(_cmd_filter(args))
        return 0
    if args.experiment == "stats":
        print(_cmd_stats(args))
        return 0
    if args.experiment == "serve":
        print(_cmd_serve(args))
        return 0
    if args.experiment == "replay-to":
        if args.fleet is not None or args.fleet_nodes is not None:
            print(_cmd_replay_fleet(args))
        else:
            print(_cmd_replay_to(args))
        return 0
    if args.experiment == "route":
        print(_cmd_route(args))
        return 0
    if args.experiment == "fleet-stats":
        print(_cmd_fleet_stats(args))
        return 0
    if args.experiment == "advise":
        print(_cmd_advise(args))
        return 0
    if args.experiment == "multisite":
        print(_cmd_multisite(args))
        return 0
    if args.experiment == "export":
        from repro.experiments.export import export_figures

        files = export_figures(args.out, _resolve_scale(args))
        print(f"wrote {len(files)} files to {args.out}:")
        for name in files:
            print(f"  {name}")
        return 0
    if args.experiment == "all":
        for name in EXPERIMENTS:
            print(f"\n{'=' * 72}\n>> {name}\n{'=' * 72}")
            print(_run_one(name, args))
        return 0
    print(_run_one(args.experiment, args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
