#!/usr/bin/env python3
"""Sizing a bitmap filter for an ISP — the Section 3.4 / 4.1 methodology.

Uses the analytical model (Equations 1-5) through :class:`ParameterAdvisor`
to pick (k, n, dt, m) for client networks of different sizes, then verifies
one recommendation empirically by loading a bitmap and probing it.

Run:  python examples/capacity_planning.py
"""

import random

from repro.core.bitmap import Bitmap
from repro.core.hashing import HashFamily
from repro.core.parameters import ParameterAdvisor, max_supported_connections


def main() -> None:
    advisor = ParameterAdvisor(expiry_timer=20.0, rotation_interval=5.0)

    print("Recommended configurations (Te=20s, dt=5s, target p = 1%):\n")
    print(f"{'client network':<28}{'active conns':>14}{'config':>16}{'memory':>10}"
          f"{'pred. p':>12}")
    scenarios = [
        ("small office", 500),
        ("DSL pool", 5_000),
        ("campus (the paper's trace)", 15_000),
        ("large aggregation", 120_000),
    ]
    for label, connections in scenarios:
        params = advisor.recommend(connections, target_penetration=0.01)
        config = f"{{{params.num_vectors} x {params.order}}}, m={params.num_hashes}"
        memory = f"{params.memory_bytes // 1024} KiB"
        print(f"{label:<28}{connections:>14}{config:>16}{memory:>10}"
              f"{params.penetration:>12.2e}")

    print("\nSection 4.1's worked example — capacity of the {4 x 20}-bitmap:")
    for target in (0.10, 0.05, 0.01):
        cap = max_supported_connections(20, target)
        print(f"  p <= {target * 100:>4.0f}%  ->  c <= {cap / 1000:.0f}K connections")

    # Empirical spot check of the campus recommendation.
    params = advisor.recommend(15_000, target_penetration=0.01)
    print(f"\nempirical check of the campus config ({params.describe()}):")
    rng = random.Random(1)
    bitmap = Bitmap(params.num_vectors, params.order)
    hashes = HashFamily(params.num_hashes, params.order)
    for _ in range(15_000):
        bitmap.mark(hashes.indices(
            (6, rng.getrandbits(32), rng.getrandbits(16), rng.getrandbits(32))))
    trials = 100_000
    hits = sum(
        bitmap.test_current(hashes.indices(
            (6, rng.getrandbits(32), rng.getrandbits(16), rng.getrandbits(32))))
        for _ in range(trials)
    )
    print(f"  measured random-probe penetration: {hits / trials:.2e} "
          f"(predicted {params.penetration:.2e})")


if __name__ == "__main__":
    main()
