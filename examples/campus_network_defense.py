#!/usr/bin/env python3
"""A campus network under a random-scan attack — the paper's Section 4.3.

Generates two minutes of realistic client-network traffic (calibrated to
the paper's campus trace), mixes in a random scanning attack at 20x the
normal packet rate, runs both a bitmap filter and an SPI baseline, and
prints a side-by-side scorecard.

Run:  python examples/campus_network_defense.py
"""

from repro.attacks.scanner import RandomScanAttack, ScanConfig
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.sim.pipeline import run_filter_on_trace
from repro.spi.hashlist import HashListFilter
from repro.traffic.generator import generate_client_trace
from repro.traffic.trace import Trace


def main() -> None:
    print("generating client-network workload (120s)...")
    trace = generate_client_trace(duration=120.0, target_pps=500.0, seed=7)
    print(f"  {trace.summary().describe()}")

    print("\nmixing in a random-scan attack at 20x the normal rate...")
    attack = RandomScanAttack(
        ScanConfig(rate_pps=500.0 * 20, start=40.0, duration=60.0, seed=99),
        trace.protected,
    ).generate()
    mixed = trace.merged_with(Trace(attack, trace.protected,
                                    {"duration": trace.duration}))
    print(f"  {mixed.summary().describe()}")

    # A bitmap filter scaled to this workload (see DESIGN.md section 5) and
    # an SPI baseline with the 240s TIME_WAIT timeout of Section 4.3.
    bitmap_cfg = BitmapFilterConfig(order=15, num_vectors=4, num_hashes=3,
                                    rotation_interval=5.0)
    bitmap = BitmapFilter(bitmap_cfg, mixed.protected)
    spi = HashListFilter(mixed.protected, idle_timeout=240.0)

    print("\nrunning the bitmap filter...")
    bitmap_run = run_filter_on_trace(bitmap, mixed, exact=True)
    print("running the SPI baseline...")
    spi_run = run_filter_on_trace(spi, mixed)

    print("\n=== scorecard =========================================")
    header = f"{'metric':<32}{'bitmap':>14}{'SPI':>16}"
    print(header)
    print("-" * len(header))
    rows = [
        ("attack filtering rate",
         f"{bitmap_run.confusion.attack_filter_rate * 100:.3f}%",
         f"{spi_run.confusion.attack_filter_rate * 100:.3f}%"),
        ("attack packets penetrated",
         bitmap_run.confusion.attack_passed,
         spi_run.confusion.attack_passed),
        ("legit traffic dropped (FP)",
         f"{bitmap_run.confusion.false_positive_rate * 100:.2f}%",
         f"{spi_run.confusion.false_positive_rate * 100:.2f}%"),
        ("state memory",
         f"{bitmap_cfg.memory_bytes // 1024} KiB",
         f"{spi.peak_storage_bytes // 1024} KiB (peak)"),
        ("processing wall time",
         f"{bitmap_run.wall_time:.2f}s",
         f"{spi_run.wall_time:.2f}s"),
    ]
    for name, a, b in rows:
        print(f"{name:<32}{str(a):>14}{str(b):>16}")

    print("\nThe bitmap filter matches the SPI filter's defense while "
          "keeping fixed, small state\n(the paper's Table 1 point).")


if __name__ == "__main__":
    main()
