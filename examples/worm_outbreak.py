#!/usr/bin/env python3
"""A Code Red-style worm outbreak, seen from a protected client network.

Integrates the random-scanning epidemic model of the paper's motivating
references [6, 13, 21], prints an ASCII infection curve, then measures what
fraction of the worm's inbound scans a bitmap-filtered client network drops.

Run:  python examples/worm_outbreak.py
"""

import numpy as np

from repro.attacks.worm import WormModel, WormParameters
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.sim.pipeline import run_filter_on_trace
from repro.traffic.generator import generate_client_trace
from repro.traffic.trace import Trace


def ascii_plot(t: np.ndarray, y: np.ndarray, height: int = 12, width: int = 64) -> str:
    """A minimal terminal line plot."""
    idx = np.linspace(0, len(y) - 1, width).astype(int)
    ys = y[idx]
    top = ys.max() or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = top * (level - 0.5) / height
        rows.append("".join("#" if v >= threshold else " " for v in ys))
    rows.append("-" * width)
    rows.append(f"0s{' ' * (width - 12)}{t[-1]:.0f}s")
    return "\n".join(rows)


def main() -> None:
    # A compressed outbreak (small vulnerable population, aggressive scan
    # rate) so the epidemic fits inside a two-minute simulation.
    params = WormParameters(vulnerable_hosts=60_000, scan_rate=4000.0,
                            initially_infected=30, target_port=445)
    model = WormModel(params)

    print(f"worm: N={params.vulnerable_hosts} vulnerable, "
          f"s={params.scan_rate:g} scans/s/host, beta={params.beta:.4f}/s")
    t_half = model.time_to_fraction(0.5, step=0.25)
    print(f"time to 50% infection: {t_half:.0f}s\n")

    t, infected = model.infection_curve(duration=120.0, step=1.0)
    print("infected hosts over time:")
    print(ascii_plot(t, infected))

    print("\nthe client network's view:")
    trace = generate_client_trace(duration=120.0, target_pps=400.0, seed=21)
    scans = model.inbound_scans(trace.protected, duration=120.0, seed=4)
    print(f"  inbound worm scans hitting our six /24s: {len(scans)}")

    mixed = trace.merged_with(Trace(scans, trace.protected,
                                    {"duration": trace.duration}))
    filt = BitmapFilter(
        BitmapFilterConfig(order=15, num_vectors=4, num_hashes=3,
                           rotation_interval=5.0),
        trace.protected,
    )
    result = run_filter_on_trace(filt, mixed, exact=True)
    print(f"  bitmap filter drops {result.confusion.attack_filter_rate * 100:.2f}% "
          f"of the worm's scans")
    print(f"  legitimate traffic falsely dropped: "
          f"{result.confusion.false_positive_rate * 100:.2f}%")


if __name__ == "__main__":
    main()
