#!/usr/bin/env python3
"""Active-mode FTP through the bitmap filter — the paper's Section 5.1.

Active FTP inverts the usual direction: after the client issues ``PORT p``,
the *server* connects from its port 20 to the client's port ``p``.  A plain
bitmap filter drops that inbound SYN.  The hole-punching fix has the client
first send any packet from ``(client, p)`` to the server; because the bitmap
key omits the remote port, that one packet opens the door for the server's
data connection from *any* source port.

Run:  python examples/ftp_hole_punching.py
"""

from repro import AddressSpace, BitmapFilter, BitmapFilterConfig, Packet, TcpFlags
from repro.core.hole_punch import HolePuncher
from repro.net.address import IPv4Address
from repro.net.protocols import IPPROTO_TCP, PORT_FTP, PORT_FTP_DATA


def main() -> None:
    protected = AddressSpace.class_c_block("172.16.0.0", 6)
    filt = BitmapFilter(BitmapFilterConfig.paper_default(), protected)

    client = int(IPv4Address.parse("172.16.1.50"))
    ftp_server = int(IPv4Address.parse("203.0.113.21"))
    data_port = 5001  # the port the client announces via PORT

    print("1) control channel: client connects to the server's port 21")
    ctrl_syn = Packet(1.0, IPPROTO_TCP, client, 41000, ftp_server, PORT_FTP,
                      TcpFlags.SYN)
    print(f"   out SYN           -> {filt.process(ctrl_syn).value}")
    print(f"   in  SYN+ACK       -> "
          f"{filt.process(ctrl_syn.reply(1.05, TcpFlags.SYN | TcpFlags.ACK)).value}")

    print("\n2) WITHOUT hole punching, the server's data connection dies:")
    data_syn = Packet(2.0, IPPROTO_TCP, ftp_server, PORT_FTP_DATA, client,
                      data_port, TcpFlags.SYN)
    print(f"   in SYN to client:{data_port}  -> {filt.process(data_syn).value}")

    print("\n3) the client punches a hole for its data port:")
    puncher = HolePuncher(client, seed=3)
    punch = puncher.punch(ts=3.0, local_port=data_port, server_addr=ftp_server)
    print(f"   out punch packet ({punch.sport} -> random port {punch.dport})"
          f" -> {filt.process(punch).value}")

    print("\n4) now the server's active data connection succeeds:")
    retry = Packet(3.5, IPPROTO_TCP, ftp_server, PORT_FTP_DATA, client,
                   data_port, TcpFlags.SYN)
    print(f"   in SYN to client:{data_port}  -> {filt.process(retry).value}")

    transfer = Packet(3.6, IPPROTO_TCP, ftp_server, PORT_FTP_DATA, client,
                      data_port, TcpFlags.PSH | TcpFlags.ACK, size=1460)
    print(f"   in DATA            -> {filt.process(transfer).value}")

    print("\nNote: the hole is specific to (client, port, server) and expires "
          f"after Te = {filt.config.expiry_timer:g}s unless refreshed.")


if __name__ == "__main__":
    main()
