#!/usr/bin/env python3
"""Quickstart: protect a client network with a bitmap filter.

Builds the paper's {4 x 20}-bitmap filter (512 KB, m=3, dt=5 s) in front of
six class-C client networks, then walks through the canonical situations:
a client-initiated connection (reply passes), an unsolicited probe
(dropped), and expiry after the Te = 20 s window.

Run:  python examples/quickstart.py
"""

from repro import (
    AddressSpace,
    BitmapFilter,
    BitmapFilterConfig,
    Decision,
    IPv4Address,
    Packet,
    TcpFlags,
)
from repro.net.protocols import IPPROTO_TCP


def main() -> None:
    # The protected client address space: six class-C networks, as in the
    # paper's campus trace.
    protected = AddressSpace.class_c_block("172.16.0.0", 6)

    # The paper's evaluation configuration: n=20, k=4, m=3, dt=5s.
    config = BitmapFilterConfig.paper_default()
    filt = BitmapFilter(config, protected)
    print(f"filter: {filt}")
    print(f"memory: {config.memory_bytes // 1024} KiB, Te = {config.expiry_timer:g}s\n")

    client = int(IPv4Address.parse("172.16.2.10"))
    web_server = int(IPv4Address.parse("93.184.216.34"))
    attacker = int(IPv4Address.parse("198.51.100.7"))

    # 1. The client opens a connection: outgoing packets always pass and
    #    mark the bitmap.
    syn = Packet(ts=1.00, proto=IPPROTO_TCP, src=client, sport=40001,
                 dst=web_server, dport=80, flags=TcpFlags.SYN)
    print(f"outgoing SYN        -> {filt.process(syn).value}")

    # 2. The server's reply matches the marked key: passes.
    syn_ack = syn.reply(ts=1.04, flags=TcpFlags.SYN | TcpFlags.ACK)
    print(f"incoming SYN+ACK    -> {filt.process(syn_ack).value}")

    # 3. An attacker probing the client cold: dropped.
    probe = Packet(ts=2.00, proto=IPPROTO_TCP, src=attacker, sport=31337,
                   dst=client, dport=445, flags=TcpFlags.SYN)
    print(f"unsolicited probe   -> {filt.process(probe).value}")

    # 4. A very late packet on the old connection: the mark has rotated out.
    late = syn.reply(ts=1.0 + config.expiry_timer + 6.0, flags=TcpFlags.ACK)
    print(f"reply after Te+6s   -> {filt.process(late).value}")

    print(f"\nstats: {filt.stats.as_dict()}")
    assert filt.process(syn_ack.with_ts(1.05)) is Decision.DROP  # also expired


if __name__ == "__main__":
    main()
