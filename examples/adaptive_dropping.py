#!/usr/bin/env python3
"""Adaptive packet dropping under a bandwidth flood — Section 5.3.

An APD-enabled bitmap filter is lenient while the downlink is idle (bitmap-
rejected packets are mostly admitted) and turns strict as a UDP flood loads
the link.  This example runs three phases — quiet, 12x flood, quiet — and
prints the per-phase admission behaviour of both indicator designs.

Run:  python examples/adaptive_dropping.py
"""

from repro.core.apd import (
    AdaptiveDroppingPolicy,
    BandwidthIndicator,
    PacketRatioIndicator,
)
from repro.attacks.ddos import udp_flood
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, Decision
from repro.traffic.generator import generate_client_trace
from repro.traffic.trace import Trace


def run_phase_analysis(name, indicator_factory, mixed, flood_window):
    apd = AdaptiveDroppingPolicy(indicator_factory(), seed=1)
    config = BitmapFilterConfig(order=14, num_vectors=4, num_hashes=3,
                                rotation_interval=5.0)
    filt = BitmapFilter(config, mixed.protected, apd=apd)

    phases = {"quiet (before)": [0, 0], "flood": [0, 0], "quiet (after)": [0, 0]}

    def phase_of(ts):
        if ts < flood_window[0]:
            return "quiet (before)"
        if ts < flood_window[1]:
            return "flood"
        return "quiet (after)"

    for pkt in mixed.packets:
        seen = apd.stats.admitted + apd.stats.dropped
        decision = filt.process(pkt)
        if apd.stats.admitted + apd.stats.dropped != seen:
            bucket = phases[phase_of(pkt.ts)]
            bucket[0 if decision is Decision.PASS else 1] += 1

    print(f"\n{name}:")
    print(f"  {'phase':<16}{'rejected by bitmap':>20}{'admitted by APD':>18}")
    for label, (admitted, dropped) in phases.items():
        total = admitted + dropped
        rate = admitted / total * 100 if total else 0.0
        print(f"  {label:<16}{total:>20}{rate:>17.1f}%")


def main() -> None:
    print("generating workload + 12x UDP flood (60s)...")
    trace = generate_client_trace(duration=60.0, target_pps=250.0, seed=17)
    victim = trace.protected.networks[0].host(30)
    flood = udp_flood(victim, rate_pps=250.0 * 12, start=24.0, duration=18.0,
                      seed=5)
    mixed = trace.merged_with(Trace(flood, trace.protected,
                                    {"duration": trace.duration}))
    print(f"  {mixed.summary().describe()}")

    link_capacity = 250.0 * 12 * 1400 * 8  # sized to saturate during the flood
    run_phase_analysis(
        "bandwidth-utilization indicator (drop prob = U_b)",
        lambda: BandwidthIndicator(link_capacity_bps=link_capacity),
        mixed, (24.0, 42.0),
    )
    run_phase_analysis(
        "in/out packet-ratio indicator (l=2, h=6)",
        lambda: PacketRatioIndicator(low=2.0, high=6.0),
        mixed, (24.0, 42.0),
    )
    print("\nWhen the link is idle the filter admits nearly everything the "
          "bitmap rejects;\nunder the flood it reverts to strict dropping — "
          "Section 5.3's design goal.")


if __name__ == "__main__":
    main()
