#!/usr/bin/env python3
"""Placing bitmap filters in an ISP topology — the Figure 1 usage model.

Builds the paper's example ISP (core mesh, edge routers, client networks, a
peer-ISP link), asks the dominator analysis where each client network can be
defended, installs one aggregated filter at a core router and one per-edge
filter, and runs attack traffic through both deployments.

Run:  python examples/isp_deployment.py
"""

from repro.attacks.scanner import RandomScanAttack, ScanConfig
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.net.address import AddressSpace
from repro.sim.deployment import FilterDeployment, union_address_space
from repro.sim.metrics import score_run
from repro.sim.topology import IspTopology
from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig
from repro.traffic.trace import Trace


def main() -> None:
    # The Figure 1 shape: peer ISP -> core mesh -> edge routers -> clients.
    topo = IspTopology.paper_example()
    space_a = AddressSpace.class_c_block("10.10.0.0", 2)
    space_b = AddressSpace.class_c_block("10.20.0.0", 2)
    topo.attach_address_space("clientA", space_a)
    topo.attach_address_space("clientB", space_b)

    print("valid filter locations (routers every external path crosses):")
    for net in ("clientA", "clientB", "clientC"):
        print(f"  {net}: {sorted(topo.valid_filter_locations(net))}")
    print(f"  core1 covers A+B together? "
          f"{topo.covers_aggregate('core1', ['clientA', 'clientB'])}")

    # Traffic for the two networks plus a scan attack on both.
    print("\ngenerating traffic...")
    trace_a = ClientNetworkWorkload(WorkloadConfig(
        first_network="10.10.0.0", num_networks=2, duration=60.0,
        target_pps=150.0, seed=1)).generate()
    trace_b = ClientNetworkWorkload(WorkloadConfig(
        first_network="10.20.0.0", num_networks=2, duration=60.0,
        target_pps=150.0, seed=2)).generate()
    combined_space = union_address_space([space_a, space_b])
    attack = RandomScanAttack(
        ScanConfig(rate_pps=3000.0, start=20.0, duration=25.0, seed=3),
        combined_space,
    ).generate()
    combined = Trace(trace_a.packets, combined_space, {"duration": 60.0}).merged_with(
        Trace(trace_b.packets, combined_space, {"duration": 60.0}),
        Trace(attack, combined_space, {"duration": 60.0}),
    )

    config = BitmapFilterConfig(order=14, num_vectors=4, num_hashes=3,
                                rotation_interval=5.0)

    def evaluate(label, deployment):
        verdicts = deployment.process_batch(combined.packets, exact=True)
        incoming = combined.packets.directions(combined_space) == 1
        confusion, _ = score_run(combined.packets, verdicts, incoming, 60.0)
        print(f"  {label:<34} attack filtered {confusion.attack_filter_rate * 100:6.2f}%"
              f"   FP {confusion.false_positive_rate * 100:5.2f}%"
              f"   memory {deployment.total_memory_bytes() // 1024} KiB")

    print("\ndeployment comparison:")
    aggregated = FilterDeployment(topo)
    aggregated.install("core1", ["clientA", "clientB"], config)
    evaluate("one aggregated filter at core1", aggregated)

    per_edge = FilterDeployment(topo)
    per_edge.install("edge1", ["clientA"], config)
    per_edge.install("edge2", ["clientB"], config)
    evaluate("per-edge filters at edge1+edge2", per_edge)


if __name__ == "__main__":
    main()
