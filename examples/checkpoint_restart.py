#!/usr/bin/env python3
"""Router restart without a warm-up gap — filter checkpointing.

A freshly started bitmap filter knows nothing: every inbound packet of
every in-flight connection is dropped until its client re-sends something
(up to Te seconds of breakage per flow).  Snapshotting the filter before a
restart and restoring afterwards makes the maintenance window invisible.

This example measures both restart strategies against the same traffic.

Run:  python examples/checkpoint_restart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.core.persistence import load_filter, save_filter
from repro.traffic.generator import generate_client_trace


def drop_rate_after(filt, packets, protected, start_ts, window=20.0):
    """Incoming drop rate inside the first Te-long window after start_ts —
    the period a cold filter spends re-learning the flow population."""
    tail = packets[(packets.ts >= start_ts) & (packets.ts < start_ts + window)]
    verdicts = filt.process_batch(tail, exact=True)
    incoming = tail.directions(protected) == 1
    return float((~verdicts[incoming]).mean())


def main() -> None:
    print("generating 90s of client traffic...")
    trace = generate_client_trace(duration=90.0, target_pps=400.0, seed=12)
    packets = trace.packets
    restart_at = 45.0
    first_half = packets[packets.ts < restart_at]

    config = BitmapFilterConfig(order=15, num_vectors=4, num_hashes=3,
                                rotation_interval=5.0)

    # Warm a filter on the first half of the day.
    filt = BitmapFilter(config, trace.protected)
    filt.process_batch(first_half, exact=True)
    print(f"filter warmed: utilization {filt.utilization():.4f}, "
          f"{filt.stats.outgoing} outgoing packets seen")

    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "edge-router.bitmap.npz"
        save_filter(filt, snapshot)
        print(f"snapshot saved ({snapshot.stat().st_size} bytes compressed)")

        # Strategy A: restore from the snapshot.
        restored = load_filter(snapshot)
        warm_rate = drop_rate_after(restored, packets, trace.protected,
                                    restart_at)

        # Strategy B: cold restart at the same instant.
        cold = BitmapFilter(config, trace.protected, start_time=restart_at)
        cold_rate = drop_rate_after(cold, packets, trace.protected, restart_at)

    print("\nincoming drop rate in the first Te=20s after the restart:")
    print(f"  restored from snapshot: {warm_rate * 100:6.2f}%")
    print(f"  cold restart:           {cold_rate * 100:6.2f}%")
    print("\nThe cold filter drops every in-flight flow's replies until "
          "clients resend;\nthe restored filter continues as if nothing "
          "happened.")


if __name__ == "__main__":
    main()
