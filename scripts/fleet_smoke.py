#!/usr/bin/env python
"""End-to-end smoke test for fault-tolerant fleet serving (CI: fleet-smoke).

Exercises the whole fleet surface through the public CLI, the way an
operator would:

1. ``repro route`` — consistent-hash shares for 3 nodes and the minimal
   remap proof when one is dropped.
2. ``repro replay-to --fleet 3 --verify`` — a healthy 3-daemon fleet
   must produce verdicts byte-identical to a single-filter offline
   replay.
3. ``repro replay-to --fleet 3 --kill-node 1 --verify`` — SIGKILL one
   daemon mid-replay; the run must complete (no client hangs) and report
   DEGRADED-CONSISTENT: divergence confined to the dead node's flows and
   equal to the fail policy's answer.

With ``--reconfig`` (CI runs this), two more zero-downtime checks:

4. ``repro replay-to --fleet 3 --reconfig-order 13 --verify`` — a
   rolling geometry rebuild mid-replay must stay byte-identical to an
   offline filter rebuilding at the same shared boundary.
5. ``repro replay-to --fleet 3 --add-node --verify`` — scaling out
   under load must serve the arrival warm from the snapshot store
   (nonzero restored arrivals) and at worst report DEGRADED-CONSISTENT.

Exits non-zero with a diagnostic on any failure.

Usage: ``make fleet-smoke`` or ``python scripts/fleet_smoke.py
[--reconfig]`` (needs ``repro`` importable — installed or via
``PYTHONPATH=src``).
"""

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path


def fail(message: str) -> "NoReturn":  # noqa: F821 - py<3.11 spelling
    print(f"fleet-smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def run_cli(*argv: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        text=True, capture_output=True, timeout=timeout)
    sys.stdout.write(result.stdout)
    if result.returncode != 0:
        fail(f"repro {argv[0]} exited {result.returncode}: {result.stderr}")
    return result.stdout


def check_reconfig(trace_path: Path) -> None:
    """Zero-downtime checks: rolling geometry rebuild and warm scale-out."""
    out = run_cli("replay-to", str(trace_path), "--fleet", "3",
                  "--reconfig-order", "13", "--verify")
    if "rolling reconfig: order -> 13" not in out:
        fail("rolling reconfig did not confirm the new geometry")
    if "verify: OK" not in out:
        fail("rolling reconfig broke byte-parity with the offline twin")

    out = run_cli("replay-to", str(trace_path), "--fleet", "3",
                  "--add-node", "--verify")
    if "joined warm" not in out:
        fail("scale-out node did not pre-warm from the snapshot store")
    restored = next((line for line in out.splitlines()
                     if "restored_arrivals=" in line), "")
    if restored.rstrip().endswith("restored_arrivals=0"):
        fail("scale-out node restored zero arrivals — served cold")
    if "verify: OK" not in out and "verify: DEGRADED-CONSISTENT" not in out:
        fail("scale-out replay diverged beyond the stolen share")


def main() -> None:
    from repro.traffic.generator import generate_client_trace

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reconfig", action="store_true",
                        help="also run the zero-downtime reconfig and "
                             "scale-out checks")
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="fleet-smoke-"))
    trace = generate_client_trace(duration=60.0, target_pps=800.0, seed=7)
    trace_path = workdir / "trace.npz"
    trace.save_npz(trace_path)
    print(f"fleet-smoke: generated {len(trace.packets):,}-packet trace")

    out = run_cli("route", "--nodes", "node0,node1,node2",
                  "--trace", str(trace_path), "--drop", "node1")
    if "(minimal remap)" not in out:
        fail("repro route --drop did not prove minimal remap")

    out = run_cli("replay-to", str(trace_path), "--fleet", "3", "--verify")
    if "verify: OK" not in out:
        fail("healthy fleet did not match the offline replay")

    out = run_cli("replay-to", str(trace_path), "--fleet", "3",
                  "--kill-node", "1", "--kill-at", "0.5", "--verify")
    if "verify: DEGRADED-CONSISTENT" not in out:
        fail("node-kill replay did not degrade policy-consistently")

    summary = "minimal remap, healthy parity, policy-consistent failover"
    if args.reconfig:
        check_reconfig(trace_path)
        summary += ", zero-downtime reconfig, warm scale-out"
    print(f"fleet-smoke: PASS — {summary}")


if __name__ == "__main__":
    main()
