#!/usr/bin/env python
"""End-to-end smoke test for the online serving daemon (CI: serve-smoke).

Boots ``repro serve`` on ephemeral ports (packet clock, so verdicts are
deterministic), replays a ~50k-packet generated trace through
``repro replay-to --verify`` (which asserts the daemon's verdicts are
byte-identical to an offline ``run_filter_on_trace``), scrapes
``/metrics`` to check the daemon counted every packet, then SIGTERMs and
requires a clean exit.  Exits non-zero with a diagnostic on any failure.

Usage: ``make serve-smoke`` or ``python scripts/serve_smoke.py``
(needs ``repro`` importable — installed or via ``PYTHONPATH=src``).
"""

import json
import re
import signal
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path


def fail(message: str) -> "NoReturn":  # noqa: F821 - py<3.11 spelling
    print(f"serve-smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def scrape(url: str) -> str:
    return urllib.request.urlopen(url, timeout=10.0).read().decode()


def counter(text: str, name: str) -> float:
    match = re.search(rf"^{re.escape(name)} (\S+)$", text, re.MULTILINE)
    if match is None:
        fail(f"{name} missing from /metrics")
    return float(match.group(1))


def main() -> None:
    from repro.traffic.generator import generate_client_trace

    workdir = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    trace = generate_client_trace(duration=60.0, target_pps=800.0, seed=7)
    trace_path = workdir / "trace.npz"
    trace.save_npz(trace_path)
    protected = ",".join(str(net) for net in trace.protected.networks)
    print(f"serve-smoke: generated {len(trace.packets):,}-packet trace")

    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--protected", protected,
         "--port", "0", "--http-port", "0", "--clock", "packet"],
        text=True, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    try:
        ready = serve.stdout.readline()
        if not ready.startswith("REPRO-SERVE READY "):
            fail(f"daemon did not come up: {ready!r}{serve.stdout.read()}")
        info = json.loads(ready.split("READY ", 1)[1])
        host, port = info["data"]
        metrics_url = "http://{}:{}/metrics".format(*info["http"])
        print(f"serve-smoke: daemon ready on {host}:{port} "
              f"(backend={info['backend']}, clock={info['clock']})")

        replay = subprocess.run(
            [sys.executable, "-m", "repro", "replay-to", str(trace_path),
             "--host", host, "--port", str(port), "--verify"],
            text=True, capture_output=True)
        sys.stdout.write(replay.stdout)
        if replay.returncode != 0:
            fail(f"replay-to exited {replay.returncode}: {replay.stderr}")
        if "verify: OK" not in replay.stdout:
            fail("replay-to did not report online==offline verdict parity")

        metrics = scrape(metrics_url)
        counted = counter(metrics, "repro_serve_packets_total")
        if counted != len(trace.packets):
            fail(f"/metrics counted {counted:.0f} packets, "
                 f"streamed {len(trace.packets)}")
        health = json.loads(scrape(metrics_url.replace("/metrics",
                                                       "/healthz")))
        if health["status"] != "serving":
            fail(f"unexpected /healthz status {health['status']!r}")
        print(f"serve-smoke: /metrics counted {counted:,.0f} packets, "
              f"/healthz {health['status']}")
    finally:
        serve.send_signal(signal.SIGTERM)
        try:
            code = serve.wait(timeout=60)
        except subprocess.TimeoutExpired:
            serve.kill()
            fail("daemon did not exit within 60s of SIGTERM")
        serve.stdout.close()
    if code != 0:
        fail(f"daemon exited {code} after SIGTERM")
    print("serve-smoke: PASS — verdict parity, live metrics, clean exit")


if __name__ == "__main__":
    main()
