#!/usr/bin/env python
"""End-to-end smoke test for the multi-site scenario engine (CI: multisite-smoke).

Exercises the scenario surface through the public CLI, the way an operator
would:

1. ``repro multisite --preset fat-tree/web-search`` — a 3-site fat-tree
   scenario offline: per-site rows, the aggregate TOTAL row, the advisor
   column, and the roaming-client handoff line must all render.
2. The same scenario from a TOML file (``--scenario``) must run and agree
   on the site set.
3. ``repro multisite --preset ... --online DIR --verify`` — the scenario
   replayed against a live fleet (one daemon per site, packet clock);
   ``--verify`` proves the online verdict stream byte-identical to the
   offline filters, including the roamer's snapshot handoff through the
   store, and the merged fleet /metrics view must be non-trivial.

Exits non-zero with a diagnostic on any failure.

Usage: ``make multisite-smoke`` or ``python scripts/multisite_smoke.py``
(needs ``repro`` importable — installed or via ``PYTHONPATH=src``).
"""

import subprocess
import sys
import tempfile
from pathlib import Path

PRESET = "fat-tree/web-search"


def fail(message: str) -> "NoReturn":  # noqa: F821 - py<3.11 spelling
    print(f"multisite-smoke: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def run_cli(*argv: str, timeout: float = 600.0) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        text=True, capture_output=True, timeout=timeout)
    sys.stdout.write(result.stdout)
    if result.returncode != 0:
        fail(f"repro {argv[0]} exited {result.returncode}: {result.stderr}")
    return result.stdout


def check_offline_report(out: str, where: str) -> None:
    for needle in ("site0", "site1", "site2", "TOTAL", "p(pen)", "advised"):
        if needle not in out:
            fail(f"{where}: report is missing {needle!r}")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="multisite-smoke-"))

    out = run_cli("multisite", "--preset", PRESET)
    check_offline_report(out, "offline preset")
    if "roamer roamer0" not in out:
        fail("offline preset: no roaming-client handoff line")
    if "-bitmap" not in out:
        fail("offline preset: advisor column is empty everywhere")

    out = run_cli("multisite", "--scenario",
                  str(Path(__file__).resolve().parents[1]
                      / "examples" / "scenarios" / "fat_tree.toml"))
    check_offline_report(out, "scenario file")

    out = run_cli("multisite", "--preset", PRESET,
                  "--online", str(workdir / "online"), "--verify")
    check_offline_report(out, "online replay")
    if "verify: OK" not in out:
        fail("online fleet replay did not match the offline filters")
    if "online: one daemon per site" not in out:
        fail("online replay did not report its fleet mode")

    print("multisite-smoke: PASS — offline preset, TOML scenario, "
          "online fleet parity with roaming handoff")


if __name__ == "__main__":
    main()
