"""Serve-path cost of the hybrid exact-verification tier.

Boots two real ``repro serve`` daemons on the selected backend — one
plain bitmap, one ``--filter hybrid`` — replays the same generated
client trace through the framing protocol, and measures each daemon's
sustained packets/second from its own ``/metrics`` counters (the
``test_serve_throughput`` idiom).  The gate is relative, not absolute:
the verification tier touches the cuckoo table only for outgoing inserts
and confirmed admits, so the hybrid daemon must sustain at least
``MIN_RELATIVE_PPS`` of the plain daemon's throughput on the identical
workload.  The hybrid daemon must also prove the tier actually engaged —
``repro_hybrid_confirmed_total`` > 0 — so the floor can never pass by
silently serving a bare bitmap.

Run with ``pytest benchmarks/test_hybrid_overhead.py -s`` (add
``--backend shared`` etc. for the parallel backends).  Not part of
tier-1 (benchmarks/ is outside ``testpaths``).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

from repro.serve.client import FilterClient
from repro.telemetry.exporters import parse_prometheus
from repro.traffic.generator import generate_client_trace

#: The hybrid daemon must sustain at least this fraction of the plain
#: bitmap daemon's throughput on the same trace and backend.
MIN_RELATIVE_PPS = 0.5
MIN_PACKETS = 100_000     # stream at least this many for a stable figure
FRAME_PACKETS = 2000
WINDOW = 16

REPO_ROOT = Path(__file__).resolve().parents[1]


def _scrape_counter(url: str, name: str) -> float:
    text = urllib.request.urlopen(url, timeout=10.0).read().decode()
    for sample in parse_prometheus(text):
        if sample.name == name and not sample.labels:
            return sample.value
    raise AssertionError(f"{name} not found in {url}")


def _boot_daemon(protected: str, extra_args: list):
    cmd = [sys.executable, "-m", "repro", "serve",
           "--protected", protected, "--port", "0", "--http-port", "0",
           "--clock", "wall", "--dt", "5.0", *extra_args]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(cmd, cwd=REPO_ROOT, env=env, text=True,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT)
    line = proc.stdout.readline()
    assert line.startswith("REPRO-SERVE READY "), line
    return proc, json.loads(line.split("READY ", 1)[1])


def _measure_daemon(protected, frames, repeats, extra_args):
    """Replay the frames; return (pps, confirmed_total or None)."""
    proc, info = _boot_daemon(protected, extra_args)
    confirmed = None
    try:
        host, port = info["data"]
        metrics_url = "http://{}:{}/metrics".format(*info["http"])
        client = FilterClient.connect(host, port)

        before = _scrape_counter(metrics_url, "repro_serve_packets_total")
        began = time.perf_counter()
        for _ in range(repeats):
            # Wall clock re-stamps arrival times, so replaying the same
            # trace repeatedly stays monotonic for the filter.
            for _mask in client.filter_stream(frames, window=WINDOW):
                pass
        elapsed = time.perf_counter() - began
        after = _scrape_counter(metrics_url, "repro_serve_packets_total")
        if "hybrid" in extra_args:
            confirmed = _scrape_counter(metrics_url,
                                        "repro_hybrid_confirmed_total")
        client.goodbye()
        client.close()
    finally:
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        proc.stdout.close()

    counted = int(after - before)
    streamed = repeats * sum(len(f) for f in frames)
    assert code == 0
    assert counted == streamed
    return counted / elapsed, confirmed


def test_hybrid_daemon_holds_relative_floor(capsys, backend,
                                            backend_serve_args):
    trace = generate_client_trace(duration=30.0, target_pps=1500.0, seed=11)
    packets = trace.packets
    frames = [packets[i:i + FRAME_PACKETS]
              for i in range(0, len(packets), FRAME_PACKETS)]
    repeats = max(1, -(-MIN_PACKETS // len(packets)))  # ceil division
    protected = ",".join(str(net) for net in trace.protected.networks)

    bitmap_pps, _ = _measure_daemon(protected, frames, repeats,
                                    backend_serve_args)
    hybrid_pps, confirmed = _measure_daemon(
        protected, frames, repeats,
        [*backend_serve_args, "--filter", "hybrid"])

    ratio = hybrid_pps / bitmap_pps
    with capsys.disabled():
        print("\nhybrid verification tier — serve-path overhead")
        print(f"  backend            {backend:>12}")
        print(f"  packets streamed   {repeats * len(packets):>12,}")
        print(f"  bitmap daemon      {bitmap_pps:>12,.0f} packets/s")
        print(f"  hybrid daemon      {hybrid_pps:>12,.0f} packets/s")
        print(f"  admits confirmed   {int(confirmed):>12,}")
        print(f"  relative           {ratio:>12.2f}x "
              f"(floor >= {MIN_RELATIVE_PPS:.2f}x)")

    assert confirmed > 0, "verification tier never engaged"
    assert ratio >= MIN_RELATIVE_PPS, (
        f"hybrid daemon sustained {hybrid_pps:,.0f} packets/s — only "
        f"{ratio:.2f}x of the bitmap daemon's {bitmap_pps:,.0f}")
