"""Timing ablation bench: the Section 3.4 (k, dt, Te) trade-offs."""

import pytest

from repro.experiments.config import SMALL
from repro.experiments.timing import run_timing_ablation


@pytest.fixture(scope="module")
def result():
    return run_timing_ablation(SMALL)


class TestTimingAblation:
    def test_report_and_benchmark(self, benchmark):
        res = benchmark.pedantic(lambda: run_timing_ablation(SMALL),
                                 rounds=1, iterations=1)
        print("\n" + res.report())

    def test_more_vectors_tighten_guaranteed_window(self, result):
        windows = [p.guaranteed_window for p in result.granularity]
        assert windows == sorted(windows)
        assert windows[-1] > windows[0]

    def test_more_vectors_reduce_false_positives(self, result):
        """Coarser rotation (k=2) over-expires more legitimate replies."""
        fps = [p.false_positive_rate for p in result.granularity]
        assert fps[0] >= fps[-1]

    def test_memory_scales_with_k(self, result):
        memories = [p.memory_bytes for p in result.granularity]
        assert memories[1] == 2 * memories[0]
        assert memories[3] == 8 * memories[0]

    def test_rotation_count_scales_inverse_dt(self, result):
        rotations = [p.rotations for p in result.granularity]
        assert rotations[-1] == pytest.approx(8 * rotations[0], rel=0.05)

    def test_shorter_te_more_false_positives(self, result):
        """Section 3.4: Te too short over-kills delayed connections."""
        fps = [p.false_positive_rate for p in result.expiry]
        assert fps[0] > fps[-1]
        # Monotone (within noise) along the Te = 5 -> 40 sweep.
        assert fps[0] >= fps[1] >= fps[2]

    def test_longer_te_weaker_filtering(self, result):
        """Longer windows leave more time for lucky collisions."""
        rates = [p.attack_filter_rate for p in result.expiry]
        assert rates[0] >= rates[-1]

    def test_all_configs_still_defend(self, result):
        for point in result.granularity + result.expiry:
            assert point.attack_filter_rate > 0.99
