"""Quantify the telemetry layer's cost on the windowed batch hot path.

Acceptance gate for the instrumentation PR: with the default
:data:`~repro.telemetry.registry.NULL_REGISTRY` the filter must hold no
instruments at all (``filt._tel is None``), so the only cost added to the
windowed batch path is one attribute-is-None check per batch and per
rotation — structurally far below the 5% budget.  The timing test then
pins it empirically: the no-op run must stay within 5% of itself across
repeats (a stability floor) and the *live*-registry run, which pays for
real counters and per-Δt sampling, bounds the worst case.
"""

import time

import pytest

from repro.core.bitmap_filter import BitmapFilter
from repro.telemetry.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
    use_registry,
)


def _windowed_run_seconds(scale, trace, repeats=3):
    """Min-of-N wall time for one windowed-batch pass over the trace."""
    best = float("inf")
    for _ in range(repeats):
        filt = BitmapFilter(scale.bitmap_config(), trace.protected)
        begin = time.perf_counter()
        filt.process_batch(trace.packets, exact=False)
        best = min(best, time.perf_counter() - begin)
    return best


class TestNullRegistryOverhead:
    def test_default_registry_is_null(self):
        assert get_registry() is NULL_REGISTRY

    def test_noop_filter_holds_no_instruments(self, scale, medium_trace):
        """Under the null registry the hot path carries only a None check."""
        filt = BitmapFilter(scale.bitmap_config(), medium_trace.protected)
        assert filt._tel is None

    def test_live_filter_holds_instruments(self, scale, medium_trace):
        with use_registry():
            filt = BitmapFilter(scale.bitmap_config(), medium_trace.protected)
            assert filt._tel is not None

    def test_windowed_noop_within_budget(self, benchmark, scale,
                                         medium_trace):
        """No-op instrumentation regresses the windowed path by < 5%.

        Both timings run the *same* binary; the null-registry pass skips
        every telemetry branch via the ``_tel is None`` guard.  The live
        pass (counters flushed and sampled at every Δt rotation) is the
        ceiling; the no-op pass must sit well under it and the guard cost
        itself is unmeasurable against run-to-run noise, which we bound by
        comparing two independent no-op measurements.
        """
        noop_a = benchmark.pedantic(
            lambda: _windowed_run_seconds(scale, medium_trace),
            rounds=1, iterations=1)
        noop_b = _windowed_run_seconds(scale, medium_trace)
        with use_registry(MetricsRegistry()):
            live = _windowed_run_seconds(scale, medium_trace)

        pps = len(medium_trace) / noop_a
        print(f"\nwindowed batch, telemetry off: {noop_a * 1e3:8.1f} ms "
              f"({pps / 1e6:.2f} Mpps)")
        print(f"windowed batch, telemetry on:  {live * 1e3:8.1f} ms "
              f"(x{live / noop_a:.3f})")

        # Two no-op runs of identical code agree within the 5% budget, so
        # the guard itself cannot be eating the budget.
        assert abs(noop_a - noop_b) / min(noop_a, noop_b) < 0.05
        # Live instrumentation stays cheap too — per-Δt flushes only.
        assert live / min(noop_a, noop_b) < 1.5
