"""Figure 2 regeneration: traffic characteristics of the client network.

Regenerates all three panels from the synthetic trace and checks the
paper's numbers (Section 3.2); also benchmarks the generator and the
two analysis extractors.
"""

import pytest

from repro.analysis.delay import out_in_delays
from repro.analysis.lifetime import connection_lifetimes
from repro.experiments.config import SMALL
from repro.experiments.fig2 import delay_comb_offsets, generate_trace, run_fig2


class TestFig2Regeneration:
    def test_fig2a_connection_lifetime(self, benchmark, scale, medium_trace):
        result = benchmark.pedantic(
            lambda: run_fig2(scale, medium_trace), rounds=1, iterations=1
        )
        print("\n" + result.report())
        # Fig 2a: 90% < 76 s (band: within ~25%), 95% < 6 min, <1% > 515 s.
        assert result.lifetime_percentiles[90] < 95
        assert result.lifetime_percentiles[95] < 360
        assert result.lifetime_frac_over_515 < 0.01

    def test_fig2b_out_in_delay_hist(self, benchmark, scale, medium_trace):
        result = benchmark.pedantic(
            lambda: run_fig2(scale, medium_trace), rounds=1, iterations=1
        )
        offsets = delay_comb_offsets(result)
        print(f"\nFig 2b delay-comb peaks (s): {[round(x) for x in offsets]}")
        # The paper sees peaks interleaved at ~30/60 s; we assert the comb
        # exists and reaches into the tens of seconds.
        assert offsets
        assert any(x > 20 for x in offsets)

    def test_fig2c_out_in_delay_cdf(self, benchmark, scale, medium_trace):
        result = benchmark.pedantic(
            lambda: run_fig2(scale, medium_trace), rounds=1, iterations=1
        )
        # Fig 2c: 95% < 0.8 s and 99% < 2.8 s (we allow 98.5% for the latter
        # since our keep-alive comb carries slightly more mass).
        assert result.delay_frac_under_0_8 > 0.95
        assert result.delay_frac_under_2_8 > 0.985

    def test_trace_summary_matches_paper_capture(self, medium_trace):
        """Section 3.2's capture: 96.25% TCP, 3.75% UDP, 720 B mean size."""
        summary = medium_trace.summary()
        assert summary.tcp_fraction == pytest.approx(0.9625, abs=0.02)
        assert summary.udp_fraction == pytest.approx(0.0375, abs=0.02)
        assert summary.mean_packet_size == pytest.approx(720, rel=0.08)


class TestGeneratorThroughput:
    def test_workload_generation(self, benchmark):
        trace = benchmark.pedantic(
            lambda: generate_trace(SMALL), rounds=1, iterations=1
        )
        assert len(trace) > 10_000

    def test_lifetime_extraction(self, benchmark, medium_trace):
        lifetimes = benchmark.pedantic(
            lambda: connection_lifetimes(medium_trace.packets),
            rounds=1, iterations=1,
        )
        assert len(lifetimes) > 1000

    def test_delay_extraction(self, benchmark, medium_trace):
        delays = benchmark.pedantic(
            lambda: out_in_delays(medium_trace.packets, medium_trace.protected),
            rounds=1, iterations=1,
        )
        assert len(delays) > 10_000
