"""Figure 5 regeneration: the bitmap filter under the random-scan attack.

Paper: attack at 20x the normal packet rate; 99.983% of attack packets
filtered on average; the penetrating traffic tracks the normal-traffic line.
"""

import numpy as np
import pytest

from repro.core.parameters import expected_utilization
from repro.experiments.fig5 import run_fig5


@pytest.fixture(scope="module")
def result(scale, medium_trace):
    return run_fig5(scale, medium_trace)


class TestFig5Regeneration:
    def test_report_and_benchmark(self, benchmark, scale, medium_trace):
        res = benchmark.pedantic(
            lambda: run_fig5(scale, medium_trace), rounds=1, iterations=1
        )
        print("\n" + res.report())

    def test_attack_filter_rate(self, result):
        """Paper: 99.983%.  Scaled shape criterion: > 99.9%."""
        assert result.attack_filter_rate > 0.999

    def test_attack_ratio_is_paper_20x(self, result):
        assert result.attack_to_normal_ratio == 20.0

    def test_penetration_matches_eq1(self, result):
        """Eq.(1) from the measured mid-attack utilization predicts the
        measured penetration within statistical slack."""
        assert result.penetration_rate == pytest.approx(
            result.predicted_penetration, rel=1.5, abs=2e-4
        )

    def test_utilization_in_paper_regime(self, result, scale):
        """DESIGN.md section 5: the scaled run must sit in the paper's
        utilization band (paper: U ~ 4.3%) for the rates to transfer."""
        assert 0.01 < result.steady_state_utilization < 0.12

    def test_penetrating_traffic_tracks_normal_line(self, result):
        """Fig 5a: the passed-packet line hugs the normal-traffic area."""
        series = result.run.series
        attack_active = series.attack_incoming > 0
        passed = series.passed_incoming[attack_active].astype(float)
        normal = series.normal_incoming[attack_active].astype(float)
        # Per-second passed counts stay within ~20% of normal-only traffic.
        mask = normal > 10
        ratio = passed[mask] / normal[mask]
        assert float(np.median(ratio)) == pytest.approx(1.0, abs=0.2)

    def test_filter_rate_series_high_everywhere(self, result):
        """Fig 5b: per-second filtering rate stays near 100%."""
        series = result.run.series
        rate = series.attack_filter_rate_series()
        active = result.run.series.attack_incoming > 100
        assert float(np.nanmin(rate[active])) > 0.99


class TestScaleConsistency:
    def test_scaled_utilization_matches_analytical_band(self, scale, result):
        """Cross-check: U from the model at the scaled load is in-band."""
        # Rough active-connection estimate from the measured utilization:
        implied_c = (result.steady_state_utilization * (1 << scale.bitmap_order)
                     / scale.num_hashes)
        paper_u = expected_utilization(15_000, 3, 20)
        # Both utilizations live in the same order of magnitude.
        assert 0.2 < result.steady_state_utilization / paper_u < 5.0
        assert implied_c > 100
