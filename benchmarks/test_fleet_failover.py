"""Fleet failover under real node death: no hangs, bounded divergence.

Boots a 3-daemon fleet (``FleetManager`` subprocesses, packet clock),
streams a generated client trace through the consistent-hash router, and
SIGKILLs one node mid-replay.  The claims under measurement:

- the replay **completes** — every client wait is deadline-bounded, so a
  dead peer costs retries, never a hang;
- divergence from a single-filter offline replay is **confined** to
  packets the dead node owned on the ring;
- every diverged verdict equals the fleet **fail policy's** answer
  (fail_closed drops the dead share's inbound, fail_open admits it);
- a **warm restart** (snapshot → stop → ``--restore``) is invisible in
  the verdict stream: byte-identical to the uninterrupted offline run.

Run with ``pytest benchmarks/test_fleet_failover.py -s`` to see the
reports.  Not part of tier-1 (benchmarks/ is outside ``testpaths``).
"""

import time

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, FilterConfig
from repro.core.resilience import FailPolicy
from repro.fleet import FleetManager, FleetRouter, policy_verdicts
from repro.net.address import AddressSpace
from repro.serve.retry import RetryPolicy
from repro.sim.pipeline import run_filter_on_trace
from repro.traffic.generator import generate_client_trace
from repro.traffic.trace import Trace

pytestmark = [pytest.mark.slow, pytest.mark.faults]

FRAME_PACKETS = 500
# Generous hang ceiling: the healthy replay takes ~2s; a single wedged
# client wait would blow way past this.
COMPLETION_BUDGET = 120.0


@pytest.fixture(scope="module")
def failover_trace():
    return generate_client_trace(duration=40.0, target_pps=600.0, seed=23)


def _frames(packets):
    return [packets[i:i + FRAME_PACKETS]
            for i in range(0, len(packets), FRAME_PACKETS)]


def _offline_reference(info: dict, packets) -> np.ndarray:
    """Single-filter offline verdicts for the fleet's self-description."""
    fcfg = dict(info["filter"])
    policy = FailPolicy(fcfg.pop("fail_policy"))
    protected = AddressSpace(info["protected"])
    twin = BitmapFilter(FilterConfig(**fcfg), protected, fail_policy=policy)
    result = run_filter_on_trace(twin, Trace(packets, protected),
                                 exact=info["exact"])
    return np.asarray(result.verdicts, dtype=bool)


def _fleet(trace, tmp_path, fail_policy: str) -> FleetManager:
    protected = ",".join(str(net) for net in trace.protected.networks)
    return FleetManager(protected, size=3, workdir=str(tmp_path),
                        fail_policy=fail_policy,
                        order=14, rotation_interval=2.5)


def _router(specs, trace, fail_policy: FailPolicy) -> FleetRouter:
    return FleetRouter(
        specs, protected=trace.protected, fail_policy=fail_policy,
        retry=RetryPolicy(max_attempts=2, base_delay=0.05,
                          max_delay=0.5, deadline=5.0),
        failure_threshold=3, reset_timeout=1.0,
        connect_timeout=10.0, request_timeout=10.0)


@pytest.mark.parametrize("policy", ["fail_closed", "fail_open"])
def test_node_kill_mid_replay_degrades_consistently(
        failover_trace, tmp_path, capsys, policy):
    packets = failover_trace.packets.sorted_by_time()
    frames = _frames(packets)
    kill_frame = len(frames) // 2
    fail_policy = FailPolicy(policy)

    with _fleet(failover_trace, tmp_path, policy) as manager:
        router = _router(manager.specs(), failover_trace, fail_policy)
        with router:
            info = router.fleet_config()
            kill_name = router.ring.nodes[1]
            began = time.perf_counter()
            masks = router.filter_batches(frames[:kill_frame])
            manager.kill(kill_name)
            masks += router.filter_batches(frames[kill_frame:])
            elapsed = time.perf_counter() - began
            owner_names = np.asarray(router.owner_names(packets))

    verdicts = np.concatenate(masks)
    assert len(verdicts) == len(packets), "replay did not complete"
    assert elapsed < COMPLETION_BUDGET, (
        f"replay took {elapsed:.1f}s — a client hang, not failover")

    reference = _offline_reference(info, packets)
    diverged = np.flatnonzero(verdicts != reference)
    # Confinement: every diverged verdict sits on the dead node's share.
    foreign = diverged[owner_names[diverged] != kill_name]
    assert foreign.size == 0, (
        f"{foreign.size} diverged verdicts belong to surviving nodes")
    # Consistency: every diverged verdict is the fail policy's answer.
    policy_ref = policy_verdicts(packets, failover_trace.protected,
                                 fail_policy)
    inconsistent = diverged[verdicts[diverged] != policy_ref[diverged]]
    assert inconsistent.size == 0, (
        f"{inconsistent.size} diverged verdicts break the fail policy")

    with capsys.disabled():
        print(f"\n[fleet failover / {policy}] "
              f"{len(packets)} packets in {elapsed:.2f}s "
              f"({len(packets) / elapsed:,.0f} pps with a mid-replay kill)")
        owned = int((owner_names == kill_name).sum())
        print(f"  killed {kill_name} at frame {kill_frame}/{len(frames)}; "
              f"it owned {owned} packets, {diverged.size} verdicts "
              f"diverged — all confined and policy-consistent")


def test_warm_handoff_is_invisible_in_verdicts(
        failover_trace, tmp_path, capsys):
    packets = failover_trace.packets.sorted_by_time()
    frames = _frames(packets)
    half = len(frames) // 2

    with _fleet(failover_trace, tmp_path, "fail_closed") as manager:
        router = _router(manager.specs(), failover_trace,
                         FailPolicy.FAIL_CLOSED)
        with router:
            info = router.fleet_config()
            victim = router.ring.nodes[0]
            masks = router.filter_batches(frames[:half])
            began = time.perf_counter()
            new_spec = manager.warm_restart(victim)
            handoff = time.perf_counter() - began
            router.update_node(new_spec)
            masks += router.filter_batches(frames[half:])

    verdicts = np.concatenate(masks)
    reference = _offline_reference(info, packets)
    np.testing.assert_array_equal(
        verdicts, reference,
        err_msg="warm restart leaked state: fleet diverged from offline")

    with capsys.disabled():
        print(f"\n[warm handoff] snapshot->stop->restore of {victim} took "
              f"{handoff:.2f}s; {len(verdicts)} verdicts byte-identical "
              "to the uninterrupted offline replay")
