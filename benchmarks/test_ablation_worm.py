"""Worm-outbreak ablation: epidemic curve + client-network-side filtering."""

import numpy as np
import pytest

from repro.attacks.worm import WormModel, WormParameters
from repro.experiments.config import SMALL
from repro.experiments.worm import run_worm


@pytest.fixture(scope="module")
def result():
    return run_worm(SMALL)


class TestWormRegeneration:
    def test_report_and_benchmark(self, benchmark):
        res = benchmark.pedantic(lambda: run_worm(SMALL), rounds=1, iterations=1)
        print("\n" + res.report())

    def test_outbreak_grows_within_the_trace(self, result):
        t, infected = result.curve
        assert infected[0] < infected[-1]
        # The scaled trace window catches the epidemic mid-rise.
        assert infected[-1] > 5 * infected[0]

    def test_outbreak_is_logistic_over_full_horizon(self, result):
        """The S-curve needs the whole epidemic, not just the trace window:
        growth accelerates, peaks near 50% infection, then decelerates."""
        model = WormModel(result.params)
        _, infected = model.infection_curve(duration=3000.0, step=1.0)
        growth = np.diff(infected)
        peak = int(np.argmax(growth))
        assert 0 < peak < len(growth) - 1
        fraction_at_peak = infected[peak] / result.params.vulnerable_hosts
        assert 0.3 < fraction_at_peak < 0.7

    def test_scan_filter_rate(self, result):
        """Conclusion's claim: 90-99% of attack traffic filtered."""
        assert result.scan_filter_rate > 0.9

    def test_code_red_scale_outbreak_takes_hours(self):
        """With Code Red's real parameters the epidemic needs hours —
        the Section 1 motivation that patching can't keep up."""
        model = WormModel(WormParameters())  # 360K hosts, 10 scans/s
        t_half = model.time_to_fraction(0.5, step=60.0)
        assert 3600 < t_half < 24 * 3600
