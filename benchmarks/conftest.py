"""Shared fixtures for the benchmark harness.

Benchmarks run the same experiment code as ``python -m repro`` at MEDIUM
scale (DESIGN.md section 5) and print the paper-vs-measured reports; run
with ``pytest benchmarks/ --benchmark-only -s`` to see them.

The execution backend under test is selected once, for the whole run,
with ``pytest benchmarks/ --backend {serial,sharded,shared}`` — every
benchmark that cares consumes the ``backend`` fixture (no per-test
environment-variable plumbing).  ``backend_serve_args`` turns the same
selection into the ``repro serve`` CLI flags for daemon-booting
benchmarks.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import MEDIUM
from repro.experiments.fig2 import generate_trace

BACKEND_CHOICES = ("serial", "sharded", "shared")


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        action="store",
        default="serial",
        choices=BACKEND_CHOICES,
        help="execution backend the benchmarks drive the bitmap filter on",
    )
    parser.addoption(
        "--backend-workers",
        action="store",
        type=int,
        default=2,
        help="worker processes for the parallel backends",
    )


@pytest.fixture(scope="session")
def backend(request) -> str:
    """The --backend selection: serial, sharded, or shared."""
    return request.config.getoption("--backend")


@pytest.fixture(scope="session")
def backend_workers(request) -> int:
    return request.config.getoption("--backend-workers")


@pytest.fixture(scope="session")
def backend_serve_args(backend, backend_workers) -> list:
    """`repro serve` CLI flags selecting the backend under test."""
    if backend == "serial":
        return []
    return ["--backend", backend, "--workers", str(backend_workers)]


@pytest.fixture(scope="session")
def scale():
    return MEDIUM


@pytest.fixture(scope="session")
def medium_trace(scale):
    """The clean MEDIUM-scale client trace, generated once per session."""
    return generate_trace(scale)


@pytest.fixture(scope="session")
def attacked_trace(scale, medium_trace):
    """MEDIUM trace with the Fig. 5 random-scan attack mixed in."""
    from repro.experiments.fig5 import build_attack_trace

    return build_attack_trace(scale, medium_trace)
