"""Shared fixtures for the benchmark harness.

Benchmarks run the same experiment code as ``python -m repro`` at MEDIUM
scale (DESIGN.md section 5) and print the paper-vs-measured reports; run
with ``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import MEDIUM
from repro.experiments.fig2 import generate_trace


@pytest.fixture(scope="session")
def scale():
    return MEDIUM


@pytest.fixture(scope="session")
def medium_trace(scale):
    """The clean MEDIUM-scale client trace, generated once per session."""
    return generate_trace(scale)


@pytest.fixture(scope="session")
def attacked_trace(scale, medium_trace):
    """MEDIUM trace with the Fig. 5 random-scan attack mixed in."""
    from repro.experiments.fig5 import build_attack_trace

    return build_attack_trace(scale, medium_trace)
