"""Section 5.2 regeneration: insider attack and mitigations."""

import pytest

from repro.experiments.config import MEDIUM
from repro.experiments.sec52 import run_sec52


@pytest.fixture(scope="module")
def result(scale):
    return run_sec52(scale)


class TestInsiderExperiment:
    def test_report_and_benchmark(self, benchmark, scale):
        res = benchmark.pedantic(lambda: run_sec52(scale), rounds=1, iterations=1)
        print("\n" + res.report())

    def test_utilization_increase_matches_formula(self, result):
        """dU ~= m*r*Te / 2^n (the Section 5.2 estimate)."""
        baseline = result.scenarios[0]
        assert baseline.measured_increase == pytest.approx(
            baseline.predicted_increase, rel=0.5
        )

    def test_larger_bitmap_mitigates(self, result):
        baseline, larger_n, _ = result.scenarios
        assert larger_n.measured_increase < baseline.measured_increase / 2
        assert larger_n.attacked_penetration < baseline.attacked_penetration

    def test_shorter_te_mitigates(self, result):
        baseline, _, shorter_te = result.scenarios
        assert shorter_te.measured_increase < baseline.measured_increase
        assert shorter_te.attacked_penetration < baseline.attacked_penetration

    def test_attack_meaningfully_degrades_baseline(self, result):
        """The attack must actually hurt, or the mitigation test is vacuous."""
        baseline = result.scenarios[0]
        assert baseline.attacked_utilization > 2 * baseline.baseline_utilization
