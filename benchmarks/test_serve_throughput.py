"""Wire throughput of the online serving daemon (``repro serve``).

Boots a real daemon subprocess (wall clock, HTTP metrics on), replays a
generated client trace through the framing protocol with windowed
pipelining, and measures sustained packets/second *from the daemon's own
``/metrics`` counters* — the difference in ``repro_serve_packets_total``
across the replay divided by the wall time.  That proves the counters are
trustworthy at load (they must equal the packets streamed) and that the
full online path — framing, micro-batching, filtering, verdict delivery —
sustains at least its backend's floor in :data:`TARGET_PPS`.

The backend under test comes from the harness-wide ``--backend`` fixture
(``pytest benchmarks/test_serve_throughput.py --backend shared -s``); the
shared-memory backend's floor is deliberately much higher — one copy of
the bits, epoch-indexed rotation, vectorized exact batches.

Run with ``pytest benchmarks/test_serve_throughput.py -s`` to see the
table.  Not part of tier-1 (benchmarks/ is outside ``testpaths``).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

from repro.serve.client import FilterClient
from repro.telemetry.exporters import parse_prometheus
from repro.traffic.generator import generate_client_trace

#: Sustained-throughput floor per execution backend (packets/second,
#: measured end-to-end through the framing protocol on one core — see
#: EXPERIMENTS.md for the measured values these floors are derated from).
TARGET_PPS = {
    "serial": 100_000,
    "sharded": 100_000,
    "shared": 700_000,
}
MIN_PACKETS = 100_000     # stream at least this many for a stable figure
FRAME_PACKETS = 2000
WINDOW = 16

REPO_ROOT = Path(__file__).resolve().parents[1]


def _scrape_counter(url: str, name: str) -> float:
    text = urllib.request.urlopen(url, timeout=10.0).read().decode()
    for sample in parse_prometheus(text):
        if sample.name == name and not sample.labels:
            return sample.value
    raise AssertionError(f"{name} not found in {url}")


def _boot_daemon(protected: str, backend_args: list):
    cmd = [sys.executable, "-m", "repro", "serve",
           "--protected", protected, "--port", "0", "--http-port", "0",
           "--clock", "wall", "--dt", "5.0", *backend_args]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(cmd, cwd=REPO_ROOT, env=env, text=True,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT)
    line = proc.stdout.readline()
    assert line.startswith("REPRO-SERVE READY "), line
    return proc, json.loads(line.split("READY ", 1)[1])


def test_serve_sustains_target_throughput(capsys, backend,
                                          backend_serve_args):
    target_pps = TARGET_PPS[backend]
    trace = generate_client_trace(duration=30.0, target_pps=1500.0, seed=11)
    packets = trace.packets
    frames = [packets[i:i + FRAME_PACKETS]
              for i in range(0, len(packets), FRAME_PACKETS)]
    repeats = max(1, -(-MIN_PACKETS // len(packets)))  # ceil division
    protected = ",".join(str(net) for net in trace.protected.networks)

    proc, info = _boot_daemon(protected, backend_serve_args)
    try:
        host, port = info["data"]
        metrics_url = "http://{}:{}/metrics".format(*info["http"])
        client = FilterClient.connect(host, port)

        before = _scrape_counter(metrics_url, "repro_serve_packets_total")
        began = time.perf_counter()
        verdict_count = 0
        for _ in range(repeats):
            # Wall clock re-stamps arrival times, so replaying the same
            # trace repeatedly stays monotonic for the filter.
            for mask in client.filter_stream(frames, window=WINDOW):
                verdict_count += len(mask)
        elapsed = time.perf_counter() - began
        after = _scrape_counter(metrics_url, "repro_serve_packets_total")
        client.goodbye()
        client.close()
    finally:
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        proc.stdout.close()

    streamed = repeats * len(packets)
    counted = int(after - before)
    pps = counted / elapsed
    with capsys.disabled():
        print("\nonline serving throughput (live /metrics counters)")
        print(f"  backend            {backend:>12}")
        print(f"  packets streamed   {streamed:>12,}")
        print(f"  packets counted    {counted:>12,}")
        print(f"  verdicts received  {verdict_count:>12,}")
        print(f"  wall time          {elapsed:>12.3f} s")
        print(f"  throughput         {pps:>12,.0f} packets/s "
              f"(target >= {target_pps:,})")

    assert code == 0
    assert counted == streamed == verdict_count
    assert pps >= target_pps, (
        f"{backend} daemon sustained {pps:,.0f} packets/s < {target_pps:,}")
