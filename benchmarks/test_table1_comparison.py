"""Table 1 regeneration: bitmap filter vs SPI filters.

The analytical storage half is asserted exactly; the measured half is
benchmarked with pytest-benchmark on the raw data structures so the
complexity claims (O(1) vs O(log n) vs O(n)) are visible as timings.
"""

import random

import pytest

from repro.core.bitmap import Bitmap
from repro.core.hashing import HashFamily
from repro.experiments.table1 import paper_storage_rows, run_table1
from repro.spi.avltree import AvlTree
from repro.spi.base import FlowState
from repro.spi.hashlist import FlowHashTable

POPULATION = 50_000


def _random_keys(count, seed):
    rng = random.Random(seed)
    return [
        (6, rng.getrandbits(32), rng.getrandbits(16), rng.getrandbits(32),
         rng.getrandbits(16))
        for _ in range(count)
    ]


@pytest.fixture(scope="module")
def keys():
    return _random_keys(POPULATION, 1)


@pytest.fixture(scope="module")
def probe_keys():
    return _random_keys(2000, 2)


class TestAnalyticalStorage:
    def test_paper_numbers(self):
        rows = {row["structure"]: row for row in paper_storage_rows()}
        assert rows["hash+link-list (Linux)"]["storage_bytes"] == 76_800_000
        assert rows["AVL-tree"]["storage_bytes"] == 76_800_000
        bitmap = next(v for k, v in rows.items() if "bitmap" in k)
        assert bitmap["storage_bytes"] == 8 * 1024 * 1024

    def test_full_report(self):
        result = run_table1(sizes=(5_000, 20_000, 80_000), probes=2_000)
        print("\n" + result.report())
        assert result.growth_factor("bitmap filter", "lookup_ns") < 2.0
        assert result.timings["bitmap filter"][-1].gc_ms < (
            result.timings["hash+link-list"][-1].gc_ms
        )


class TestHashListOps:
    def test_insert(self, benchmark, keys, probe_keys):
        table = FlowHashTable(16384)
        for key in keys:
            table.insert(key, FlowState(1e18))

        def insert_batch():
            for key in probe_keys:
                table.insert(key, FlowState(1e18))

        benchmark.pedantic(insert_batch, rounds=3, iterations=1)

    def test_lookup(self, benchmark, keys):
        table = FlowHashTable(16384)
        for key in keys:
            table.insert(key, FlowState(1e18))
        hot = keys[:2000]
        benchmark(lambda: [table.get(key) for key in hot])

    def test_gc_sweep(self, benchmark, keys):
        table = FlowHashTable(16384)
        for key in keys:
            table.insert(key, FlowState(1e18))
        benchmark(lambda: table.sweep_expired(0.0))


class TestAvlOps:
    def test_insert(self, benchmark, keys, probe_keys):
        tree = AvlTree()
        for key in keys:
            tree.put(key, FlowState(1e18))

        def insert_batch():
            for key in probe_keys:
                tree.put(key, FlowState(1e18))

        benchmark.pedantic(insert_batch, rounds=3, iterations=1)

    def test_lookup(self, benchmark, keys):
        tree = AvlTree()
        for key in keys:
            tree.put(key, FlowState(1e18))
        hot = keys[:2000]
        benchmark(lambda: [tree.get(key) for key in hot])

    def test_gc_traversal(self, benchmark, keys):
        tree = AvlTree()
        for key in keys:
            tree.put(key, FlowState(1e18))

        def traverse():
            return sum(1 for _k, s in tree.items() if s.expires_at <= 0.0)

        benchmark(traverse)


class TestBitmapOps:
    def test_mark(self, benchmark, keys, probe_keys):
        bitmap = Bitmap(4, 20)
        hashes = HashFamily(3, 20)
        for key in keys:
            bitmap.mark(hashes.indices(key[:4]))
        hot = [key[:4] for key in probe_keys]

        def mark_batch():
            for key in hot:
                bitmap.mark(hashes.indices(key))

        benchmark.pedantic(mark_batch, rounds=3, iterations=1)

    def test_lookup(self, benchmark, keys):
        bitmap = Bitmap(4, 20)
        hashes = HashFamily(3, 20)
        for key in keys:
            bitmap.mark(hashes.indices(key[:4]))
        hot = [key[:4] for key in keys[:2000]]
        benchmark(lambda: [bitmap.test_current(hashes.indices(key)) for key in hot])

    def test_gc_rotate(self, benchmark, keys):
        bitmap = Bitmap(4, 20)
        hashes = HashFamily(3, 20)
        for key in keys:
            bitmap.mark(hashes.indices(key[:4]))
        benchmark(bitmap.rotate)
