"""Quantify the windowed batch path's approximation on real traffic.

The windowed path (DESIGN.md / BitmapFilter.process_batch_windowed) marks
each rotation window before testing it, so it can admit an unsolicited
packet whose key is re-marked later in the same window.  This bench measures
the divergence from the exact path on the MEDIUM trace and pins it small —
the empirical license for using the fast path in large-scale runs.
"""

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter
from repro.experiments.fig5 import build_attack_trace


class TestDivergence:
    @pytest.fixture(scope="class")
    def verdict_pair(self, scale, medium_trace):
        exact = BitmapFilter(scale.bitmap_config(), medium_trace.protected)
        windowed = BitmapFilter(scale.bitmap_config(), medium_trace.protected)
        return (
            exact.process_batch(medium_trace.packets, exact=True),
            windowed.process_batch(medium_trace.packets, exact=False),
        )

    def test_windowed_superset(self, verdict_pair):
        exact, windowed = verdict_pair
        assert bool(np.all(windowed >= exact))

    def test_divergence_below_one_percent(self, verdict_pair, medium_trace):
        exact, windowed = verdict_pair
        diverging = int((windowed != exact).sum())
        assert diverging / len(medium_trace) < 0.01

    def test_drop_rates_agree(self, verdict_pair, medium_trace, scale):
        exact, windowed = verdict_pair
        directions = medium_trace.packets.directions(medium_trace.protected)
        incoming = directions == 1
        exact_rate = float((~exact[incoming]).mean())
        windowed_rate = float((~windowed[incoming]).mean())
        assert windowed_rate <= exact_rate
        assert exact_rate - windowed_rate < 0.01

    def test_attack_rates_agree_under_attack(self, benchmark, scale, medium_trace):
        """On the attacked trace both paths report the same filtering rate."""
        mixed = build_attack_trace(scale, medium_trace)
        labels = mixed.packets.label
        incoming = mixed.packets.directions(mixed.protected) == 1
        attack_in = (labels == 1) & incoming

        def run(exact):
            filt = BitmapFilter(scale.bitmap_config(), mixed.protected)
            verdicts = filt.process_batch(mixed.packets, exact=exact)
            return float((~verdicts[attack_in]).mean())

        windowed_rate = benchmark.pedantic(lambda: run(False), rounds=1,
                                           iterations=1)
        exact_rate = run(True)
        assert windowed_rate == pytest.approx(exact_rate, abs=5e-4)
        assert windowed_rate > 0.999
