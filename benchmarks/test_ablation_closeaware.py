"""Close-aware bitmap ablation: buying back SPI's post-close precision.

Section 4.3 grants SPI one advantage — precise post-close drops.  The
close-aware extension (``repro.core.close_aware``) approximates it with a
maturation-delayed tombstone bitmap.  This bench compares all three filters
on the same clean trace: post-close drop counts, total drop rates, false
positives, and memory.
"""

import pytest

from repro.core.bitmap_filter import BitmapFilter
from repro.core.close_aware import CloseAwareBitmapFilter, CloseAwareConfig
from repro.experiments.config import SMALL
from repro.experiments.fig2 import generate_trace
from repro.sim.metrics import score_run
from repro.spi.hashlist import HashListFilter


@pytest.fixture(scope="module")
def comparison():
    trace = generate_trace(SMALL)
    packets = trace.packets
    incoming = packets.directions(trace.protected) == 1
    results = {}

    plain = BitmapFilter(SMALL.bitmap_config(), trace.protected)
    verdicts = plain.process_batch(packets, exact=True)
    confusion, _ = score_run(packets, verdicts, incoming, trace.duration)
    results["bitmap"] = (confusion, plain.config.memory_bytes, 0)

    aware = CloseAwareBitmapFilter(SMALL.bitmap_config(), trace.protected,
                                   CloseAwareConfig(grace=2.5, lifetime=20.0))
    verdicts = aware.process_batch(packets)
    confusion, _ = score_run(packets, verdicts, incoming, trace.duration)
    results["close-aware"] = (confusion, aware.memory_bytes,
                              aware.dropped_after_close)

    spi = HashListFilter(trace.protected, idle_timeout=SMALL.spi_idle_timeout)
    verdicts = spi.process_batch(packets)
    confusion, _ = score_run(packets, verdicts, incoming, trace.duration)
    results["spi"] = (confusion, spi.peak_storage_bytes,
                      spi.stats.dropped_after_close)
    return results


class TestCloseAwareAblation:
    def test_report_and_benchmark(self, benchmark, comparison):
        def summarize():
            lines = ["Close-aware bitmap ablation:",
                     f"{'filter':<14}{'drops':>8}{'post-close':>12}{'FP':>9}{'memory':>12}"]
            for name, (confusion, memory, post_close) in comparison.items():
                total = confusion.normal_dropped + confusion.background_dropped
                lines.append(
                    f"{name:<14}{total:>8}{post_close:>12}"
                    f"{confusion.false_positive_rate * 100:>8.2f}%"
                    f"{memory // 1024:>10}KiB")
            return "\n".join(lines)

        print("\n" + benchmark.pedantic(summarize, rounds=1, iterations=1))

    def test_close_aware_recovers_post_close_drops(self, comparison):
        """The extension drops a meaningful share of what SPI drops
        post-close and the plain bitmap misses entirely."""
        _, _, aware_post = comparison["close-aware"]
        _, _, spi_post = comparison["spi"]
        assert aware_post > 0
        assert aware_post >= 0.5 * spi_post

    def test_ordering_bitmap_below_close_aware(self, comparison):
        bitmap_conf, _, _ = comparison["bitmap"]
        aware_conf, _, _ = comparison["close-aware"]
        bitmap_drops = bitmap_conf.normal_dropped + bitmap_conf.background_dropped
        aware_drops = aware_conf.normal_dropped + aware_conf.background_dropped
        assert aware_drops > bitmap_drops

    def test_collateral_fp_increase_is_modest(self, comparison):
        """Tombstone collisions barely move the FP rate (only closes mark)."""
        bitmap_conf, _, _ = comparison["bitmap"]
        aware_conf, _, _ = comparison["close-aware"]
        # Post-close straggler drops ARE false positives by our ground-truth
        # labels (session traffic) — compare against SPI's FP rate, which
        # drops the same packets: close-aware must not exceed SPI + slack.
        spi_conf, _, _ = comparison["spi"]
        assert aware_conf.false_positive_rate <= (
            spi_conf.false_positive_rate + bitmap_conf.false_positive_rate + 0.003
        )

    def test_memory_stays_bitmap_class(self, comparison):
        """Close-aware memory is a small multiple of the plain bitmap —
        still constant, still far below per-flow state at ISP scale."""
        _, bitmap_mem, _ = comparison["bitmap"]
        _, aware_mem, _ = comparison["close-aware"]
        assert aware_mem <= 4 * bitmap_mem
