"""Seed-robustness bench: headline results across independent workloads."""

import pytest

from repro.experiments.config import SMALL
from repro.experiments.robustness import run_robustness


@pytest.fixture(scope="module")
def result():
    return run_robustness(SMALL, seeds=[11, 23, 37])


class TestSeedRobustness:
    def test_report_and_benchmark(self, benchmark):
        res = benchmark.pedantic(
            lambda: run_robustness(SMALL, seeds=[11, 23]), rounds=1, iterations=1
        )
        print("\n" + res.report())

    def test_drop_rates_stable(self, result):
        """Every seed lands in the Fig. 4 band with small spread."""
        assert result.std("spi_drop_rate") < 0.006
        assert result.std("bitmap_drop_rate") < 0.006
        assert 0.008 < result.mean("spi_drop_rate") < 0.026
        assert 0.008 < result.mean("bitmap_drop_rate") < 0.026

    def test_filtering_rate_stable(self, result):
        assert result.mean("attack_filter_rate") > 0.999
        assert result.std("attack_filter_rate") < 0.001

    def test_parity_holds_on_average(self, result):
        """Fig. 4's SPI >= bitmap ordering holds in the mean."""
        assert (result.mean("spi_drop_rate")
                >= result.mean("bitmap_drop_rate") - 0.001)
