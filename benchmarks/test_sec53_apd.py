"""Section 5.3 regeneration: adaptive packet dropping.

APD is inherently per-packet (randomized drops driven by link indicators),
so this bench runs at SMALL scale.
"""

import pytest

from repro.experiments.config import SMALL
from repro.experiments.sec53 import run_sec53


@pytest.fixture(scope="module")
def result():
    return run_sec53(SMALL)


class TestApdRegeneration:
    def test_report_and_benchmark(self, benchmark):
        res = benchmark.pedantic(lambda: run_sec53(SMALL), rounds=1, iterations=1)
        print("\n" + res.report())

    def test_bandwidth_indicator_phases(self, result):
        before, during, after = result.bandwidth_phases
        assert before.admission_rate > 0.8
        assert during.admission_rate < 0.4
        assert after.admission_rate > 0.6

    def test_ratio_indicator_phases(self, result):
        before, during, after = result.ratio_phases
        assert before.admission_rate > 0.8
        assert during.admission_rate < 0.2

    def test_ratio_indicator_stricter_under_flood(self, result):
        """A 12x in/out ratio saturates the (l=2, h=6) thresholds fully,
        while bandwidth utilization saturates only to the flood share."""
        assert (result.ratio_phases[1].admission_rate
                <= result.bandwidth_phases[1].admission_rate + 0.05)

    def test_signal_policy_ablation(self, result):
        """Without the marking policy, scan-elicited replies punch holes
        the scanner exploits ~100% of the time; with it, ~0%."""
        assert result.ablation["with signal policy"] < 0.02
        assert result.ablation["without signal policy"] > 0.95
