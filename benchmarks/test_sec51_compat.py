"""Section 5.1 regeneration: protocol compatibility and hole punching."""

import pytest

from repro.experiments.compat import run_compat
from repro.experiments.config import SMALL


@pytest.fixture(scope="module")
def result():
    return run_compat(SMALL)


class TestCompatibility:
    def test_report_and_benchmark(self, benchmark):
        res = benchmark.pedantic(lambda: run_compat(SMALL), rounds=1,
                                 iterations=1)
        print("\n" + res.report())

    def test_active_mode_broken_without_punching(self, result):
        """The paper's premise: server-initiated channels are dropped."""
        assert result.data_channel_success_without_punch < 0.05

    def test_hole_punching_fixes_it(self, result):
        assert result.data_channel_success_with_punch > 0.95

    def test_holes_expire(self, result):
        """A connect attempt > Te after the punch fails — holes are not
        permanent (the paper's security argument)."""
        assert result.late_connect_success_with_punch < 0.05

    def test_no_collateral_damage(self, result):
        """Punching for FTP does not change normal traffic's FP rate."""
        assert result.normal_fp_with_punch == pytest.approx(
            result.normal_fp_without_punch, abs=0.002
        )
