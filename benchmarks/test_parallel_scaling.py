"""Workers-vs-throughput scaling of the sharded execution backend.

Replays the MEDIUM-scale Fig. 5 attack trace through the bitmap filter on
the serial backend and on the sharded backend at 1, 2, and 4 workers,
printing a workers-vs-pps table (the numbers quoted in EXPERIMENTS.md).
Verdict equality against the serial run is asserted unconditionally — the
equivalence guarantee holds at any core count.  The >= 2x speedup
assertion at 4 workers only makes sense with >= 4 usable cores, so it is
skipped (after printing the table) on smaller machines.
"""

import os
import time

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter
from repro.experiments.config import MEDIUM
from repro.parallel import ShardedBitmapFilter

WORKER_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 2.0     # at 4 workers, vs the serial baseline
REQUIRED_CORES = 4


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _timed_run(filt, packets) -> float:
    start = time.perf_counter()
    filt.process_batch(packets, exact=True)
    return time.perf_counter() - start


def test_sharded_scaling(attacked_trace, capsys):
    packets = attacked_trace.packets
    protected = attacked_trace.protected
    config = MEDIUM.bitmap_config()

    serial = BitmapFilter(config, protected)
    serial_wall = _timed_run(serial, packets)
    serial_verdicts = BitmapFilter(config, protected).process_batch(
        packets, exact=True)

    rows = [("serial", serial_wall, len(packets) / serial_wall, 1.0)]
    for workers in WORKER_COUNTS:
        with ShardedBitmapFilter(config, protected,
                                 num_workers=workers) as sharded:
            wall = _timed_run(sharded, packets)
        with ShardedBitmapFilter(config, protected,
                                 num_workers=workers) as sharded:
            assert np.array_equal(
                sharded.process_batch(packets, exact=True), serial_verdicts
            ), f"sharded verdicts diverged at {workers} workers"
        rows.append((f"{workers} worker{'s' if workers > 1 else ''}",
                     wall, len(packets) / wall, serial_wall / wall))

    cores = _usable_cores()
    with capsys.disabled():
        print(f"\nsharded scaling, {len(packets)} packets, "
              f"{cores} usable core(s):")
        print(f"  {'backend':<12} {'wall (s)':>9} {'pps':>12} {'speedup':>8}")
        for label, wall, pps, speedup in rows:
            print(f"  {label:<12} {wall:>9.3f} {pps:>12,.0f} {speedup:>7.2f}x")

    if cores < REQUIRED_CORES:
        pytest.skip(
            f"speedup assertion needs >= {REQUIRED_CORES} usable cores, "
            f"have {cores}; verdict equality was still asserted above")
    four_worker_speedup = rows[-1][3]
    assert four_worker_speedup >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x at 4 workers, "
        f"measured {four_worker_speedup:.2f}x")
