"""Workers-vs-throughput scaling of the parallel execution backends.

Replays the MEDIUM-scale Fig. 5 attack trace through the bitmap filter on
the serial backend and on both parallel backends (sharded replicas and
the shared-memory segment) at 1, 2, and 4 workers, printing a
workers-vs-pps table (the numbers quoted in EXPERIMENTS.md).  Verdict
equality against the serial run is asserted unconditionally for every
row — the equivalence guarantee holds at any core count.

Two scaling assertions, matched to where each backend's speed comes from:

- sharded replicas scale with cores, so the >= 2x speedup at 4 workers is
  only asserted with >= 4 usable cores (skipped, after printing, on
  smaller machines);
- the shared backend's batches run vectorized on one copy of the bits,
  so it must beat the serial baseline even on a single core — that
  assertion always runs.
"""

import os
import time

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter
from repro.experiments.config import MEDIUM
from repro.parallel import SharedBitmapFilter, ShardedBitmapFilter

WORKER_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 2.0     # sharded at 4 workers, vs the serial baseline
REQUIRED_CORES = 4

PARALLEL_FILTERS = {"sharded": ShardedBitmapFilter,
                    "shared": SharedBitmapFilter}


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _timed_run(filt, packets) -> float:
    start = time.perf_counter()
    filt.process_batch(packets, exact=True)
    return time.perf_counter() - start


def test_parallel_scaling(attacked_trace, capsys):
    packets = attacked_trace.packets
    protected = attacked_trace.protected
    config = MEDIUM.bitmap_config()

    serial = BitmapFilter(config, protected)
    serial_wall = _timed_run(serial, packets)
    serial_verdicts = BitmapFilter(config, protected).process_batch(
        packets, exact=True)

    rows = [("serial", "", serial_wall, len(packets) / serial_wall, 1.0)]
    for name, cls in PARALLEL_FILTERS.items():
        for workers in WORKER_COUNTS:
            with cls(config, protected, num_workers=workers) as filt:
                wall = _timed_run(filt, packets)
            with cls(config, protected, num_workers=workers) as filt:
                assert np.array_equal(
                    filt.process_batch(packets, exact=True), serial_verdicts
                ), f"{name} verdicts diverged at {workers} workers"
            rows.append((name, f"{workers}w", wall,
                         len(packets) / wall, serial_wall / wall))

    cores = _usable_cores()
    with capsys.disabled():
        print(f"\nparallel scaling, {len(packets)} packets, "
              f"{cores} usable core(s):")
        print(f"  {'backend':<9} {'workers':>7} {'wall (s)':>9} "
              f"{'pps':>12} {'speedup':>8}")
        for name, workers, wall, pps, speedup in rows:
            print(f"  {name:<9} {workers:>7} {wall:>9.3f} "
                  f"{pps:>12,.0f} {speedup:>7.2f}x")

    # Shared-memory speedup is vectorization, not parallelism: it must
    # hold on any machine, including this one.
    shared_rows = [r for r in rows if r[0] == "shared"]
    best_shared = max(r[4] for r in shared_rows)
    assert best_shared >= 1.0, (
        f"shared backend never beat the serial baseline "
        f"(best {best_shared:.2f}x)")

    if cores < REQUIRED_CORES:
        pytest.skip(
            f"sharded speedup assertion needs >= {REQUIRED_CORES} usable "
            f"cores, have {cores}; verdict equality and the shared-backend "
            f"speedup were still asserted above")
    sharded_rows = [r for r in rows if r[0] == "sharded"]
    four_worker_speedup = sharded_rows[-1][4]
    assert four_worker_speedup >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x at 4 workers, "
        f"measured {four_worker_speedup:.2f}x")
