"""Offline multi-site scenario throughput floor.

Builds and runs one 3-site fat-tree web-search scenario (normal mix +
staggered scan wave + a roaming-client snapshot handoff) entirely offline
and asserts the end-to-end filtered-packet rate — trace generation
excluded, filtering + scoring + advisor included — stays above a floor.
The scenario engine is a thin composition over the filter pipeline, so a
collapse here means a regression in the hot path, not in the scenarios.
"""

import time

import pytest

from repro.scenarios.runner import build_scenario, run_offline
from repro.scenarios.spec import (
    AttackWave,
    FilterGeometry,
    RoamingClient,
    ScenarioSpec,
    TrafficSpec,
)

#: Deliberately derated (the pipeline alone clears several hundred k pps
#: serial) so CI container jitter cannot flake the gate.
FLOOR_PPS = 30_000.0

SPEC = ScenarioSpec(
    name="bench-multisite",
    topology="fat-tree",
    sites=3,
    duration=30.0,
    seed=17,
    traffic=TrafficSpec(mix="web-search", pps=150.0),
    filter=FilterGeometry(order=14),
    waves=(AttackWave(kind="scan", rate_multiplier=10.0, site_stagger=3.0),),
    roamers=(RoamingClient(roam_fraction=0.5, pps=30.0),),
)


def test_offline_scenario_throughput_floor(capsys):
    run = build_scenario(SPEC)
    total_packets = sum(len(site.trace.packets) for site in run.sites)
    total_packets += sum(len(r.trace.packets) for r in run.roamers)

    start = time.perf_counter()
    outcome = run_offline(run)
    wall = time.perf_counter() - start
    pps = total_packets / wall

    with capsys.disabled():
        print(f"\nmultisite offline: {total_packets:,} packets over "
              f"{len(run.sites)} sites + {len(run.roamers)} roamer in "
              f"{wall:.3f}s = {pps:,.0f} pps "
              f"(floor {FLOOR_PPS:,.0f})")

    assert outcome.roamers[0].snapshot_sequence >= 1
    assert all(site.confusion.attack_filter_rate > 0.5
               for site in outcome.sites)
    assert pps >= FLOOR_PPS, (
        f"offline scenario throughput {pps:,.0f} pps fell below the "
        f"{FLOOR_PPS:,.0f} floor")
