"""Figure 4 regeneration: SPI vs bitmap drop rates on the clean trace.

Paper: SPI average 1.56%, bitmap 1.51%, scatter hugging slope 1.0.  Shape
criteria: both averages in the same ~1-2.5% band, SPI >= bitmap (the SPI
drops post-close packets "precisely"), and strongly correlated per-window
rates with slope near 1.
"""

import pytest

from repro.core.bitmap_filter import BitmapFilter
from repro.experiments.fig4 import run_fig4
from repro.sim.pipeline import run_filter_on_trace
from repro.spi.avltree import AvlTreeFilter
from repro.spi.hashlist import HashListFilter


class TestFig4Regeneration:
    @pytest.fixture(scope="class")
    def result(self, scale, medium_trace):
        return run_fig4(scale, medium_trace)

    def test_report_and_benchmark(self, benchmark, scale, medium_trace):
        result = benchmark.pedantic(
            lambda: run_fig4(scale, medium_trace), rounds=1, iterations=1
        )
        print("\n" + result.report())

    def test_drop_rates_in_paper_band(self, result):
        assert 0.008 < result.bitmap_drop_rate < 0.026
        assert 0.008 < result.spi_drop_rate < 0.026

    def test_spi_slightly_above_bitmap(self, result):
        """Paper ordering: 1.56% (SPI) vs 1.51% (bitmap)."""
        assert result.spi_drop_rate >= result.bitmap_drop_rate * 0.97

    def test_rates_nearly_identical(self, result):
        """Fig. 4's main message: the filters behave alike on clean traffic."""
        assert result.bitmap_drop_rate == pytest.approx(result.spi_drop_rate,
                                                        rel=0.25)

    def test_scatter_slope_near_one(self, result):
        assert 0.7 < result.fitted_slope < 1.3
        assert result.correlation > 0.7


class TestSpiVariantsAgree:
    def test_avl_matches_hashlist(self, scale, medium_trace):
        """Both SPI data structures implement identical semantics."""
        hashlist = run_filter_on_trace(
            HashListFilter(medium_trace.protected,
                           idle_timeout=scale.spi_idle_timeout),
            medium_trace,
        )
        avl = run_filter_on_trace(
            AvlTreeFilter(medium_trace.protected,
                          idle_timeout=scale.spi_idle_timeout),
            medium_trace,
        )
        assert bool((hashlist.verdicts == avl.verdicts).all())


class TestFilterThroughput:
    """Packets/second of each filter path on the clean trace."""

    def test_bitmap_exact_batch(self, benchmark, scale, medium_trace):
        def run():
            filt = BitmapFilter(scale.bitmap_config(), medium_trace.protected)
            return filt.process_batch(medium_trace.packets, exact=True)

        verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
        assert len(verdicts) == len(medium_trace)

    def test_bitmap_windowed_batch(self, benchmark, scale, medium_trace):
        def run():
            filt = BitmapFilter(scale.bitmap_config(), medium_trace.protected)
            return filt.process_batch(medium_trace.packets, exact=False)

        verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
        assert len(verdicts) == len(medium_trace)

    def test_spi_hashlist_batch(self, benchmark, scale, medium_trace):
        def run():
            filt = HashListFilter(medium_trace.protected,
                                  idle_timeout=scale.spi_idle_timeout)
            return filt.process_batch(medium_trace.packets)

        verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
        assert len(verdicts) == len(medium_trace)
