"""Chaos bench: the headline metrics must survive injected faults.

Acceptance bounds (ISSUE 1): with a rotation stall of <= 2*dt, a mid-trace
crash+restore, or <= 0.01% random bit flips, the attack filter rate stays
above 99% and the benign drop rate stays within 2x the fault-free baseline;
a fail-closed outage drops all inbound and a fail-open outage admits all
inbound.  Run via ``make chaos`` or ``pytest benchmarks/ -m faults``.
"""

import pytest

from repro.experiments.config import SMALL
from repro.experiments.resilience import BIT_FLIP_FRACTION, run_resilience

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def result():
    return run_resilience(SMALL)


def _within_bounds(result, name):
    scenario = result.outcome(name)
    assert scenario.attack_filter_rate > 0.99, (
        f"{name}: attack filter rate fell to "
        f"{scenario.attack_filter_rate:.4%}"
    )
    assert scenario.benign_drop_rate <= 2 * result.baseline.benign_drop_rate, (
        f"{name}: benign drop rate {scenario.benign_drop_rate:.4%} exceeds "
        f"2x baseline {result.baseline.benign_drop_rate:.4%}"
    )


class TestChaosResilience:
    def test_report_and_benchmark(self, benchmark):
        res = benchmark.pedantic(
            lambda: run_resilience(SMALL), rounds=1, iterations=1
        )
        print("\n" + res.report())

    def test_rotation_stall_within_bounds(self, result):
        """A stall of 2*dt that catches up on resume barely moves the needle."""
        _within_bounds(result, "rotation stall 2Δt (catch-up)")

    def test_catch_up_no_worse_than_naive_timer(self, result):
        """Catching up missed rotations never filters less than stretching Te."""
        catch_up = result.outcome("rotation stall 2Δt (catch-up)")
        naive = result.outcome("rotation stall 2Δt (no catch-up)")
        assert catch_up.attack_filter_rate >= naive.attack_filter_rate - 1e-9

    def test_crash_restore_within_bounds(self, result):
        """Crash + checkpoint restore: warm-up grace absorbs the blind window."""
        _within_bounds(result, "crash+restore (snapshot)")

    def test_cold_restart_within_bounds(self, result):
        """Even a snapshot-less restart stays in bounds thanks to Te grace."""
        _within_bounds(result, "crash+cold restart")

    def test_bit_flips_within_bounds(self, result):
        _within_bounds(result, f"bit flips {BIT_FLIP_FRACTION:.2%}")

    def test_trace_faults_within_benign_bound(self, result):
        """Reordering/duplication/gaps cost benign drops, boundedly."""
        for name in ("packet reordering", "packet duplication", "trace gap"):
            scenario = result.outcome(name)
            assert (scenario.benign_drop_rate
                    <= 2 * result.baseline.benign_drop_rate), name

    def test_fail_closed_outage_drops_all_inbound(self, result):
        scenario = result.outcome("fail-closed outage")
        assert scenario.outage_pass_fraction == 0.0

    def test_fail_open_outage_admits_all_inbound(self, result):
        scenario = result.outcome("fail-open outage")
        assert scenario.outage_pass_fraction == 1.0
        # The price of staying open: attack traffic flows for the outage.
        assert scenario.delta_filter_rate < -0.05
