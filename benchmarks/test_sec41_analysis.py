"""Section 4.1 regeneration: capacity bounds, optimal m, memory.

Pure analysis plus an empirical Eq.(1) validation — the exact numbers the
paper derives for the {4 x 20}-bitmap.
"""

import pytest

from repro.core.parameters import (
    max_supported_connections,
    memory_bytes,
    optimal_num_hashes,
)
from repro.experiments.sec41 import run_sec41


class TestCapacityTable:
    """Paper: c <= 167K / 125K / 83K for p = 10% / 5% / 1%."""

    def test_run_and_report(self, benchmark):
        result = benchmark.pedantic(run_sec41, rounds=1, iterations=1)
        print("\n" + result.report())
        caps = {row["target_penetration"]: row["max_connections"]
                for row in result.capacity_rows}
        assert caps[0.10] == pytest.approx(167_000, rel=0.02)
        assert caps[0.05] == pytest.approx(125_000, rel=0.05)
        assert caps[0.01] == pytest.approx(83_000, rel=0.02)

    def test_memory_is_512kb(self):
        assert memory_bytes(4, 20) == 512 * 1024

    def test_m_3_suffices_for_trace_load(self):
        """15K active connections: m=3 keeps p ~ 8e-5 (paper's setup)."""
        from repro.core.parameters import penetration_probability_for_load

        p = penetration_probability_for_load(15_000, 3, 20)
        assert p < 1e-4

    def test_optimal_m_far_above_needed(self):
        """Eq. (4)'s optimum for 15K connections is ~25 hashes; the paper
        settles for 3 because the bounds already hold — both must be true."""
        m_star = optimal_num_hashes(20, 15_000, integral=False)
        assert 20 < m_star < 30

    def test_capacity_monotone_in_target(self):
        assert (max_supported_connections(20, 0.10)
                > max_supported_connections(20, 0.05)
                > max_supported_connections(20, 0.01))

    def test_empirical_validation(self):
        result = run_sec41(measure_trials=200_000)
        # Utilization-matched check: measured penetration must sit in the
        # predicted order of magnitude (p ~ 8e-5 -> expect < 4e-4).
        assert result.measured_penetration < 4e-4
