"""Parameter-sensitivity ablation: Eq. (2) versus measured penetration.

The design-choice sweep DESIGN.md calls out: how n, m, and c move the
penetration probability, and the U-shaped curve around the Eq. (4) optimum.
"""

import pytest

from repro.experiments.sweep import measure_penetration, run_sweep


@pytest.fixture(scope="module")
def result():
    return run_sweep(trials=40_000)


class TestSweepRegeneration:
    def test_report_and_benchmark(self, benchmark):
        res = benchmark.pedantic(lambda: run_sweep(trials=20_000),
                                 rounds=1, iterations=1)
        print("\n" + res.report())

    def test_measurements_track_exact_model(self, result):
        for point in result.points:
            assert point.measured == pytest.approx(
                point.predicted_exact, rel=0.5, abs=2e-3
            ), (point.order, point.num_hashes, point.connections)

    def test_doubling_connections_worsens_penetration(self, result):
        by_key = {(p.order, p.num_hashes, p.connections): p.measured
                  for p in result.points}
        assert by_key[(14, 3, 2000)] > by_key[(14, 3, 1000)]

    def test_larger_n_improves_penetration(self, result):
        by_key = {(p.order, p.num_hashes, p.connections): p.measured
                  for p in result.points}
        assert by_key[(15, 3, 2000)] < by_key[(14, 3, 2000)]
        assert by_key[(16, 3, 2000)] < by_key[(15, 3, 2000)]

    def test_u_curve_shape(self, result):
        """Measured penetration improves from m=1 toward the optimum."""
        curve = {p.num_hashes: p.measured for p in result.optimum_curve}
        assert curve[1] > curve[2] > curve[4]

    def test_optimum_location(self, result):
        """Eq. (4): m* = 2^14/(e*1500) ~ 4."""
        assert result.optimum_m == pytest.approx(4.0, abs=0.5)


class TestSeedIndependence:
    def test_measured_penetration_stable_across_seeds(self):
        import random

        values = [
            measure_penetration(14, 3, 1500, trials=20_000, rng=random.Random(s))
            for s in (1, 2, 3)
        ]
        spread = max(values) - min(values)
        assert spread < 0.01
