"""Section 2 regeneration: aggregate throttling vs the bitmap filter."""

import pytest

from repro.experiments.config import SMALL
from repro.experiments.throttle_cmp import run_throttle_comparison


@pytest.fixture(scope="module")
def result():
    return run_throttle_comparison(SMALL)


class TestSection2Claims:
    def test_report_and_benchmark(self, benchmark):
        res = benchmark.pedantic(lambda: run_throttle_comparison(SMALL),
                                 rounds=1, iterations=1)
        print("\n" + res.report())

    def test_collateral_damage_on_shared_aggregate(self, result):
        throttled = result.get("reflection flood", "aggregate throttling")
        bitmap = result.get("reflection flood", "bitmap filter")
        assert throttled.legit_damage_rate > 1.5 * bitmap.legit_damage_rate

    def test_randomized_and_slow_attacks_evade_throttling(self, result):
        assert result.get("randomized scan", "aggregate throttling").attack_filter_rate < 0.1
        assert result.get("slow attack", "aggregate throttling").attack_filter_rate < 0.1

    def test_bitmap_is_volume_independent(self, result):
        """Same ~100% filtering whether the attack is fast, slow, or fixed."""
        rates = [result.get(s, "bitmap filter").attack_filter_rate
                 for s in ("reflection flood", "randomized scan", "slow attack")]
        assert min(rates) > 0.99
        assert max(rates) - min(rates) < 0.01
