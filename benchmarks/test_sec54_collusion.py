"""Section 5.4 regeneration: sniffed-tuple replay vs collusion latency."""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.sec54 import run_sec54

XS = ExperimentScale(name="xs", duration=60.0, normal_pps=250.0,
                     bitmap_order=14)


@pytest.fixture(scope="module")
def result():
    return run_sec54(XS)


class TestCollusion:
    def test_report_and_benchmark(self, benchmark):
        res = benchmark.pedantic(lambda: run_sec54(XS), rounds=1, iterations=1)
        print("\n" + res.report())

    def test_fresh_reports_penetrate(self, result):
        """Low-latency collusion works — the attack the section warns of."""
        assert result.rate_at(1.0, 20.0) > 0.9

    def test_penetration_decays_with_latency(self, result):
        """The paper's core claim: stale reports lose their value."""
        assert (result.rate_at(1.0, 20.0)
                > result.rate_at(25.0, 20.0)
                > 0)
        assert result.rate_at(25.0, 20.0) < result.rate_at(16.0, 20.0) + 0.05

    def test_short_te_shrinks_the_window(self, result):
        """Section 5.4's defense: with Te=5s the same 8s-stale report is
        worth half as much."""
        assert result.rate_at(8.0, 5.0) < 0.6 * result.rate_at(8.0, 20.0)

    def test_floor_is_live_flow_replay(self, result):
        """Even very stale replays hit still-active flows — a floor that
        any symmetry filter (incl. exact SPI) shares; it must be well below
        the fresh-report rate."""
        assert result.rate_at(40.0, 20.0) < 0.7 * result.rate_at(1.0, 20.0)
