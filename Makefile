# Convenience targets for the bitmap-filter reproduction.

PYTHON ?= python

.PHONY: install test bench figures experiments examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper table/figure report on stdout.
experiments:
	$(PYTHON) -m repro all

# Dump every figure's data series as CSV under figures/.
figures:
	$(PYTHON) -m repro export --out figures

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache figures
	find . -name __pycache__ -type d -exec rm -rf {} +
