# Convenience targets for the bitmap-filter reproduction.

PYTHON ?= python

.PHONY: install test bench chaos differential serve-smoke fleet-smoke multisite-smoke profile figures experiments examples clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fault-injection acceptance run: headline metrics under injected faults.
# Works without `make install` by putting src/ on the path.
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_resilience.py -m faults -s

# Serial-vs-parallel equivalence proof (the suite itself sweeps the
# sharded and shared backends at 1/2/4 workers), the workers-vs-pps
# table, and the serve-throughput floor on the selected backend:
#   make differential BACKEND=shared
BACKEND ?= serial
differential:
	PYTHONPATH=src $(PYTHON) -m pytest tests/differential/ -m differential
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_parallel_scaling.py -s
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_serve_throughput.py -s --backend $(BACKEND)

# Online serving end-to-end smoke: boot the daemon, replay a trace with
# --verify (online == offline verdicts), scrape /metrics, clean SIGTERM.
serve-smoke:
	PYTHONPATH=src $(PYTHON) scripts/serve_smoke.py

# Fleet end-to-end smoke: consistent-hash routing, healthy fleet ==
# offline replay, and policy-consistent failover under a node SIGKILL.
fleet-smoke:
	PYTHONPATH=src $(PYTHON) scripts/fleet_smoke.py

# Multi-site scenario smoke: a 3-site fat-tree scenario offline (preset and
# TOML file) and replayed against a live one-daemon-per-site fleet with
# --verify (online == offline verdicts incl. the roaming handoff).
multisite-smoke:
	PYTHONPATH=src $(PYTHON) scripts/multisite_smoke.py

# Profile fig5 with live telemetry: stage breakdown + metric exports.
profile:
	PYTHONPATH=src $(PYTHON) -m repro stats --experiment fig5 --profile --every 20

# Regenerate every paper table/figure report on stdout.
experiments:
	$(PYTHON) -m repro all

# Dump every figure's data series as CSV under figures/.
figures:
	$(PYTHON) -m repro export --out figures

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex =="; \
		$(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache figures
	find . -name __pycache__ -type d -exec rm -rf {} +
