"""Tests for repro.baselines.throttle."""

import pytest

from repro.baselines.throttle import Aggregate, AggregateRateLimiter, TokenBucket
from repro.core.bitmap_filter import Decision
from repro.net.packet import Packet, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP
from tests.conftest import make_request


class TestTokenBucket:
    def test_burst_then_rate(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        # The burst drains first...
        assert all(bucket.allow(0.0) for _ in range(5))
        assert not bucket.allow(0.0)
        # ...then refills at the configured rate.
        assert bucket.allow(0.1)   # 1 token accrued
        assert not bucket.allow(0.1)

    def test_capacity_capped(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        bucket.allow(100.0)  # long idle -> tokens capped at burst
        assert bucket.tokens == pytest.approx(4.0)

    def test_steady_state_rate(self):
        bucket = TokenBucket(rate=10.0, burst=1.0)
        allowed = sum(bucket.allow(t * 0.01) for t in range(1000))  # 100 pps offered
        # 10 s at 10 allowed/s plus the burst.
        assert 95 <= allowed <= 110

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)

    def test_time_going_backwards_is_safe(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        bucket.allow(10.0)
        assert isinstance(bucket.allow(5.0), bool)  # no crash, no refill


class TestAggregate:
    def test_matching(self):
        agg = Aggregate(IPPROTO_UDP, 53)
        pkt = Packet(0.0, IPPROTO_UDP, 1, 2, 3, 53)
        assert agg.matches(pkt)
        assert not agg.matches(Packet(0.0, IPPROTO_TCP, 1, 2, 3, 53))
        assert not agg.matches(Packet(0.0, IPPROTO_UDP, 1, 2, 3, 54))

    def test_host_scoped(self):
        agg = Aggregate(IPPROTO_UDP, 53, daddr=99)
        assert agg.matches(Packet(0.0, IPPROTO_UDP, 1, 2, 99, 53))
        assert not agg.matches(Packet(0.0, IPPROTO_UDP, 1, 2, 98, 53))

    def test_str(self):
        assert "dport 53" in str(Aggregate(IPPROTO_UDP, 53))


class TestAggregateRateLimiter:
    def _flood(self, limiter, victim, count, rate=1000.0, sport=4444, dport=53,
               start=0.0):
        passed = 0
        for i in range(count):
            pkt = Packet(start + i / rate, IPPROTO_UDP, 0x01010101, sport,
                         victim, dport)
            if limiter.process(pkt) is Decision.PASS:
                passed += 1
        return passed

    def test_hot_aggregate_gets_limited(self, protected):
        limiter = AggregateRateLimiter(protected, trigger_pps=100.0,
                                       limit_pps=20.0)
        victim = protected.networks[0].host(9)
        passed = self._flood(limiter, victim, count=5000, rate=1000.0)
        # 5 s of flood: ~trigger ramp + 20 pps afterwards << 5000.
        assert passed < 1500
        assert limiter.packets_limited > 3000
        assert (IPPROTO_UDP, 53) in limiter.active_limiters

    def test_quiet_aggregate_untouched(self, protected):
        limiter = AggregateRateLimiter(protected, trigger_pps=100.0,
                                       limit_pps=20.0)
        victim = protected.networks[0].host(9)
        passed = self._flood(limiter, victim, count=50, rate=10.0)
        assert passed == 50
        assert not limiter.active_limiters

    def test_outgoing_never_limited(self, protected, client_addr, server_addr):
        limiter = AggregateRateLimiter(protected, trigger_pps=1.0, limit_pps=1.0)
        for i in range(100):
            pkt = make_request(i * 0.001, client_addr, server_addr)
            assert limiter.process(pkt) is Decision.PASS

    def test_limiter_removed_when_rate_subsides(self, protected):
        limiter = AggregateRateLimiter(protected, trigger_pps=100.0,
                                       limit_pps=20.0, window=5.0)
        victim = protected.networks[0].host(9)
        self._flood(limiter, victim, count=2000, rate=1000.0)
        assert limiter.active_limiters
        # Trickle traffic afterwards: the window drains, the limiter lifts.
        passed = self._flood(limiter, victim, count=20, rate=1.0, start=30.0)
        assert not limiter.active_limiters
        assert passed >= 19

    def test_sport_key(self, protected):
        limiter = AggregateRateLimiter(protected, trigger_pps=50.0,
                                       limit_pps=10.0, key="sport")
        victim = protected.networks[0].host(9)
        self._flood(limiter, victim, count=2000, rate=1000.0, sport=53,
                    dport=60000)
        assert (IPPROTO_UDP, 53) in limiter.active_limiters

    def test_validation(self, protected):
        with pytest.raises(ValueError):
            AggregateRateLimiter(protected, trigger_pps=0, limit_pps=1)
        with pytest.raises(ValueError):
            AggregateRateLimiter(protected, trigger_pps=1, limit_pps=1,
                                 key="saddr")


class TestSection2Comparison:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.config import ExperimentScale
        from repro.experiments.throttle_cmp import run_throttle_comparison

        xs = ExperimentScale(name="xs", duration=60.0, normal_pps=200.0,
                             bitmap_order=13)
        return run_throttle_comparison(xs)

    def test_throttling_catches_identifiable_flood(self, result):
        outcome = result.get("reflection flood", "aggregate throttling")
        assert outcome.attack_filter_rate > 0.9

    def test_but_damages_the_shared_aggregate(self, result):
        """Criticism 2: legit DNS replies die with the reflection flood."""
        throttled = result.get("reflection flood", "aggregate throttling")
        bitmap = result.get("reflection flood", "bitmap filter")
        assert throttled.legit_damage_rate > bitmap.legit_damage_rate

    def test_misses_randomized_attack(self, result):
        """Criticism 1: no identifiable aggregate, nothing limited."""
        outcome = result.get("randomized scan", "aggregate throttling")
        assert outcome.attack_filter_rate < 0.1

    def test_misses_slow_attack(self, result):
        """Criticism 3: below the trigger, nothing limited."""
        outcome = result.get("slow attack", "aggregate throttling")
        assert outcome.attack_filter_rate < 0.1

    def test_bitmap_handles_all_three(self, result):
        for scenario in ("reflection flood", "randomized scan", "slow attack"):
            outcome = result.get(scenario, "bitmap filter")
            assert outcome.attack_filter_rate > 0.99, scenario
            assert outcome.legit_damage_rate < 0.03, scenario
