"""Circuit breaker and health checker: every transition on a fake clock."""

import pytest

from repro.fleet.health import BreakerState, CircuitBreaker, HealthChecker


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, reset_timeout=5.0, clock=clock)


class TestBreakerTransitions:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_stays_closed_below_threshold(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_opens_at_threshold(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_the_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.failures == 0
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_open_advances_to_half_open_after_timeout(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_allows_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # everyone else waits for its outcome
        assert not breaker.allow()

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow() and breaker.allow()

    def test_probe_failure_reopens_and_restarts_timer(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(4.9)
        assert breaker.state is BreakerState.OPEN  # timer restarted
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_trip_forces_open(self, breaker):
        breaker.trip()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0, clock=clock)


class TestHealthChecker:
    def make(self, clock, docs):
        breakers = {name: CircuitBreaker(failure_threshold=2,
                                         reset_timeout=5.0, clock=clock)
                    for name in docs}

        def probe(node):
            doc = docs[node]
            if isinstance(doc, Exception):
                raise doc
            return doc

        return breakers, HealthChecker(breakers, probe=probe)

    def test_serving_doc_is_a_success(self, clock):
        breakers, checker = self.make(
            clock, {"a": {"status": "serving", "degraded": False}})
        assert checker.check_now() == {"a": True}
        assert breakers["a"].failures == 0
        assert checker.last_health("a")["status"] == "serving"

    def test_degraded_doc_is_a_failure(self, clock):
        breakers, checker = self.make(
            clock, {"a": {"status": "serving", "degraded": True}})
        assert checker.check_now() == {"a": False}
        assert breakers["a"].failures == 1

    def test_probe_exception_is_a_failure(self, clock):
        breakers, checker = self.make(clock, {"a": OSError("down")})
        assert not checker.check_node("a")
        assert checker.last_health("a") is None

    def test_repeated_failures_trip_the_breaker(self, clock):
        breakers, checker = self.make(clock, {"a": OSError("down")})
        checker.check_now()
        checker.check_now()
        assert breakers["a"].state is BreakerState.OPEN

    def test_recovery_probe_readmits_a_node(self, clock):
        docs = {"a": OSError("down")}
        breakers, checker = self.make(clock, docs)
        checker.check_now()
        checker.check_now()
        assert breakers["a"].state is BreakerState.OPEN
        clock.advance(5.0)
        docs["a"] = {"status": "serving"}
        assert checker.check_node("a")
        assert breakers["a"].state is BreakerState.CLOSED

    def test_mixed_fleet_sweep(self, clock):
        breakers, checker = self.make(clock, {
            "a": {"status": "serving"},
            "b": {"status": "draining"},
            "c": ConnectionRefusedError("dead"),
        })
        assert checker.check_now() == {"a": True, "b": False, "c": False}

    def test_needs_urls_or_probe(self):
        with pytest.raises(ValueError, match="urls"):
            HealthChecker({})
