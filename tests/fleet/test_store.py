"""SnapshotStore: the durability and concurrency contracts, proven.

The store's whole job is "a reader can always warm-start from a complete,
verified snapshot".  Unit tests pin the protocol (blob-then-pointer,
digest-verified reads, monotonic fleet_latest, prune never orphans a
pointer); the Hypothesis property drives arbitrary publish sequences; the
concurrency test hammers put/read from threads and asserts a reader never
observes a torn blob or a stale pointer to a missing one.
"""

import json
import threading

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.fleet.store import SnapshotIntegrityError, SnapshotStore


@pytest.fixture()
def store(tmp_path):
    return SnapshotStore(tmp_path / "store")


def payload(tag: int, size: int = 64) -> bytes:
    return bytes((tag + i) % 256 for i in range(size))


class TestRoundTrip:
    def test_put_then_read_latest_returns_the_bytes(self, store):
        data = payload(1)
        ref = store.put("node0", data)
        assert store.read(ref) == data
        assert store.read_latest("node0") == data

    def test_latest_is_none_before_any_put(self, store):
        assert store.latest("node0") is None
        assert store.read_latest("node0") is None
        assert store.fleet_latest() is None

    def test_put_is_immutable_new_blob_each_time(self, store):
        first = store.put("node0", payload(1))
        second = store.put("node0", payload(2))
        assert first.path != second.path
        assert first.path.exists()  # old blob untouched
        assert store.read(first) == payload(1)
        assert store.read(second) == payload(2)

    def test_latest_pointer_tracks_the_newest_put(self, store):
        store.put("node0", payload(1))
        ref = store.put("node0", payload(2))
        assert store.latest("node0") == ref

    def test_invalid_node_names_rejected(self, store):
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError, match="invalid node name"):
                store.put(bad, b"x")


class TestFleetLatest:
    def test_highest_sequence_wins_across_nodes(self, store):
        store.put("node0", payload(1))
        store.put("node1", payload(2))
        newest = store.put("node0", payload(3))
        assert store.fleet_latest() == newest

    def test_sequences_are_store_global_and_monotonic(self, store):
        refs = [store.put(f"node{i % 2}", payload(i)) for i in range(5)]
        sequences = [ref.sequence for ref in refs]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_nodes_lists_every_publisher(self, store):
        store.put("node1", payload(1))
        store.put("node0", payload(2))
        assert store.nodes() == ["node0", "node1"]


class TestIntegrity:
    def test_corrupted_blob_is_refused(self, store):
        ref = store.put("node0", payload(1))
        blob = bytearray(ref.path.read_bytes())
        blob[10] ^= 0xFF
        ref.path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotIntegrityError, match="checksum"):
            store.read(ref)

    def test_missing_blob_is_refused(self, store):
        ref = store.put("node0", payload(1))
        ref.path.unlink()
        with pytest.raises(SnapshotIntegrityError, match="gone"):
            store.read(ref)

    def test_dangling_pointer_is_an_integrity_error(self, store):
        ref = store.put("node0", payload(1))
        ref.path.unlink()
        with pytest.raises(SnapshotIntegrityError, match="missing blob"):
            store.latest("node0")

    def test_pointer_is_json_naming_the_blob(self, store):
        ref = store.put("node0", payload(1))
        meta = json.loads((store.root / "node0.latest").read_text())
        assert meta["file"] == ref.path.name
        assert meta["sha256"] == ref.sha256


class TestPrune:
    def test_prune_keeps_the_pointer_target(self, store):
        for i in range(4):
            store.put("node0", payload(i))
        removed = store.prune(keep_per_node=1)
        assert len(removed) == 3
        assert store.read_latest("node0") == payload(3)

    def test_prune_keep_clamped_to_one(self, store):
        ref = store.put("node0", payload(1))
        store.prune(keep_per_node=0)
        assert store.read(ref) == payload(1)

    def test_prune_is_per_node(self, store):
        store.put("node0", payload(0))
        store.put("node0", payload(1))
        store.put("node1", payload(2))
        store.prune(keep_per_node=1)
        assert store.read_latest("node0") == payload(1)
        assert store.read_latest("node1") == payload(2)


@settings(max_examples=40, deadline=None)
@given(sequence=st.lists(
    st.tuples(st.integers(0, 3), st.binary(min_size=1, max_size=128)),
    min_size=1, max_size=20))
def test_property_fleet_latest_is_the_last_put(tmp_path_factory, sequence):
    """Over any publish sequence: every node's latest round-trips its last
    payload, and fleet_latest is exactly the final put anywhere."""
    store = SnapshotStore(tmp_path_factory.mktemp("store"))
    last_by_node = {}
    last_ref = None
    for node_index, data in sequence:
        node = f"node{node_index}"
        last_ref = store.put(node, data)
        last_by_node[node] = data
    for node, data in last_by_node.items():
        assert store.read_latest(node) == data
    assert store.fleet_latest() == last_ref


def test_concurrent_put_read_never_torn_or_stale(tmp_path):
    """Writers and readers race: a reader following a pointer always gets
    a complete, digest-verified payload some writer actually published."""
    store = SnapshotStore(tmp_path / "store")
    valid = {payload(i, size=2048) for i in range(64)}
    store.put("node0", payload(0, size=2048))
    errors = []
    stop = threading.Event()

    def writer(offset):
        for i in range(offset, 64, 4):
            try:
                store.put("node0", payload(i, size=2048))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

    def reader():
        while not stop.is_set():
            try:
                data = store.read_latest("node0")
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)
                return
            if data is not None and data not in valid:
                errors.append(AssertionError("torn snapshot observed"))
                return

    writers = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
    readers = [threading.Thread(target=reader) for _ in range(4)]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join(timeout=60)
    stop.set()
    for thread in readers:
        thread.join(timeout=60)
    assert not errors
    assert store.read_latest("node0") in valid
    assert len(store.refs()["node0"]) == 65  # every put landed, immutable


def test_refs_groups_blobs_oldest_first(tmp_path):
    store = SnapshotStore(tmp_path / "store")
    store.put("node0", payload(0))
    store.put("node1", payload(1))
    store.put("node0", payload(2))
    grouped = store.refs()
    assert sorted(grouped) == ["node0", "node1"]
    sequences = [ref.sequence for ref in grouped["node0"]]
    assert sequences == sorted(sequences)
