"""HashRing unit tests: determinism, membership, vectorized lookup."""

import numpy as np
import pytest

from repro.fleet.ring import HashRing, splitmix64

KEYS = np.arange(5000, dtype=np.uint64)


class TestSplitmix64:
    def test_scalar_matches_vector(self):
        values = np.array([0, 1, 7, 2 ** 32 - 1, 2 ** 63], dtype=np.uint64)
        vector = splitmix64(values)
        for key, hashed in zip(values, vector):
            assert splitmix64(int(key)) == int(hashed)

    def test_scalar_returns_python_int(self):
        assert isinstance(splitmix64(42), int)

    def test_spreads_adjacent_keys(self):
        hashed = splitmix64(KEYS)
        # Adjacent integers must land far apart — the whole point of the
        # finalizer.  Check the top byte is close to uniform.
        top = np.asarray(hashed >> np.uint64(56), dtype=np.int64)
        counts = np.bincount(top, minlength=256)
        assert counts.max() < 3 * len(KEYS) / 256

    def test_deterministic_across_calls(self):
        np.testing.assert_array_equal(splitmix64(KEYS), splitmix64(KEYS))


class TestMembership:
    def test_nodes_sorted_regardless_of_insertion_order(self):
        a = HashRing(["c", "a", "b"])
        b = HashRing(["b", "c", "a"])
        assert a.nodes == b.nodes == ["a", "b", "c"]

    def test_duplicate_add_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="already"):
            ring.add("a")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError, match="not on the ring"):
            HashRing(["a"]).remove("b")

    def test_len_and_contains(self):
        ring = HashRing(["a", "b"])
        assert len(ring) == 2 and "a" in ring and "z" not in ring

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)


class TestLookup:
    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(ValueError, match="no nodes"):
            ring.owner(1)
        with pytest.raises(ValueError, match="no nodes"):
            ring.owners_vec(KEYS)

    def test_scalar_owner_matches_vectorized(self):
        ring = HashRing(["a", "b", "c"])
        names = ring.owners_of(KEYS)
        for key, name in zip(KEYS[:500], names[:500]):
            assert ring.owner(int(key)) == name

    def test_assignment_is_deterministic_across_instances(self):
        first = HashRing(["a", "b", "c"]).owners_of(KEYS)
        second = HashRing(["a", "b", "c"]).owners_of(KEYS)
        assert first == second

    def test_different_seed_different_assignment(self):
        base = HashRing(["a", "b", "c"], seed=1).owners_of(KEYS)
        other = HashRing(["a", "b", "c"], seed=2).owners_of(KEYS)
        assert base != other

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"], replicas=1)
        assert set(ring.owners_of(KEYS)) == {"only"}

    def test_shares_cover_every_key(self):
        ring = HashRing(["a", "b", "c", "d"])
        shares = ring.shares(KEYS)
        assert sum(shares.values()) == len(KEYS)
        assert set(shares) == {"a", "b", "c", "d"}

    def test_balance_is_reasonable_at_default_replicas(self):
        ring = HashRing(["a", "b", "c", "d"])
        shares = ring.shares(KEYS)
        mean = len(KEYS) / 4
        assert max(shares.values()) < 2.0 * mean
        assert min(shares.values()) > mean / 3.0


class TestChurn:
    def test_removal_remaps_only_the_departed_share(self):
        ring = HashRing(["a", "b", "c"])
        before = np.array(ring.owners_of(KEYS))
        ring.remove("b")
        after = np.array(ring.owners_of(KEYS))
        moved = before != after
        assert np.array_equal(moved, before == "b")
        assert "b" not in set(after[moved])

    def test_addition_moves_keys_only_to_the_new_node(self):
        ring = HashRing(["a", "b"])
        before = np.array(ring.owners_of(KEYS))
        ring.add("c")
        after = np.array(ring.owners_of(KEYS))
        moved = before != after
        assert set(after[moved]) <= {"c"}
        assert moved.any()

    def test_leave_then_rejoin_restores_assignment(self):
        ring = HashRing(["a", "b", "c"])
        before = ring.owners_of(KEYS)
        ring.remove("b")
        ring.add("b")
        assert ring.owners_of(KEYS) == before
