"""FleetManager subprocess supervision and the snapshot warm handoff.

These spawn real ``repro serve`` subprocesses, so they carry the `slow`
marker.  The headline test is handoff equivalence: streaming through a
fleet whose node is warm-restarted mid-trace must produce verdicts
byte-identical to an uninterrupted offline replay — the snapshot carried
every marked bit across the restart.
"""

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, FilterConfig
from repro.fleet import (
    FleetManager,
    FleetRouter,
    RollingReconfigError,
)
from repro.serve.retry import RetryPolicy
from repro.sim.pipeline import run_filter_on_trace
from repro.traffic.trace import Trace

pytestmark = pytest.mark.slow

PROTECTED_ARG = ",".join(f"172.16.{i}.0/24" for i in range(6))


@pytest.fixture()
def manager(tmp_path):
    fleet = FleetManager(PROTECTED_ARG, size=2, workdir=str(tmp_path),
                        order=12, rotation_interval=2.5)
    yield fleet
    fleet.shutdown()


@pytest.fixture()
def trio(tmp_path):
    fleet = FleetManager(PROTECTED_ARG, size=3, workdir=str(tmp_path),
                         order=12, rotation_interval=2.5)
    yield fleet
    fleet.shutdown()


def frames_of(packets, step=500):
    return [packets[i:i + step] for i in range(0, len(packets), step)]


class TestLifecycle:
    def test_start_yields_connectable_specs(self, manager, tiny_trace):
        specs = manager.start()
        assert len(specs) == 2
        assert all(spec.http_url for spec in specs)
        with FleetRouter(specs, protected=tiny_trace.protected) as router:
            info = router.fleet_config()
            assert info["clock"] == "packet"

    def test_kill_then_restart_keeps_the_name(self, manager):
        manager.start()
        manager.kill("node0")
        assert not manager.node("node0").alive
        spec = manager.restart("node0")
        assert spec.name == "node0"
        assert manager.node("node0").alive

    def test_restart_requires_a_dead_process(self, manager):
        manager.start()
        with pytest.raises(RuntimeError, match="still running"):
            manager.restart("node0")

    def test_snapshot_endpoint_serves_bytes(self, manager):
        manager.start()
        blob = manager.fetch_snapshot("node0")
        assert len(blob) > 0


class TestWarmHandoff:
    def test_warm_restart_preserves_verdict_stream(self, manager, tiny_trace):
        """Fleet with a mid-trace warm restart == uninterrupted offline."""
        packets = tiny_trace.packets.sorted_by_time()[:8000]
        fcfg = FilterConfig(order=12, num_vectors=4, rotation_interval=2.5)
        offline = BitmapFilter(fcfg, tiny_trace.protected)
        expected = np.asarray(run_filter_on_trace(
            offline, Trace(packets, tiny_trace.protected),
            exact=True).verdicts, dtype=bool)

        specs = manager.start()
        frames = frames_of(packets)
        half = len(frames) // 2
        router = FleetRouter(
            specs, protected=tiny_trace.protected,
            retry=RetryPolicy(max_attempts=3, base_delay=0.05,
                              max_delay=0.5, deadline=10.0))
        with router:
            masks = router.filter_batches(frames[:half])
            new_spec = manager.warm_restart("node0")
            router.update_node(new_spec)
            masks += router.filter_batches(frames[half:])
        verdicts = np.concatenate(masks)
        np.testing.assert_array_equal(verdicts, expected)

    def test_warm_restart_publishes_to_the_shared_store(self, manager):
        manager.start()
        assert manager.store.fleet_latest() is None
        manager.warm_restart("node0")
        ref = manager.store.latest("node0")
        assert ref is not None
        assert manager.store.read(ref)  # digest-verified bytes
        health = manager.healthz("node0")
        assert health["restored"] is True


class TestRollingReconfig:
    def test_reconfig_confirms_every_node_at_one_boundary(self, manager):
        manager.start()
        new_cfg = FilterConfig(order=13, num_vectors=4,
                               rotation_interval=2.5)
        report = manager.rolling_reconfig(new_cfg)
        assert report.nodes == ["node0", "node1"]
        for name in report.nodes:
            health = manager.healthz(name)
            assert health["pending_geometry"]["order"] == 13
            assert health["pending_rebuild_at"] == report.rebuild_at
        assert manager.order == 13  # future spawns use the new geometry

    def test_dead_node_aborts_the_roll_cleanly(self, trio):
        """ISSUE 9 fault path: a dead node stops the roll before any
        signal goes out — survivors keep serving the old geometry, the
        manager's own geometry is untouched, and a repair + retry works."""
        trio.start()
        trio.kill("node1")
        new_cfg = FilterConfig(order=13, num_vectors=4,
                               rotation_interval=2.5)
        with pytest.raises(RollingReconfigError) as excinfo:
            trio.rolling_reconfig(new_cfg)
        assert excinfo.value.node == "node1"
        assert excinfo.value.completed == []
        for survivor in ("node0", "node2"):
            health = trio.healthz(survivor)
            assert health["pending_rebuild"] is False
            assert health["filter"]["order"] == 12
        assert trio.order == 12
        # Repair and retry: the roll completes.
        trio.restart("node1")
        report = trio.rolling_reconfig(new_cfg)
        assert report.nodes == ["node0", "node1", "node2"]
        assert trio.order == 13


class TestAddNode:
    def test_add_node_with_empty_store_warns_and_cold_starts(self, manager,
                                                             tiny_trace):
        manager.start()
        with FleetRouter(manager.specs(),
                         protected=tiny_trace.protected) as router:
            with pytest.warns(RuntimeWarning, match="empty"):
                report = manager.add_node(router, publish=False)
            assert report.warm is False
            assert report.restored_from is None
            assert report.spec.name == "node2"
            assert "node2" in router.ring
        health = manager.healthz("node2")
        assert health["restored"] is False
        assert health["restored_arrivals"] == 0

    def test_add_node_prewarms_from_the_fleets_freshest_state(
            self, manager, tiny_trace):
        """The acceptance check: a scale-out under load serves from warm
        SnapshotStore state — nonzero restored arrivals on /healthz."""
        packets = tiny_trace.packets.sorted_by_time()[:6000]
        manager.start()
        with FleetRouter(manager.specs(),
                         protected=tiny_trace.protected) as router:
            router.filter_batches(frames_of(packets))
            report = manager.add_node(router)
            assert report.warm is True
            assert sum(report.stolen.values()) > 0
            assert set(report.stolen) <= {"node0", "node1"}
        health = manager.healthz(report.spec.name)
        assert health["restored"] is True
        assert health["restored_arrivals"] > 0
