"""Fleet-suite fixtures: async tests and daemons-in-threads.

The same coroutine-test hook as ``tests/serve`` (no pytest-asyncio in
the pinned container), plus :func:`daemon_fleet` — N real
:class:`~repro.serve.daemon.FilterDaemon` instances each running on its
own event loop in a background thread, so the *synchronous*
:class:`~repro.fleet.router.FleetRouter` can drive them over real
sockets without subprocess cost.
"""

import asyncio
import inspect
import threading
from contextlib import contextmanager

import pytest

from repro.core.bitmap_filter import FilterConfig
from repro.fleet import NodeSpec
from repro.net.address import AddressSpace
from repro.serve import FilterDaemon, ServeConfig

PROTECTED = AddressSpace.class_c_block("172.16.0.0", 6)

FCFG = FilterConfig(order=12, num_vectors=4, rotation_interval=2.5)


def pytest_pyfunc_call(pyfuncitem):
    func = pyfuncitem.obj
    if inspect.iscoroutinefunction(func):
        kwargs = {name: pyfuncitem.funcargs[name]
                  for name in pyfuncitem._fixtureinfo.argnames}
        asyncio.run(func(**kwargs))
        return True
    return None


class ThreadedDaemon:
    """One FilterDaemon on a private event loop in a daemon thread."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.daemon = None
        self.loop = None
        self._ready = threading.Event()
        self._stopped = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.daemon = FilterDaemon(self.config)
        self.loop.run_until_complete(self.daemon.start())
        self._ready.set()
        self.loop.run_forever()
        self.loop.close()

    def start(self):
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("threaded daemon failed to start")
        return self.daemon.data_address

    def stop(self):
        if self._stopped or self.loop is None or not self.loop.is_running():
            return
        self._stopped = True

        async def _stop():
            self.daemon.request_shutdown()
            await self.daemon.drain()

        future = asyncio.run_coroutine_threadsafe(_stop(), self.loop)
        future.result(timeout=30.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=30.0)


def serve_config(**overrides) -> ServeConfig:
    fields = dict(filter=FCFG, protected=PROTECTED, http=False, port=0,
                  clock="packet")
    fields.update(overrides)
    return ServeConfig(**fields)


@contextmanager
def daemon_fleet(size: int, **overrides):
    """``size`` threaded daemons; yields their NodeSpecs, stops them after."""
    daemons = []
    specs = []
    try:
        for index in range(size):
            threaded = ThreadedDaemon(serve_config(**overrides))
            host, port = threaded.start()
            daemons.append(threaded)
            specs.append(NodeSpec(name=f"node{index}", host=host, port=port))
        yield specs, daemons
    finally:
        for threaded in daemons:
            try:
                threaded.stop()
            except Exception:
                pass


@pytest.fixture()
def protected() -> AddressSpace:
    return PROTECTED
