"""FleetRouter: routing, scatter, failover, recovery — mostly fake clients.

The unit tests inject a fake ``connect`` factory plus a fake clock and
sleep recorder, so every failover path (connect refused, mid-stream
death, fatal server error, breaker recovery) runs instantly and
deterministically — zero real sleeps, zero real sockets.  The
integration tests at the bottom drive real in-thread daemons.
"""

import numpy as np
import pytest

from repro.core.resilience import FailPolicy
from repro.fleet import BreakerState, FleetRouter, NodeSpec, policy_verdicts
from repro.net.packet import DIRECTION_INCOMING
from repro.serve.errors import ServeConnectionError, ServerError
from repro.serve.retry import RetryPolicy

from tests.fleet.conftest import FCFG, PROTECTED, daemon_fleet


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def verdict_fn(packets) -> np.ndarray:
    """A recognizable per-packet function: pass iff the sport is even."""
    return np.asarray(packets.sport % 2 == 0, dtype=bool)


class FakeClient:
    """Stands in for FilterClient: answers frames with ``verdict_fn``.

    ``fail_at`` raises a transient error after yielding that many masks
    on this connection; ``fatal_at`` raises ServerError at that frame.
    """

    def __init__(self, node, *, fail_at=None, fatal_at=None,
                 config=None, log=None):
        self.node = node
        self.fail_at = fail_at
        self.fatal_at = fatal_at
        self._config = config or {"filter": "f", "protected": "p",
                                  "clock": "packet", "exact": True}
        self.log = log if log is not None else []
        self.closed = False

    def filter_stream(self, batches, *, window=8):
        for index, batch in enumerate(batches):
            if self.fail_at is not None and index >= self.fail_at:
                raise ServeConnectionError("connection reset mid-stream",
                                           frames_in_flight=1)
            if self.fatal_at is not None and index >= self.fatal_at:
                raise ServerError("frame rejected")
            self.log.append((self.node, batch))
            yield verdict_fn(batch)

    def config(self):
        return dict(self._config)

    def goodbye(self, timeout=None):
        pass

    def close(self):
        self.closed = True


class Harness:
    """A 3-node router over fake clients with scriptable failures."""

    def __init__(self, *, fail_policy=FailPolicy.FAIL_CLOSED,
                 refuse=(), client_kwargs=None):
        self.clock = FakeClock()
        self.sleeps = []
        self.refuse = set(refuse)
        self.client_kwargs = dict(client_kwargs or {})
        self.connects = []
        self.frame_log = []
        specs = [NodeSpec(name=f"node{i}", host="fake", port=9000 + i)
                 for i in range(3)]
        self.router = FleetRouter(
            specs, protected=PROTECTED, fail_policy=fail_policy,
            retry=RetryPolicy(max_attempts=2, base_delay=0.05, jitter=0.0,
                              deadline=30.0),
            failure_threshold=3, reset_timeout=2.0,
            clock=self.clock, sleep=self._sleep, connect=self._connect)

    def _sleep(self, seconds):
        self.sleeps.append(seconds)
        self.clock.now += seconds

    def _connect(self, spec):
        self.connects.append(spec.name)
        if spec.name in self.refuse:
            raise ConnectionRefusedError(f"{spec.name} is dead")
        kwargs = dict(self.client_kwargs.pop(spec.name, {}))
        return FakeClient(spec.name, log=self.frame_log, **kwargs)


@pytest.fixture()
def packets(tiny_trace):
    return tiny_trace.packets[:4000]


def frames_of(packets, step=500):
    return [packets[i:i + step] for i in range(0, len(packets), step)]


class TestRouting:
    def test_verdicts_scatter_back_in_input_order(self, packets):
        harness = Harness()
        masks = harness.router.filter_batches(frames_of(packets))
        np.testing.assert_array_equal(
            np.concatenate(masks), verdict_fn(packets))

    def test_each_node_sees_only_its_owned_packets(self, packets):
        harness = Harness()
        harness.router.filter(packets)
        for node, batch in harness.frame_log:
            assert set(harness.router.owner_names(batch)) == {node}

    def test_every_node_participates(self, packets):
        harness = Harness()
        harness.router.filter(packets)
        assert set(name for name, _ in harness.frame_log) == \
            {"node0", "node1", "node2"}

    def test_empty_batch_is_fine(self, packets):
        harness = Harness()
        masks = harness.router.filter_batches([packets[:0], packets[:100]])
        assert len(masks[0]) == 0 and len(masks[1]) == 100

    def test_clients_are_reused_across_calls(self, packets):
        harness = Harness()
        harness.router.filter(packets)
        harness.router.filter(packets)
        assert len(harness.connects) == 3  # one connect per node, total

    def test_duplicate_node_names_rejected(self):
        spec = NodeSpec(name="a", host="h", port=1)
        with pytest.raises(ValueError, match="unique"):
            FleetRouter([spec, spec], protected=PROTECTED)

    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetRouter([], protected=PROTECTED)


class TestFailover:
    def test_dead_node_flows_get_policy_verdicts_fail_closed(self, packets):
        harness = Harness(refuse={"node1"})
        mask = harness.router.filter(packets)
        owners = np.array(harness.router.owner_names(packets))
        alive = owners != "node1"
        np.testing.assert_array_equal(mask[alive], verdict_fn(packets)[alive])
        expected = policy_verdicts(packets, PROTECTED, FailPolicy.FAIL_CLOSED)
        np.testing.assert_array_equal(mask[~alive], expected[~alive])
        incoming = packets.directions(PROTECTED) == DIRECTION_INCOMING
        assert not mask[~alive & incoming].any()
        assert mask[~alive & ~incoming].all()

    def test_dead_node_flows_admitted_fail_open(self, packets):
        harness = Harness(refuse={"node1"},
                          fail_policy=FailPolicy.FAIL_OPEN)
        mask = harness.router.filter(packets)
        owners = np.array(harness.router.owner_names(packets))
        assert mask[owners == "node1"].all()

    def test_dead_node_trips_its_breaker_only(self, packets):
        harness = Harness(refuse={"node2"})
        harness.router.filter(packets)
        states = harness.router.breaker_states()
        assert states["node2"] is BreakerState.OPEN
        assert states["node0"] is BreakerState.CLOSED
        assert states["node1"] is BreakerState.CLOSED

    def test_no_real_sleeps_only_fake(self, packets):
        harness = Harness(refuse={"node1"})
        harness.router.filter(packets)
        assert harness.sleeps  # backoff happened...
        assert harness.clock.now > 0  # ...on the fake clock

    def test_policy_fallback_is_counted(self, packets):
        harness = Harness(refuse={"node1"})
        harness.router.filter(packets)
        counted = harness.router.registry.counter(
            "repro_fleet_policy_packets_total", policy="fail_closed").value
        owners = np.array(harness.router.owner_names(packets))
        assert counted == int((owners == "node1").sum())
        failovers = harness.router.registry.counter(
            "repro_fleet_failovers_total", node="node1").value
        assert failovers >= 1

    def test_mid_stream_death_reconnects_and_resends(self, packets):
        # First connection dies after answering 2 frames; the reconnect
        # must resend the unacknowledged remainder — verdicts all real.
        harness = Harness(client_kwargs={"node0": {"fail_at": 2}})
        masks = harness.router.filter_batches(frames_of(packets))
        np.testing.assert_array_equal(
            np.concatenate(masks), verdict_fn(packets))
        assert harness.connects.count("node0") == 2

    def test_fatal_error_policy_fills_one_segment_only(self, packets):
        frames = frames_of(packets)
        harness = Harness(client_kwargs={"node0": {"fatal_at": 0}})
        masks = harness.router.filter_batches(frames)
        verdicts = np.concatenate(masks)
        owners = np.array(harness.router.owner_names(packets))
        # node0's first segment is policy-filled; later segments are
        # answered for real by the same (still healthy) connection.
        first = frames[0]
        first_owners = np.array(harness.router.owner_names(first))
        expected = verdict_fn(packets).copy()
        seg = np.zeros(len(packets), dtype=bool)
        seg[:len(first)] = first_owners == "node0"
        expected[seg] = policy_verdicts(
            packets, PROTECTED, FailPolicy.FAIL_CLOSED)[seg]
        np.testing.assert_array_equal(verdicts, expected)
        assert (owners == "node0").sum() > seg.sum()  # later segs were real

    def test_breaker_recovery_readmits_the_node(self, packets):
        harness = Harness(refuse={"node1"})
        harness.router.filter(packets)
        assert harness.router.breaker_states()["node1"] is BreakerState.OPEN
        # The node comes back; after the reset timeout the half-open
        # probe succeeds and its flows get real verdicts again.
        harness.refuse.clear()
        harness.clock.now += 2.5
        mask = harness.router.filter(packets)
        np.testing.assert_array_equal(mask, verdict_fn(packets))
        assert harness.router.breaker_states()["node1"] is BreakerState.CLOSED


class TestMembership:
    def test_update_node_keeps_the_ring_share(self, packets):
        harness = Harness()
        before = harness.router.owner_names(packets)
        harness.router.update_node(
            NodeSpec(name="node1", host="fake", port=19999))
        assert harness.router.owner_names(packets) == before

    def test_update_unknown_node_rejected(self):
        harness = Harness()
        with pytest.raises(ValueError, match="not in the fleet"):
            harness.router.update_node(NodeSpec(name="nope", host="h", port=1))

    def test_remove_node_remaps_only_its_share(self, packets):
        harness = Harness()
        before = np.array(harness.router.owner_names(packets))
        harness.router.remove_node("node1")
        after = np.array(harness.router.owner_names(packets))
        moved = before != after
        np.testing.assert_array_equal(moved, before == "node1")

    def test_add_node_gets_a_breaker_and_metrics(self, packets):
        harness = Harness()
        harness.router.add_node(NodeSpec(name="node3", host="fake", port=9993))
        assert "node3" in harness.router.breaker_states()
        assert "node3" in set(harness.router.owner_names(packets)) or True
        with pytest.raises(ValueError, match="already"):
            harness.router.add_node(
                NodeSpec(name="node3", host="fake", port=9993))

    def test_add_node_breaker_uses_the_router_thresholds(self):
        harness = Harness()  # failure_threshold=3, reset_timeout=2.0
        harness.router.add_node(NodeSpec(name="node3", host="fake", port=9993))
        breaker = harness.router.breaker("node3")
        assert breaker.failure_threshold == 3
        assert breaker.reset_timeout == 2.0

    def test_update_node_resets_an_open_breaker(self, packets):
        """A warm-swapped replacement must not be born OPEN: failures
        accumulated against the dead incarnation belonged to it, and the
        supervisor only calls update_node after verifying the new one."""
        harness = Harness(refuse={"node1"})
        harness.router.filter(packets)
        assert harness.router.breaker_states()["node1"] is BreakerState.OPEN
        harness.router.update_node(
            NodeSpec(name="node1", host="fake", port=19999))
        assert harness.router.breaker_states()["node1"] is BreakerState.CLOSED
        # And it answers for real immediately — no half-open probe wait.
        harness.refuse.discard("node1")
        mask = harness.router.filter(packets)
        np.testing.assert_array_equal(mask, verdict_fn(packets))


class TestFleetConfig:
    def test_agreeing_fleet_returns_the_common_config(self):
        harness = Harness()
        assert harness.router.fleet_config()["clock"] == "packet"

    def test_geometry_skew_raises(self):
        harness = Harness(client_kwargs={
            "node1": {"config": {"filter": "DIFFERENT", "protected": "p",
                                 "clock": "packet", "exact": True}}})
        with pytest.raises(ValueError, match="skew"):
            harness.router.fleet_config()


@pytest.mark.slow
class TestAgainstRealDaemons:
    def test_fleet_verdicts_match_offline_replay(self, tiny_trace):
        from repro.core.bitmap_filter import BitmapFilter
        from repro.sim.pipeline import run_filter_on_trace

        packets = tiny_trace.packets.sorted_by_time()
        filt = BitmapFilter(FCFG, PROTECTED)
        expected = np.asarray(
            run_filter_on_trace(filt, tiny_trace, exact=True).verdicts,
            dtype=bool)
        with daemon_fleet(3) as (specs, _):
            with FleetRouter(specs, protected=PROTECTED) as router:
                masks = router.filter_batches(frames_of(packets))
        np.testing.assert_array_equal(np.concatenate(masks), expected)

    def test_stopped_node_fails_over_policy_consistently(self, tiny_trace):
        packets = tiny_trace.packets.sorted_by_time()[:6000]
        frames = frames_of(packets)
        half = len(frames) // 2
        with daemon_fleet(3) as (specs, daemons):
            router = FleetRouter(
                specs, protected=PROTECTED,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01,
                                  max_delay=0.05, deadline=2.0),
                reset_timeout=60.0, connect_timeout=2.0, request_timeout=5.0)
            with router:
                masks = router.filter_batches(frames[:half])
                victim = router.ring.nodes[0]
                daemons[int(victim.replace("node", ""))].stop()
                masks += router.filter_batches(frames[half:])
            verdicts = np.concatenate(masks)
        owners = np.array(router.owner_names(packets))
        survivors = owners != victim
        # Survivors' verdicts are real daemon answers (all True or a mix,
        # but crucially: deterministic packet-clock replays agree with a
        # single offline filter on the surviving partition).
        assert len(verdicts) == len(packets)
        # Post-stop, the victim's inbound flows are dropped (fail_closed).
        tail = np.zeros(len(packets), dtype=bool)
        tail[sum(len(f) for f in frames[:half]):] = True
        incoming = packets.directions(PROTECTED) == DIRECTION_INCOMING
        dead_tail = tail & ~survivors & incoming
        assert not verdicts[dead_tail].any()
