"""Retry policy and deadline budget — all on fake clocks, zero real sleeps."""

import random

import pytest

from repro.serve.errors import (
    ServeConnectionError,
    ServeTimeoutError,
    ServerError,
    is_transient,
)
from repro.serve.retry import (
    Deadline,
    RetryPolicy,
    async_call_with_retry,
    call_with_retry,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class FakeSleep:
    """Records every requested delay and advances the fake clock."""

    def __init__(self, clock):
        self.clock = clock
        self.delays = []

    def __call__(self, seconds):
        self.delays.append(seconds)
        self.clock.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def sleeper(clock):
    return FakeSleep(clock)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=10.0,
                             jitter=0.0)
        assert [policy.backoff(i) for i in range(4)] == [0.1, 0.2, 0.4, 0.8]

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=3.0,
                             jitter=0.0)
        assert policy.backoff(5) == 3.0

    def test_jitter_shrinks_within_bounds(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        rng = random.Random(42)
        delays = [policy.backoff(0, rng) for _ in range(200)]
        assert all(0.5 <= delay <= 1.0 for delay in delays)
        assert len(set(delays)) > 100  # actually randomized

    def test_negative_retry_index_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)


class TestDeadline:
    def test_unbounded(self, clock):
        deadline = Deadline(None, clock=clock)
        assert deadline.remaining() is None
        assert not deadline.expired
        assert deadline.clamp(7.0) == 7.0
        assert deadline.clamp(None) is None

    def test_counts_down_and_expires(self, clock):
        deadline = Deadline(10.0, clock=clock)
        clock.now += 4.0
        assert deadline.remaining() == pytest.approx(6.0)
        assert deadline.clamp(30.0) == pytest.approx(6.0)
        assert deadline.clamp(2.0) == 2.0
        clock.now += 7.0
        assert deadline.expired
        assert deadline.clamp(30.0) == 0.0


def flaky(failures, exc=ConnectionResetError("boom")):
    """A callable that fails ``failures`` times, then returns 'ok'."""
    state = {"left": failures}

    def fn():
        if state["left"] > 0:
            state["left"] -= 1
            raise exc
        return "ok"

    return fn


class TestCallWithRetry:
    def test_retries_transient_then_succeeds(self, clock, sleeper):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
        result = call_with_retry(flaky(2), policy=policy, clock=clock,
                                 sleep=sleeper)
        assert result == "ok"
        assert sleeper.delays == [0.1, 0.2]

    def test_fatal_error_is_not_retried(self, clock, sleeper):
        policy = RetryPolicy(max_attempts=4)
        with pytest.raises(ServerError):
            call_with_retry(flaky(1, ServerError("bad frame")),
                            policy=policy, clock=clock, sleep=sleeper)
        assert sleeper.delays == []

    def test_attempts_exhausted_raises_last_error(self, clock, sleeper):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        with pytest.raises(ConnectionResetError):
            call_with_retry(flaky(99), policy=policy, clock=clock,
                            sleep=sleeper)
        assert len(sleeper.delays) == 2  # 3 attempts = 2 backoffs

    def test_deadline_stops_before_a_sleep_it_cannot_afford(
            self, clock, sleeper):
        # budget 0.5s, delays 0.4 then 0.8: the second backoff exceeds
        # what remains, so the original error surfaces (not a timeout).
        policy = RetryPolicy(max_attempts=10, base_delay=0.4, jitter=0.0,
                             deadline=0.5)
        with pytest.raises(ConnectionResetError):
            call_with_retry(flaky(99), policy=policy, clock=clock,
                            sleep=sleeper)
        assert sleeper.delays == [0.4]

    def test_expired_deadline_raises_timeout(self, clock):
        deadline = Deadline(1.0, clock=clock)
        clock.now += 2.0
        with pytest.raises(ServeTimeoutError, match="budget exhausted"):
            call_with_retry(lambda: "never", policy=RetryPolicy(),
                            deadline=deadline, clock=clock,
                            sleep=lambda s: None)

    def test_on_retry_hook_sees_each_failure(self, clock, sleeper):
        seen = []
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
        call_with_retry(flaky(2), policy=policy, clock=clock, sleep=sleeper,
                        on_retry=lambda i, exc: seen.append(i))
        assert seen == [0, 1]

    def test_single_attempt_policy_never_sleeps(self, clock, sleeper):
        with pytest.raises(ConnectionResetError):
            call_with_retry(flaky(1), policy=RetryPolicy(max_attempts=1),
                            clock=clock, sleep=sleeper)
        assert sleeper.delays == []


class TestAsyncCallWithRetry:
    async def test_retries_then_succeeds(self, clock):
        delays = []

        async def sleep(seconds):
            delays.append(seconds)
            clock.now += seconds

        state = {"left": 2}

        async def fn():
            if state["left"] > 0:
                state["left"] -= 1
                raise ServeConnectionError("reset")
            return "ok"

        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.0)
        result = await async_call_with_retry(
            fn, policy=policy, clock=clock, sleep=sleep)
        assert result == "ok"
        assert delays == [0.1, 0.2]

    async def test_fatal_error_propagates(self, clock):
        async def fn():
            raise ServerError("fatal")

        with pytest.raises(ServerError):
            await async_call_with_retry(fn, policy=RetryPolicy(),
                                        clock=clock,
                                        sleep=lambda s: None)


class TestTransience:
    def test_typed_errors_carry_transience(self):
        assert is_transient(ServeConnectionError("reset"))
        assert is_transient(ServeTimeoutError("slow"))
        assert not is_transient(ServerError("bad geometry"))

    def test_builtin_network_errors_are_transient(self):
        assert is_transient(ConnectionResetError("peer"))
        assert is_transient(TimeoutError("late"))
        assert is_transient(OSError("no route"))
        assert not is_transient(ValueError("logic bug"))
