"""Hypothesis properties for the consistent-hash ring.

Two contracts carry the fleet design (ISSUE 6): shares stay balanced
within a bound, and membership churn causes *exactly* the minimal
remap — a key changes owner on removal iff the departed node owned it,
and keys that move on addition move only to the arrival.  The key
population is drawn per-example so the properties hold over arbitrary
address sets, not one blessed sample.
"""

import numpy as np
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.fleet.ring import HashRing

from tests.strategies import PROTECTED


def node_names(min_size=2, max_size=8):
    return st.lists(
        st.text(alphabet="abcdefghij0123456789-", min_size=1, max_size=12),
        min_size=min_size, max_size=max_size, unique=True)


def key_arrays():
    """uint32 address populations: protected hosts and arbitrary ints."""
    inside = st.builds(
        lambda net, host: int(PROTECTED.networks[net].host(host)),
        st.integers(0, len(PROTECTED.networks) - 1), st.integers(1, 250))
    anywhere = st.integers(0, 2 ** 32 - 1)
    return st.lists(st.one_of(inside, anywhere),
                    min_size=1, max_size=300).map(
        lambda values: np.array(values, dtype=np.uint64))


@settings(max_examples=60, deadline=None)
@given(names=node_names(), seed=st.integers(0, 2 ** 32 - 1))
def test_share_balance_bound(names, seed):
    """No node's share exceeds a constant multiple of the fair share.

    With 128 virtual nodes the per-node share concentrates around 1/N;
    a 2.5x max/mean bound is loose enough to never flake and tight
    enough to catch a broken placement (a modulo ring or a collapsed
    hash fails it immediately).
    """
    ring = HashRing(names, seed=seed)
    keys = np.arange(20000, dtype=np.uint64)
    shares = ring.shares(keys)
    fair = len(keys) / len(names)
    assert max(shares.values()) <= 2.5 * fair
    assert sum(shares.values()) == len(keys)


@settings(max_examples=60, deadline=None)
@given(names=node_names(), keys=key_arrays(),
       seed=st.integers(0, 2 ** 32 - 1), drop_index=st.integers(0, 7))
def test_removal_is_exactly_minimal(names, keys, seed, drop_index):
    """A key changes owner on node removal iff the removed node owned it."""
    ring = HashRing(names, seed=seed)
    victim = sorted(names)[drop_index % len(names)]
    before = np.array(ring.owners_of(keys))
    ring.remove(victim)
    after = np.array(ring.owners_of(keys))
    moved = before != after
    np.testing.assert_array_equal(moved, before == victim)
    assert victim not in set(after)


@settings(max_examples=60, deadline=None)
@given(names=node_names(max_size=7), keys=key_arrays(),
       seed=st.integers(0, 2 ** 32 - 1))
def test_addition_moves_keys_only_to_the_arrival(names, keys, seed):
    """Join churn is one-directional: movers land on the new node only."""
    ring = HashRing(names, seed=seed)
    before = np.array(ring.owners_of(keys))
    ring.add("zz-new-node")
    after = np.array(ring.owners_of(keys))
    moved = before != after
    assert set(after[moved]) <= {"zz-new-node"}


@settings(max_examples=60, deadline=None)
@given(names=node_names(max_size=7), keys=key_arrays(),
       seed=st.integers(0, 2 ** 32 - 1))
def test_stolen_share_is_the_complete_remap(names, keys, seed):
    """``stolen_share`` predicts a join's remap exactly, donor by donor.

    The scale-out pre-warm (ISSUE 9) bets on this: the arrival's stolen
    share *is* the whole remap — every moved key came from a reported
    donor at the reported count, the ring itself is untouched by the
    dry-run, and performing the join afterwards matches the prediction.
    """
    ring = HashRing(names, seed=seed)
    before = np.array(ring.owners_of(keys))
    stolen = ring.stolen_share("zz-new-node", keys)
    assert ring.nodes == sorted(names)  # dry-run left the ring alone
    ring.add("zz-new-node")
    after = np.array(ring.owners_of(keys))
    moved = before != after
    assert sum(stolen.values()) == int(moved.sum())
    for donor, count in stolen.items():
        assert count == int((moved & (before == donor)).sum())
        assert count > 0
    assert set(stolen) == set(before[moved])


@settings(max_examples=30, deadline=None)
@given(names=node_names(), keys=key_arrays(),
       seed=st.integers(0, 2 ** 32 - 1))
def test_round_trip_churn_is_identity(names, keys, seed):
    """Leave + rejoin of the same name restores the exact assignment —
    the property that makes restart-by-name keep its ring share."""
    ring = HashRing(names, seed=seed)
    victim = sorted(names)[0]
    before = ring.owners_of(keys)
    ring.remove(victim)
    ring.add(victim)
    assert ring.owners_of(keys) == before
