"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_experiments_registered(self):
        parser = build_parser()
        for name in ("fig2a", "fig2b", "fig2c", "table1", "capacity", "fig4",
                     "fig5", "insider", "apd", "sweep", "worm", "aggregate", "timing",
                     "compat", "robustness", "throttle", "collusion", "all"):
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_scale_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig4", "--scale", "small"])
        assert args.scale == "small"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig4", "--scale", "huge"])

    def test_experiment_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_capacity_runs(self, capsys):
        assert main(["capacity"]) == 0
        out = capsys.readouterr().out
        assert "512 KB" in out
        assert "167K" in out

    def test_sweep_runs(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "Eq.(2)" in out

    def test_fig2_small_runs(self, capsys):
        assert main(["fig2c", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "delay frac < 2.8 s" in out


@pytest.mark.telemetry
class TestStatsCommand:
    def test_stats_inline_sections(self, capsys):
        assert main(["stats", "--experiment", "capacity"]) == 0
        out = capsys.readouterr().out
        assert "--- prometheus ---" in out
        assert "--- jsonl ---" in out

    def test_stats_fig5_exports_per_interval_series(self, capsys, tmp_path):
        import json

        prom_path = tmp_path / "metrics.prom"
        jsonl_path = tmp_path / "series.jsonl"
        assert main(["stats", "--experiment", "fig5", "--scale", "small",
                     "--every", "50", "--prom-out", str(prom_path),
                     "--jsonl-out", str(jsonl_path)]) == 0
        out = capsys.readouterr().out
        assert "penetration" in out.lower() or "utilization" in out.lower()

        prom = prom_path.read_text()
        assert "# TYPE repro_filter_admits_total counter" in prom
        assert "# TYPE repro_filter_rotations_total counter" in prom
        assert 'repro_filter_drops_total{path="exact_batch"}' in prom
        assert "repro_filter_rotation_seconds_bucket" in prom
        for line in prom.splitlines():
            if line and not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

        rows = [json.loads(line)
                for line in jsonl_path.read_text().splitlines()]
        assert len(rows) > 10  # one row per Δt rotation tick
        assert all({"ts", "counters", "deltas", "gauges"} <= set(row)
                   for row in rows)
        admit_key = 'repro_filter_admits_total{path="exact_batch"}'
        assert sum(row["deltas"].get(admit_key, 0) for row in rows) > 0

    def test_stats_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--experiment", "nope"])


class TestTraceTools:
    def test_trace_gen_and_info(self, capsys, tmp_path):
        out = tmp_path / "t.npz"
        assert main(["trace-gen", "--duration", "10", "--pps", "150",
                     "--seed", "3", "--out", str(out)]) == 0
        assert out.exists()
        assert main(["trace-info", str(out)]) == 0
        text = capsys.readouterr().out
        assert "packets" in text
        assert "172.16.0.0/24" in text

    def test_trace_gen_pcap_export(self, capsys, tmp_path):
        out = tmp_path / "t.npz"
        pcap = tmp_path / "t.pcap"
        assert main(["trace-gen", "--duration", "5", "--pps", "100",
                     "--out", str(out), "--pcap", str(pcap)]) == 0
        from repro.net.pcap import read_pcap, verify_checksums

        loaded = read_pcap(pcap)
        assert len(loaded) > 50
        assert verify_checksums(pcap) == len(loaded)


class TestExport:
    def test_export_writes_all_figures(self, capsys, tmp_path):
        out = tmp_path / "figs"
        assert main(["export", "--out", str(out), "--scale", "small"]) == 0
        expected = {
            "fig2a_lifetime_hist.csv", "fig2b_delay_hist.csv",
            "fig2c_delay_cdf.csv", "fig4_scatter.csv", "fig5a_series.csv",
            "fig5b_filter_rate.csv", "worm_curve.csv",
        }
        assert {p.name for p in out.iterdir()} == expected
        # CDF file is monotone and ends at 1.0.
        import csv

        with (out / "fig2c_delay_cdf.csv").open() as fh:
            rows = list(csv.reader(fh))[1:]
        ys = [float(r[1]) for r in rows]
        assert ys == sorted(ys)
        assert ys[-1] == 1.0


class TestFilterCommand:
    def test_filter_npz(self, capsys, tmp_path):
        trace_path = tmp_path / "t.npz"
        out_path = tmp_path / "filtered.npz"
        main(["trace-gen", "--duration", "10", "--pps", "200", "--seed", "2",
              "--out", str(trace_path)])
        capsys.readouterr()
        assert main(["filter", str(trace_path), "--order", "13",
                     "--out", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "incoming drop rate" in text
        from repro.traffic.trace import Trace

        filtered = Trace.load_npz(out_path)
        original = Trace.load_npz(trace_path)
        assert 0 < len(filtered) <= len(original)

    def test_filter_pcap_requires_protected(self, tmp_path):
        pcap = tmp_path / "t.pcap"
        pcap.write_bytes(b"")
        with pytest.raises(SystemExit):
            main(["filter", str(pcap)])

    def test_pcap_and_npz_paths_agree(self, capsys, tmp_path):
        """The same trace filtered from either format gives identical stats."""
        npz = tmp_path / "t.npz"
        pcap = tmp_path / "t.pcap"
        main(["trace-gen", "--duration", "10", "--pps", "200", "--seed", "2",
              "--out", str(npz), "--pcap", str(pcap)])
        capsys.readouterr()
        main(["filter", str(npz), "--order", "13"])
        npz_report = capsys.readouterr().out
        nets = ",".join(f"172.16.{i}.0/24" for i in range(6))
        main(["filter", str(pcap), "--protected", nets, "--order", "13"])
        pcap_report = capsys.readouterr().out
        pick = lambda text: [l for l in text.splitlines() if "drop rate" in l]
        assert pick(npz_report) == pick(pcap_report)


class TestStatsFromUrl:
    def test_fetches_and_summarizes_live_metrics(self, capsys):
        """`repro stats --from-url` pretty-prints a daemon's /metrics page."""
        import http.server
        import threading

        from repro.telemetry import to_prometheus
        from repro.telemetry.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("repro_serve_packets_total", "Packets").inc(1234)
        reg.gauge("repro_serve_queue_depth", "Depth").set(2)
        reg.counter("other_total", "Other").inc(9)
        payload = to_prometheus(reg).encode()

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):
                assert self.path == "/metrics"
                self.send_response(200)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args):
                pass

        server = http.server.HTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address
            # Bare host:port — the CLI adds the scheme and /metrics path.
            assert main(["stats", "--from-url", f"{host}:{port}",
                         "--prefix", "repro_serve_"]) == 0
        finally:
            server.shutdown()
            thread.join()
        out = capsys.readouterr().out
        assert "repro_serve_packets_total" in out and "1234" in out
        assert "other_total" not in out

    def test_requires_experiment_or_url(self):
        with pytest.raises(SystemExit, match="--experiment NAME or "
                                             "--from-url URL"):
            main(["stats"])


class TestAdvise:
    def test_prints_recommended_geometry(self, capsys):
        assert main(["advise", "-c", "15000"]) == 0
        out = capsys.readouterr().out
        assert "c=15000" in out
        assert "-bitmap" in out and "predicted" in out

    def test_honors_geometry_knobs(self, capsys):
        assert main(["advise", "-c", "500", "--te", "40", "--dt", "10"]) == 0
        out = capsys.readouterr().out
        assert "Te=40s" in out and "dt=10s" in out

    def test_connections_flag_required(self):
        with pytest.raises(SystemExit):
            main(["advise"])


class TestFleetStatsDown:
    @staticmethod
    def _metrics_server():
        import http.server
        import threading

        from repro.telemetry import to_prometheus
        from repro.telemetry.registry import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("repro_serve_packets_total", "Packets").inc(77)
        payload = to_prometheus(reg).encode()

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):
                self.send_response(200)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args):
                pass

        server = http.server.HTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, thread

    @staticmethod
    def _dead_port():
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def test_one_down_node_is_reported_and_rest_merged(self, capsys):
        server, thread = self._metrics_server()
        try:
            host, port = server.server_address
            dead = self._dead_port()
            assert main(["fleet-stats", "--nodes",
                         f"{host}:{port},{host}:{dead}",
                         "--timeout", "2"]) == 0
        finally:
            server.shutdown()
            thread.join()
        out = capsys.readouterr().out
        assert "1 nodes scraped, 1 DOWN" in out
        assert "DOWN node1" in out
        assert "repro_serve_packets_total" in out and "77" in out

    def test_every_node_down_aborts_with_detail(self):
        dead = self._dead_port()
        with pytest.raises(SystemExit,
                           match="every node unreachable") as excinfo:
            main(["fleet-stats", "--nodes", f"127.0.0.1:{dead}",
                  "--timeout", "2"])
        assert "node0" in str(excinfo.value)


class TestMultisiteCli:
    def test_runs_a_scenario_file_offline(self, capsys, tmp_path):
        scenario = tmp_path / "tiny.toml"
        scenario.write_text("""
name = "cli-tiny"
topology = "fat-tree"
sites = 2
duration = 6.0
seed = 3

[traffic]
mix = "campus"
pps = 40.0

[filter]
order = 12
rotation_interval = 2.0

[[waves]]
kind = "scan"
rate_multiplier = 4.0
site_stagger = 1.0
""")
        assert main(["multisite", "--scenario", str(scenario)]) == 0
        out = capsys.readouterr().out
        assert "scenario cli-tiny" in out
        assert "site0" in out and "site1" in out and "TOTAL" in out
        assert "p(pen)" in out and "advised" in out

    def test_unknown_preset_aborts(self):
        with pytest.raises(SystemExit, match="unknown preset"):
            main(["multisite", "--preset", "moebius/voip"])

    def test_verify_requires_online(self):
        with pytest.raises(SystemExit, match="--verify requires --online"):
            main(["multisite", "--verify"])
