"""Tests for repro.net.flow — tuple inversion and directional bitmap keys."""

from repro.net.flow import (
    AddressTuple,
    bitmap_key_incoming,
    bitmap_key_of_packet,
    bitmap_key_outgoing,
    flow_key_of_packet,
    flow_key_of_tuple,
)
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP
from tests.conftest import make_reply, make_request


class TestAddressTuple:
    def test_of_packet(self, client_addr, server_addr):
        pkt = make_request(0.0, client_addr, server_addr, sport=1111, dport=80)
        tup = AddressTuple.of_packet(pkt)
        assert tup == AddressTuple(IPPROTO_TCP, client_addr, 1111, server_addr, 80)

    def test_inverse_swaps_endpoints(self):
        tup = AddressTuple(IPPROTO_TCP, 1, 2, 3, 4)
        assert tup.inverse() == AddressTuple(IPPROTO_TCP, 3, 4, 1, 2)

    def test_inverse_is_involution(self):
        tup = AddressTuple(IPPROTO_UDP, 10, 20, 30, 40)
        assert tup.inverse().inverse() == tup

    def test_reply_tuple_inverse_equals_request_tuple(self, client_addr, server_addr):
        """The paper's τ_in⁻¹ == τ_out identity."""
        request = make_request(0.0, client_addr, server_addr)
        reply = make_reply(request, 0.1)
        assert AddressTuple.of_packet(reply).inverse() == AddressTuple.of_packet(request)

    def test_str_is_readable(self):
        text = str(AddressTuple(IPPROTO_TCP, 0x01020304, 80, 0x05060708, 443))
        assert "1.2.3.4:80" in text
        assert "5.6.7.8:443" in text

    def test_ordering_exists(self):
        a = AddressTuple(IPPROTO_TCP, 1, 2, 3, 4)
        b = AddressTuple(IPPROTO_TCP, 1, 2, 3, 5)
        assert a < b


class TestBitmapKeys:
    def test_outgoing_key_omits_remote_port(self, client_addr, server_addr):
        """Section 3.3: only {saddr, sport, daddr} is hashed."""
        a = make_request(0.0, client_addr, server_addr, sport=1111, dport=80)
        b = make_request(0.0, client_addr, server_addr, sport=1111, dport=8080)
        assert bitmap_key_of_packet(a, outgoing=True) == bitmap_key_of_packet(b, outgoing=True)

    def test_incoming_key_omits_remote_port(self, client_addr, server_addr):
        """An incoming packet's source port does not affect its key — the
        property hole punching (Section 5.1) relies on."""
        request = make_request(0.0, client_addr, server_addr, sport=1111, dport=80)
        reply_a = make_reply(request, 0.1)
        # Same server, different source port (e.g. active FTP data channel).
        from dataclasses import replace

        reply_b = replace(reply_a, sport=20)
        key_a = bitmap_key_of_packet(reply_a, outgoing=False)
        key_b = bitmap_key_of_packet(reply_b, outgoing=False)
        assert key_a == key_b

    def test_request_and_reply_share_the_key(self, client_addr, server_addr):
        """The mark/lookup agreement at the heart of Algorithm 2."""
        request = make_request(0.0, client_addr, server_addr)
        reply = make_reply(request, 0.1)
        out_key = bitmap_key_of_packet(request, outgoing=True)
        in_key = bitmap_key_of_packet(reply, outgoing=False)
        assert out_key == in_key

    def test_different_clients_different_keys(self, protected, server_addr):
        a = protected.networks[0].host(1)
        b = protected.networks[0].host(2)
        key_a = bitmap_key_outgoing(IPPROTO_TCP, a, 1000, server_addr)
        key_b = bitmap_key_outgoing(IPPROTO_TCP, b, 1000, server_addr)
        assert key_a != key_b

    def test_protocol_distinguishes_keys(self, client_addr, server_addr):
        tcp = bitmap_key_outgoing(IPPROTO_TCP, client_addr, 53, server_addr)
        udp = bitmap_key_outgoing(IPPROTO_UDP, client_addr, 53, server_addr)
        assert tcp != udp

    def test_incoming_key_fields(self):
        # incoming: {daddr (local), dport (local), saddr (remote)}
        assert bitmap_key_incoming(6, 100, 200, 300) == (6, 100, 200, 300)


class TestFlowKeys:
    def test_flow_key_is_local_first(self, client_addr, server_addr):
        request = make_request(0.0, client_addr, server_addr, sport=1111, dport=80)
        reply = make_reply(request, 0.1)
        out_key = flow_key_of_packet(request, outgoing=True)
        in_key = flow_key_of_packet(reply, outgoing=False)
        assert out_key == in_key
        assert out_key == (IPPROTO_TCP, client_addr, 1111, server_addr, 80)

    def test_flow_key_includes_remote_port(self, client_addr, server_addr):
        """Unlike bitmap keys, SPI flow keys are exact 5-tuples."""
        a = make_request(0.0, client_addr, server_addr, sport=1111, dport=80)
        b = make_request(0.0, client_addr, server_addr, sport=1111, dport=8080)
        assert flow_key_of_packet(a, True) != flow_key_of_packet(b, True)

    def test_flow_key_of_tuple_matches_packet(self, client_addr, server_addr):
        pkt = make_request(0.0, client_addr, server_addr)
        tup = AddressTuple.of_packet(pkt)
        assert flow_key_of_tuple(tup, True) == flow_key_of_packet(pkt, True)
        reply = make_reply(pkt, 1.0)
        rtup = AddressTuple.of_packet(reply)
        assert flow_key_of_tuple(rtup, False) == flow_key_of_packet(reply, False)
