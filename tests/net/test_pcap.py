"""Tests for repro.net.pcap — libpcap export/import."""

import struct

import numpy as np
import pytest

from repro.net.packet import PacketArray, PacketLabel, TcpFlags
from repro.net.pcap import (
    LINKTYPE_RAW,
    PCAP_MAGIC,
    PCAP_MAGIC_NS,
    PcapFormatError,
    checksum16,
    encode_packet,
    read_pcap,
    verify_checksums,
    write_pcap,
)
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP
from tests.conftest import make_reply, make_request


@pytest.fixture()
def sample(client_addr, server_addr):
    request = make_request(1.25, client_addr, server_addr, flags=TcpFlags.SYN)
    from dataclasses import replace

    packets = [
        request,
        make_reply(request, 1.5),
        replace(
            make_request(2.0, client_addr, server_addr, proto=IPPROTO_UDP,
                         flags=TcpFlags.NONE, dport=53),
            label=PacketLabel.ATTACK,
        ),
    ]
    return PacketArray.from_packets(packets)


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example: words 0x0001 0xf203 0xf4f5 0xf6f7 -> 0x220d.
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert checksum16(data) == 0x220D

    def test_odd_length_padded(self):
        assert checksum16(b"\x01") == checksum16(b"\x01\x00")

    def test_checksum_of_checksummed_block_is_zero(self):
        data = bytearray(bytes.fromhex("450000280001000040060000c0a80001c0a80002"))
        check = checksum16(bytes(data))
        data[10:12] = struct.pack("!H", check)
        assert checksum16(bytes(data)) == 0


class TestEncode:
    def test_tcp_packet_structure(self, sample):
        wire = encode_packet(sample.data[0])
        assert wire[0] == 0x45                  # IPv4, IHL 5
        assert wire[9] == IPPROTO_TCP
        total_length = struct.unpack_from("!H", wire, 2)[0]
        assert total_length == len(wire) == sample.data[0]["size"]

    def test_flags_on_the_wire(self, sample):
        wire = encode_packet(sample.data[0])
        assert wire[20 + 13] == int(TcpFlags.SYN)

    def test_label_in_tos(self, sample):
        wire = encode_packet(sample.data[2])
        assert wire[1] == int(PacketLabel.ATTACK)

    def test_tiny_size_clamped_to_headers(self, client_addr, server_addr):
        pkt = make_request(0.0, client_addr, server_addr)
        arr = PacketArray.from_packets([pkt])
        arr.data["size"][0] = 10  # smaller than the 40-byte header stack
        wire = encode_packet(arr.data[0])
        assert len(wire) == 40


class TestRoundTrip:
    def test_write_read_identity(self, sample, tmp_path):
        path = tmp_path / "trace.pcap"
        assert write_pcap(sample, path) == 3
        loaded = read_pcap(path)
        assert len(loaded) == 3
        for field in ("proto", "src", "sport", "dst", "dport", "flags", "label"):
            assert np.array_equal(loaded.data[field], sample.data[field]), field
        assert loaded.ts == pytest.approx(sample.ts, abs=1e-6)

    def test_sizes_preserved(self, sample, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(sample, path)
        loaded = read_pcap(path)
        assert np.array_equal(loaded.size, sample.size)

    def test_checksums_are_wire_valid(self, sample, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(sample, path)
        assert verify_checksums(path) == 3

    def test_global_header(self, sample, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(sample, path)
        raw = path.read_bytes()
        magic, vmaj, vmin, _z, _s, snaplen, linktype = struct.unpack_from(
            "<IHHiIII", raw, 0
        )
        assert magic == PCAP_MAGIC
        assert (vmaj, vmin) == (2, 4)
        assert linktype == LINKTYPE_RAW

    def test_generated_trace_round_trips(self, tiny_trace, tmp_path):
        subset = tiny_trace.packets[:500]
        path = tmp_path / "workload.pcap"
        write_pcap(subset, path)
        loaded = read_pcap(path)
        assert len(loaded) == 500
        assert np.array_equal(loaded.src, subset.src)
        assert verify_checksums(path) == 500


class TestErrors:
    def test_truncated_file(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x01\x02")
        with pytest.raises(PcapFormatError):
            read_pcap(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x0a\x0d\x0d\x0a" + bytes(40))  # pcapng magic
        with pytest.raises(PcapFormatError):
            read_pcap(path)

    def test_unsupported_linktype(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(struct.pack("<IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535, 105))
        with pytest.raises(PcapFormatError):
            read_pcap(path)

    def test_truncated_record(self, sample, tmp_path):
        path = tmp_path / "trunc.pcap"
        write_pcap(sample, path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(PcapFormatError):
            read_pcap(path)

    def test_big_endian_accepted(self, sample, tmp_path):
        """A byte-swapped capture (written on a BE machine) still reads."""
        path = tmp_path / "be.pcap"
        # Re-write the sample by hand with big-endian record framing.
        with path.open("wb") as fh:
            fh.write(struct.pack(">IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535,
                                 LINKTYPE_RAW))
            wire = encode_packet(sample.data[0])
            fh.write(struct.pack(">IIII", 1, 250000, len(wire), len(wire)))
            fh.write(wire)
        loaded = read_pcap(path)
        assert len(loaded) == 1
        assert loaded.data["src"][0] == sample.data["src"][0]


class TestReaderRobustness:
    """Fuzz: the reader never crashes with anything but PcapFormatError."""

    def test_random_bytes_rejected_cleanly(self, tmp_path):
        import random as _random

        rng = _random.Random(0)
        for trial in range(50):
            path = tmp_path / f"fuzz{trial}.bin"
            path.write_bytes(bytes(rng.getrandbits(8)
                                   for _ in range(rng.randint(0, 400))))
            try:
                read_pcap(path)
            except PcapFormatError:
                pass  # the only acceptable failure mode

    def test_bit_flipped_capture_rejected_or_parsed(self, sample, tmp_path):
        import random as _random

        path = tmp_path / "trace.pcap"
        write_pcap(sample, path)
        original = bytearray(path.read_bytes())
        rng = _random.Random(1)
        for trial in range(50):
            corrupted = bytearray(original)
            pos = rng.randrange(len(corrupted))
            corrupted[pos] ^= 1 << rng.randrange(8)
            path.write_bytes(bytes(corrupted))
            try:
                read_pcap(path)
            except PcapFormatError:
                pass


class TestNonTransportProtocols:
    def test_icmp_encoded_as_raw_payload(self, client_addr, server_addr):
        """Non-TCP/UDP packets encode (IP header + opaque payload)..."""
        from repro.net.protocols import IPPROTO_ICMP

        pkt = make_request(0.0, client_addr, server_addr, proto=IPPROTO_ICMP,
                           flags=TcpFlags.NONE)
        arr = PacketArray.from_packets([pkt])
        wire = encode_packet(arr.data[0])
        assert wire[9] == IPPROTO_ICMP
        assert len(wire) == pkt.size

    def test_icmp_rejected_on_read(self, client_addr, server_addr, tmp_path):
        """...but the reader only dissects TCP/UDP, by design."""
        from repro.net.protocols import IPPROTO_ICMP

        pkt = make_request(0.0, client_addr, server_addr, proto=IPPROTO_ICMP,
                           flags=TcpFlags.NONE)
        path = tmp_path / "icmp.pcap"
        write_pcap(PacketArray.from_packets([pkt]), path)
        with pytest.raises(PcapFormatError):
            read_pcap(path)


class TestMagicVariants:
    """All four classic global-header magics read back correctly.

    Captures come in little- and big-endian byte order (the magic is
    byte-swapped when written on the opposite-endian host) and in
    microsecond or nanosecond timestamp resolution; the reader must accept
    every combination and scale the sub-second field accordingly.
    """

    @staticmethod
    def _write_variant(path, packets, endian, ticks_per_second):
        """Synthesize a capture with the chosen endianness/resolution."""
        magic = PCAP_MAGIC if ticks_per_second == 1_000_000 else PCAP_MAGIC_NS
        with path.open("wb") as fh:
            fh.write(struct.pack(endian + "IHHiIII", magic, 2, 4, 0, 0,
                                 65535, LINKTYPE_RAW))
            for row in packets.data:
                wire = encode_packet(row)
                ts = float(row["ts"])
                sec = int(ts)
                frac = int(round((ts - sec) * ticks_per_second))
                if frac == ticks_per_second:
                    sec, frac = sec + 1, 0
                fh.write(struct.pack(endian + "IIII", sec, frac,
                                     len(wire), len(wire)))
                fh.write(wire)

    @pytest.mark.parametrize("endian", ["<", ">"], ids=["le", "be"])
    @pytest.mark.parametrize("ticks", [1_000_000, 1_000_000_000],
                             ids=["usec", "nsec"])
    def test_variant_round_trips(self, sample, tmp_path, endian, ticks):
        path = tmp_path / "variant.pcap"
        self._write_variant(path, sample, endian, ticks)
        loaded = read_pcap(path)
        assert len(loaded) == len(sample)
        for name in ("proto", "src", "sport", "dst", "dport", "flags",
                     "size", "label"):
            np.testing.assert_array_equal(loaded.data[name],
                                          sample.data[name], err_msg=name)
        np.testing.assert_allclose(loaded.data["ts"], sample.data["ts"],
                                   atol=1.5 / ticks)

    def test_nanosecond_resolution_is_not_truncated(self, sample, tmp_path):
        """A sub-microsecond timestamp survives only via the ns magic."""
        path = tmp_path / "ns.pcap"
        wire = encode_packet(sample.data[0])
        with path.open("wb") as fh:
            fh.write(struct.pack("<IHHiIII", PCAP_MAGIC_NS, 2, 4, 0, 0,
                                 65535, LINKTYPE_RAW))
            fh.write(struct.pack("<IIII", 7, 123_456_789,
                                 len(wire), len(wire)))
            fh.write(wire)
        loaded = read_pcap(path)
        assert loaded.data["ts"][0] == pytest.approx(7.123456789,
                                                     abs=1e-9)

    def test_byteswapped_ns_magic_accepted(self, sample, tmp_path):
        path = tmp_path / "be_ns.pcap"
        self._write_variant(path, sample, ">", 1_000_000_000)
        assert struct.unpack_from("<I", path.read_bytes(), 0)[0] not in (
            PCAP_MAGIC, PCAP_MAGIC_NS)  # genuinely byte-swapped on disk
        assert len(read_pcap(path)) == len(sample)

    def test_unknown_magic_still_rejected(self, tmp_path):
        path = tmp_path / "bogus.pcap"
        path.write_bytes(struct.pack("<IHHiIII", 0x0A0D0D0A, 2, 4, 0, 0,
                                     65535, LINKTYPE_RAW))
        with pytest.raises(PcapFormatError, match="bad magic"):
            read_pcap(path)
