"""Tests for repro.net.address."""

import random

import pytest

from repro.net.address import (
    AddressSpace,
    IPv4Address,
    IPv4Network,
    coerce_address,
    format_ipv4,
    parse_ipv4,
)


class TestParseFormat:
    def test_parse_dotted_quad(self):
        assert parse_ipv4("192.168.1.10") == 0xC0A8010A

    def test_parse_zero(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_parse_broadcast(self):
        assert parse_ipv4("255.255.255.255") == 0xFFFFFFFF

    def test_format_round_trip(self):
        for text in ("10.0.0.1", "172.16.254.3", "8.8.8.8", "223.255.255.254"):
            assert format_ipv4(parse_ipv4(text)) == text

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "", "1..2.3"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(1 << 32)
        with pytest.raises(ValueError):
            format_ipv4(-1)


class TestIPv4Address:
    def test_construction_and_str(self):
        addr = IPv4Address.parse("10.1.2.3")
        assert str(addr) == "10.1.2.3"
        assert int(addr) == 0x0A010203

    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")

    def test_addition(self):
        assert str(IPv4Address.parse("10.0.0.1") + 5) == "10.0.0.6"

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)

    def test_hashable(self):
        assert len({IPv4Address(1), IPv4Address(1), IPv4Address(2)}) == 2


class TestCoerce:
    def test_coerce_int(self):
        assert coerce_address(42) == 42

    def test_coerce_str(self):
        assert coerce_address("1.2.3.4") == 0x01020304

    def test_coerce_address(self):
        assert coerce_address(IPv4Address(7)) == 7

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError):
            coerce_address(3.14)


class TestIPv4Network:
    def test_parse_cidr(self):
        net = IPv4Network.parse("192.168.1.0/24")
        assert net.prefix == 0xC0A80100
        assert net.prefix_len == 24
        assert net.num_addresses == 256

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            IPv4Network(parse_ipv4("192.168.1.1"), 24)

    def test_containing_masks_host_bits(self):
        net = IPv4Network.containing("192.168.1.77", 24)
        assert str(net) == "192.168.1.0/24"

    def test_membership(self):
        net = IPv4Network.parse("10.0.0.0/8")
        assert "10.255.1.2" in net
        assert "11.0.0.1" not in net
        assert parse_ipv4("10.0.0.1") in net

    def test_membership_rejects_junk_objects(self):
        assert object() not in IPv4Network.parse("10.0.0.0/8")

    def test_first_last(self):
        net = IPv4Network.parse("192.168.1.0/24")
        assert format_ipv4(net.first) == "192.168.1.0"
        assert format_ipv4(net.last) == "192.168.1.255"

    def test_host_indexing(self):
        net = IPv4Network.parse("192.168.1.0/24")
        assert format_ipv4(net.host(5)) == "192.168.1.5"
        with pytest.raises(IndexError):
            net.host(256)

    def test_usable_hosts_skips_network_and_broadcast(self):
        net = IPv4Network.parse("192.168.1.0/29")
        hosts = list(net.usable_hosts())
        assert len(hosts) == 6
        assert net.first not in hosts
        assert net.last not in hosts

    def test_usable_hosts_slash31(self):
        net = IPv4Network.parse("192.168.1.0/31")
        assert len(list(net.usable_hosts())) == 2

    def test_random_host_in_range(self):
        net = IPv4Network.parse("10.0.0.0/24")
        rng = random.Random(7)
        for _ in range(100):
            host = net.random_host(rng)
            assert host in net
            assert host not in (net.first, net.last)

    def test_iteration(self):
        net = IPv4Network.parse("10.0.0.0/30")
        assert list(net) == [0x0A000000, 0x0A000001, 0x0A000002, 0x0A000003]

    def test_prefix_len_bounds(self):
        with pytest.raises(ValueError):
            IPv4Network(0, 33)

    def test_parse_requires_slash(self):
        with pytest.raises(ValueError):
            IPv4Network.parse("10.0.0.0")


class TestAddressSpace:
    def test_class_c_block(self):
        space = AddressSpace.class_c_block("172.16.0.0", 6)
        assert len(space.networks) == 6
        assert str(space.networks[0]) == "172.16.0.0/24"
        assert str(space.networks[5]) == "172.16.5.0/24"
        assert space.num_addresses == 6 * 256

    def test_block_aligns_base(self):
        space = AddressSpace.class_c_block("172.16.0.99", 2)
        assert str(space.networks[0]) == "172.16.0.0/24"

    def test_membership(self):
        space = AddressSpace.class_c_block("172.16.0.0", 6)
        assert space.contains("172.16.3.200")
        assert "172.16.5.1" in space
        assert not space.contains("172.16.6.1")
        assert not space.contains("8.8.8.8")

    def test_contains_int_matches_contains(self):
        space = AddressSpace.class_c_block("172.16.0.0", 3)
        rng = random.Random(3)
        for _ in range(200):
            addr = rng.getrandbits(32)
            assert space.contains_int(addr) == space.contains(addr)

    def test_random_host_inside(self):
        space = AddressSpace.class_c_block("172.16.0.0", 6)
        rng = random.Random(5)
        for _ in range(100):
            assert space.contains_int(space.random_host(rng))

    def test_hosts_enumeration_limited(self):
        space = AddressSpace.class_c_block("172.16.0.0", 2)
        hosts = space.hosts(per_network=10)
        assert len(hosts) == 20
        assert all(space.contains_int(h) for h in hosts)

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace([])

    def test_string_networks_accepted(self):
        space = AddressSpace(["10.0.0.0/8", "192.168.0.0/16"])
        assert space.contains("10.1.2.3")
        assert space.contains("192.168.100.1")
