"""Tests for repro.net.protocols."""

from repro.net.protocols import (
    EPHEMERAL_PORT_RANGE,
    IPPROTO_TCP,
    IPPROTO_UDP,
    WELL_KNOWN_SERVICES,
    is_valid_port,
    protocol_name,
)


def test_protocol_numbers():
    assert IPPROTO_TCP == 6
    assert IPPROTO_UDP == 17


def test_protocol_name_known():
    assert protocol_name(IPPROTO_TCP) == "tcp"
    assert protocol_name(IPPROTO_UDP) == "udp"


def test_protocol_name_unknown_falls_back():
    assert protocol_name(99) == "proto-99"


def test_well_known_services_consistent():
    for name, service in WELL_KNOWN_SERVICES.items():
        assert service.name == name
        assert is_valid_port(service.port)
        assert service.protocol in (IPPROTO_TCP, IPPROTO_UDP)


def test_http_is_port_80():
    assert WELL_KNOWN_SERVICES["http"].port == 80
    assert WELL_KNOWN_SERVICES["dns"].protocol == IPPROTO_UDP


def test_ephemeral_range_sane():
    lo, hi = EPHEMERAL_PORT_RANGE
    assert 1023 < lo < hi <= 65535


def test_is_valid_port_bounds():
    assert is_valid_port(0)
    assert is_valid_port(65535)
    assert not is_valid_port(-1)
    assert not is_valid_port(65536)
