"""Tests for repro.net.packet."""

import numpy as np
import pytest

from repro.net.address import AddressSpace
from repro.net.packet import (
    DIRECTION_INCOMING,
    DIRECTION_INTERNAL,
    DIRECTION_OUTGOING,
    DIRECTION_TRANSIT,
    Direction,
    Packet,
    PacketArray,
    PacketLabel,
    TcpFlags,
)
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP
from tests.conftest import make_reply, make_request


class TestTcpFlags:
    def test_pure_syn(self):
        assert TcpFlags.SYN.is_pure_syn
        assert not (TcpFlags.SYN | TcpFlags.ACK).is_pure_syn

    def test_pure_fin(self):
        assert TcpFlags.FIN.is_pure_fin
        assert not (TcpFlags.FIN | TcpFlags.ACK).is_pure_fin

    def test_closes_connection(self):
        assert TcpFlags.FIN.closes_connection
        assert TcpFlags.RST.closes_connection
        assert (TcpFlags.FIN | TcpFlags.ACK).closes_connection
        assert not TcpFlags.ACK.closes_connection
        assert not TcpFlags.SYN.closes_connection

    def test_flag_values_are_tcp_standard(self):
        assert int(TcpFlags.FIN) == 0x01
        assert int(TcpFlags.SYN) == 0x02
        assert int(TcpFlags.RST) == 0x04
        assert int(TcpFlags.ACK) == 0x10


class TestPacket:
    def test_direction_classification(self, protected, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        assert out.direction(protected) is Direction.OUTGOING
        incoming = make_reply(out, 1.1)
        assert incoming.direction(protected) is Direction.INCOMING

    def test_internal_and_transit(self, protected):
        inside_a = protected.networks[0].host(5)
        inside_b = protected.networks[1].host(5)
        internal = make_request(1.0, inside_a, inside_b)
        assert internal.direction(protected) is Direction.INTERNAL
        transit = make_request(1.0, 0x01010101, 0x02020202)
        assert transit.direction(protected) is Direction.TRANSIT

    def test_reply_swaps_endpoints(self, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr, sport=1234, dport=80)
        back = make_reply(out, 2.0)
        assert back.src == server_addr
        assert back.sport == 80
        assert back.dst == client_addr
        assert back.dport == 1234
        assert back.ts == 2.0

    def test_proto_helpers(self, client_addr, server_addr):
        tcp = make_request(0.0, client_addr, server_addr, proto=IPPROTO_TCP)
        udp = make_request(0.0, client_addr, server_addr, proto=IPPROTO_UDP)
        assert tcp.is_tcp and not tcp.is_udp
        assert udp.is_udp and not udp.is_tcp

    def test_str_contains_addresses_and_flags(self, client_addr, server_addr):
        pkt = make_request(1.5, client_addr, server_addr, flags=TcpFlags.SYN)
        text = str(pkt)
        assert "SYN" in text
        assert ":5555" in text

    def test_is_attack(self, client_addr, server_addr):
        pkt = make_request(0.0, client_addr, server_addr)
        assert not pkt.is_attack
        attack = Packet(0.0, IPPROTO_TCP, server_addr, 1, client_addr, 2,
                        label=PacketLabel.ATTACK)
        assert attack.is_attack

    def test_frozen(self, client_addr, server_addr):
        pkt = make_request(0.0, client_addr, server_addr)
        with pytest.raises(AttributeError):
            pkt.ts = 5.0  # type: ignore[misc]


class TestPacketArray:
    def _sample_packets(self, client, server):
        req = make_request(1.0, client, server)
        return [req, make_reply(req, 1.2), make_request(2.0, client, server, sport=6000)]

    def test_round_trip(self, client_addr, server_addr):
        packets = self._sample_packets(client_addr, server_addr)
        arr = PacketArray.from_packets(packets)
        assert arr.to_packets() == packets

    def test_len_and_iteration(self, client_addr, server_addr):
        arr = PacketArray.from_packets(self._sample_packets(client_addr, server_addr))
        assert len(arr) == 3
        assert [p.ts for p in arr] == [1.0, 1.2, 2.0]

    def test_empty(self):
        arr = PacketArray.empty()
        assert len(arr) == 0
        assert arr.to_packets() == []

    def test_integer_indexing_returns_packet(self, client_addr, server_addr):
        packets = self._sample_packets(client_addr, server_addr)
        arr = PacketArray.from_packets(packets)
        assert arr[1] == packets[1]

    def test_slice_indexing_returns_array(self, client_addr, server_addr):
        arr = PacketArray.from_packets(self._sample_packets(client_addr, server_addr))
        sliced = arr[1:]
        assert isinstance(sliced, PacketArray)
        assert len(sliced) == 2

    def test_boolean_mask_indexing(self, client_addr, server_addr):
        arr = PacketArray.from_packets(self._sample_packets(client_addr, server_addr))
        mask = arr.ts > 1.1
        assert len(arr[mask]) == 2

    def test_sorted_by_time(self, client_addr, server_addr):
        packets = self._sample_packets(client_addr, server_addr)[::-1]
        arr = PacketArray.from_packets(packets).sorted_by_time()
        assert list(arr.ts) == sorted(p.ts for p in packets)

    def test_sort_is_stable(self, client_addr, server_addr):
        a = make_request(1.0, client_addr, server_addr, sport=1)
        b = make_request(1.0, client_addr, server_addr, sport=2)
        arr = PacketArray.from_packets([a, b]).sorted_by_time()
        assert list(arr.sport) == [1, 2]

    def test_time_slice(self, client_addr, server_addr):
        arr = PacketArray.from_packets(self._sample_packets(client_addr, server_addr))
        window = arr.time_slice(1.0, 1.5)
        assert len(window) == 2
        assert all(1.0 <= t < 1.5 for t in window.ts)

    def test_concatenate(self, client_addr, server_addr):
        packets = self._sample_packets(client_addr, server_addr)
        a = PacketArray.from_packets(packets[:1])
        b = PacketArray.from_packets(packets[1:])
        merged = PacketArray.concatenate([a, b])
        assert merged.to_packets() == packets

    def test_concatenate_empty_list(self):
        assert len(PacketArray.concatenate([])) == 0

    def test_directions_vectorized_matches_scalar(self, protected, client_addr, server_addr):
        inside_b = protected.networks[0].host(9)
        packets = [
            make_request(0.0, client_addr, server_addr),        # outgoing
            make_request(0.0, server_addr, client_addr),        # incoming
            make_request(0.0, 0x01010101, 0x02020202),          # transit
            make_request(0.0, client_addr, inside_b),           # internal
        ]
        arr = PacketArray.from_packets(packets)
        codes = arr.directions(protected)
        assert list(codes) == [
            DIRECTION_OUTGOING, DIRECTION_INCOMING, DIRECTION_TRANSIT, DIRECTION_INTERNAL,
        ]
        for pkt, code in zip(packets, codes):
            scalar = pkt.direction(protected)
            assert {Direction.OUTGOING: DIRECTION_OUTGOING,
                    Direction.INCOMING: DIRECTION_INCOMING,
                    Direction.TRANSIT: DIRECTION_TRANSIT,
                    Direction.INTERNAL: DIRECTION_INTERNAL}[scalar] == code

    def test_from_fields_defaults(self):
        arr = PacketArray.from_fields(
            ts=np.array([1.0]),
            proto=np.array([6]),
            src=np.array([1], dtype=np.uint32),
            sport=np.array([2], dtype=np.uint16),
            dst=np.array([3], dtype=np.uint32),
            dport=np.array([4], dtype=np.uint16),
        )
        pkt = arr.packet(0)
        assert pkt.size == 720
        assert pkt.flags == TcpFlags.NONE
        assert pkt.label == PacketLabel.NORMAL

    def test_copy_is_independent(self, client_addr, server_addr):
        arr = PacketArray.from_packets(self._sample_packets(client_addr, server_addr))
        clone = arr.copy()
        clone.data["sport"][0] = 9999
        assert arr.sport[0] != 9999

    def test_dtype_rejected(self):
        with pytest.raises(TypeError):
            PacketArray(np.zeros(3, dtype=np.float64))

    def test_repr_mentions_count(self, client_addr, server_addr):
        arr = PacketArray.from_packets(self._sample_packets(client_addr, server_addr))
        assert "n=3" in repr(arr)
