"""Tests for repro.telemetry.profiling — timers and stage breakdowns."""

import pytest

pytestmark = pytest.mark.telemetry

from repro.telemetry.profiling import (
    StageTimings,
    Timer,
    current_profile,
    profile_run,
    profiled,
)


class TestStageTimings:
    def test_accumulates(self):
        t = StageTimings()
        t.add("a", 1.0)
        t.add("a", 0.5)
        t.add("b", 2.0)
        assert t.get("a") == 1.5
        assert t.calls("a") == 2
        assert t.total == 3.5
        assert "a" in t and "c" not in t
        assert t.as_dict() == {"a": 1.5, "b": 2.0}

    def test_report_renders(self):
        t = StageTimings()
        t.add("generate", 1.0)
        t.add("filter", 3.0)
        report = t.report()
        assert "generate" in report
        assert "filter" in report
        assert "75.0%" in report

    def test_empty_report(self):
        assert "no stages" in StageTimings().report()


class TestTimer:
    def test_standalone_elapsed(self):
        with Timer("x") as timer:
            pass
        assert timer.elapsed >= 0

    def test_records_into_explicit_timings(self):
        timings = StageTimings()
        with Timer("stage", timings):
            pass
        assert timings.calls("stage") == 1

    def test_no_active_profile_is_silent(self):
        assert current_profile() is None
        with Timer("orphan"):
            pass  # nothing to record into; must not raise


class TestProfileRun:
    def test_collects_nested_timers(self):
        with profile_run() as timings:
            with Timer("a"):
                pass
            with Timer("a"):
                pass
            with Timer("b"):
                pass
        assert timings.calls("a") == 2
        assert timings.calls("b") == 1

    def test_stack_restored(self):
        assert current_profile() is None
        with profile_run() as outer:
            assert current_profile() is outer
            with profile_run() as inner:
                assert current_profile() is inner
                with Timer("deep"):
                    pass
            assert current_profile() is outer
        assert current_profile() is None
        # Innermost profile got the timing, outer did not.
        assert "deep" in inner
        assert "deep" not in outer


class TestProfiled:
    def test_with_stage_name(self):
        @profiled("work")
        def f(x):
            return x + 1

        with profile_run() as timings:
            assert f(1) == 2
        assert timings.calls("work") == 1

    def test_bare_decorator_uses_qualname(self):
        @profiled
        def g():
            return "ok"

        with profile_run() as timings:
            assert g() == "ok"
        assert any("g" in stage for stage, _ in timings.items())

    def test_with_parens_no_arg(self):
        @profiled()
        def h():
            return 3

        with profile_run() as timings:
            assert h() == 3
        assert len(timings) == 1
