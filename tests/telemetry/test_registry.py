"""Tests for repro.telemetry.registry — instruments and the registry."""

import math
import threading

import pytest

pytestmark = pytest.mark.telemetry

from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    log_buckets,
    set_registry,
    use_registry,
)


class TestLogBuckets:
    def test_spans_range(self):
        bounds = log_buckets(1e-6, 1.0, per_decade=3)
        assert bounds[0] == 1e-6
        assert bounds[-1] >= 1.0
        assert bounds == sorted(bounds)

    def test_three_per_decade(self):
        bounds = log_buckets(1.0, 10.0, per_decade=3)
        # 1, 10^(1/3), 10^(2/3), 10
        assert len(bounds) == 4
        assert bounds[1] == pytest.approx(10 ** (1 / 3))

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            log_buckets(0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(2.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 10.0, per_decade=0)


class TestCounter:
    def test_monotonic(self):
        c = Counter("c")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5


class TestHistogram:
    def test_observe_buckets(self):
        h = Histogram("h", bounds=[1.0, 10.0, 100.0])
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        assert h.mean == pytest.approx(555.5 / 4)

    def test_quantile(self):
        h = Histogram("h", bounds=[1.0, 10.0, 100.0])
        for _ in range(99):
            h.observe(0.5)
        h.observe(50.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 100.0
        assert math.isnan(Histogram("e", bounds=[1.0]).quantile(0.5))

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=[10.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("h", bounds=[1.0, 1.0])


class TestRegistry:
    def test_get_or_create_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("x", "help")
        b = reg.counter("x")
        assert a is b

    def test_labels_distinguish(self):
        reg = MetricsRegistry()
        a = reg.counter("x", path="scalar")
        b = reg.counter("x", path="batch")
        assert a is not b
        assert reg.get("x", path="scalar") is a

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x", a="1", b="2")
        b = reg.counter("x", b="2", a="1")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_flat(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=[1.0]).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 1.5
        assert snap["h_count"] == 1
        assert snap["h_sum"] == 0.5

    def test_tick_fans_out(self):
        reg = MetricsRegistry()
        seen = []

        class Sampler:
            def on_tick(self, ts, registry):
                seen.append((ts, registry))

        sampler = Sampler()
        reg.add_sampler(sampler)
        reg.tick(5.0)
        reg.remove_sampler(sampler)
        reg.tick(10.0)
        assert seen == [(5.0, reg)]

    def test_thread_safe_get_or_create(self):
        reg = MetricsRegistry()
        results = []

        def create():
            results.append(reg.counter("shared"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is results[0] for c in results)


class TestNullRegistry:
    def test_disabled(self):
        assert NullRegistry().enabled is False
        assert MetricsRegistry().enabled is True

    def test_accessors_share_noop(self):
        reg = NullRegistry()
        c = reg.counter("x")
        g = reg.gauge("y")
        h = reg.histogram("z")
        assert c is g is h
        # All mutations absorb silently.
        c.inc()
        g.set(5)
        h.observe(1.0)
        assert c.value == 0

    def test_tick_noop(self):
        reg = NullRegistry()
        reg.add_sampler(object())  # never called, never stored
        reg.tick(1.0)


class TestDefaultRegistry:
    def test_default_is_null(self):
        assert get_registry() is NULL_REGISTRY

    def test_set_and_restore(self):
        live = MetricsRegistry()
        previous = set_registry(live)
        try:
            assert get_registry() is live
        finally:
            set_registry(previous)
        assert get_registry() is previous

    def test_use_registry_scopes(self):
        with use_registry() as reg:
            assert get_registry() is reg
            assert reg.enabled
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_accepts_explicit(self):
        mine = MetricsRegistry()
        with use_registry(mine) as reg:
            assert reg is mine
