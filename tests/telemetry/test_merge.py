"""Tests for repro.telemetry.merge — dump/apply and the fleet scrape path.

Two layers: the worker-dump machinery (``dump_metrics``/``apply_dump``)
that the sharded backend has leaned on since ISSUE 3, and the ISSUE 9
fleet path — ``rows_from_prometheus`` inverting ``to_prometheus`` so a
scraped ``/metrics`` page merges like a worker dump, and
``aggregate_fleet`` folding every node's page into one registry with a
per-node breakdown.
"""

import pytest

pytestmark = pytest.mark.telemetry

from repro.telemetry.exporters import to_prometheus
from repro.telemetry.merge import (
    aggregate_fleet,
    apply_dump,
    dump_metrics,
    rows_from_prometheus,
)
from repro.telemetry.registry import MetricsRegistry


def make_registry(jobs=3, errs=1, depth=7, latencies=(0.05, 0.5, 5.0)):
    reg = MetricsRegistry()
    reg.counter("jobs_total", "Jobs processed").inc(jobs)
    reg.counter("errs_total", "Errors", kind="io").inc(errs)
    reg.gauge("depth", "Queue depth").set(depth)
    h = reg.histogram("latency_seconds", "Latency", bounds=[0.1, 1.0])
    for value in latencies:
        h.observe(value)
    return reg


class TestDumpApply:
    def test_apply_reproduces_the_source_registry(self):
        source = make_registry()
        target = MetricsRegistry()
        apply_dump(target, dump_metrics(source))
        assert to_prometheus(target) == to_prometheus(source)

    def test_cumulative_dumps_merge_as_deltas(self):
        source = make_registry()
        first = dump_metrics(source)
        target = MetricsRegistry()
        apply_dump(target, first)
        source.counter("jobs_total", "Jobs processed").inc(4)
        apply_dump(target, dump_metrics(source), previous=first)
        assert target.counter("jobs_total").value == 7

    def test_extra_labels_split_series(self):
        target = MetricsRegistry()
        apply_dump(target, dump_metrics(make_registry(jobs=1)), shard="0")
        apply_dump(target, dump_metrics(make_registry(jobs=2)), shard="1")
        assert target.counter("jobs_total", shard="0").value == 1
        assert target.counter("jobs_total", shard="1").value == 2


class TestRowsFromPrometheus:
    def test_inverts_to_prometheus_textually(self):
        """Scrape -> rows -> registry -> render reproduces the page."""
        source = make_registry()
        page = to_prometheus(source)
        rebuilt = MetricsRegistry()
        apply_dump(rebuilt, rows_from_prometheus(page))
        assert to_prometheus(rebuilt) == page

    def test_matches_a_native_dump_semantically(self):
        """A page round-trip and a direct dump apply identically."""
        source = make_registry()
        from_dump, from_page = MetricsRegistry(), MetricsRegistry()
        apply_dump(from_dump, dump_metrics(source))
        apply_dump(from_page, rows_from_prometheus(to_prometheus(source)))
        assert to_prometheus(from_page) == to_prometheus(from_dump)

    def test_histogram_buckets_are_decumulated(self):
        rows = rows_from_prometheus(to_prometheus(make_registry()))
        hist = next(row for row in rows if row[0] == "histogram")
        kind, name, labels, help_text, bounds, counts, total, count = hist
        assert name == "latency_seconds"
        assert bounds == (0.1, 1.0)
        # One observation per bucket, incl. the +Inf overflow — per-bucket,
        # not cumulative.
        assert counts == (1, 1, 1)
        assert count == 3
        assert total == pytest.approx(5.55)

    def test_histogram_without_inf_series_uses_count(self):
        page = "\n".join((
            "# TYPE lat histogram",
            'lat_bucket{le="1"} 2',
            "lat_sum 1.5",
            "lat_count 5",
        ))
        rows = rows_from_prometheus(page)
        assert rows == [("histogram", "lat", (), "", (1.0,), (2, 3), 1.5, 5)]

    def test_counter_and_gauge_labels_survive(self):
        rows = rows_from_prometheus(to_prometheus(make_registry()))
        by_name = {(row[0], row[1]): row for row in rows}
        assert by_name[("counter", "errs_total")][2] == (("kind", "io"),)
        assert by_name[("gauge", "depth")][4] == 7


class TestAggregateFleet:
    def pages(self):
        return {
            "node0": to_prometheus(make_registry(jobs=3, depth=7)),
            "node1": to_prometheus(make_registry(jobs=5, depth=2)),
        }

    def test_counters_sum_fleet_wide_and_split_per_node(self):
        merged = aggregate_fleet(self.pages())
        assert merged.counter("jobs_total").value == 8
        assert merged.counter("jobs_total", node="node0").value == 3
        assert merged.counter("jobs_total", node="node1").value == 5

    def test_histograms_sum_per_bucket(self):
        merged = aggregate_fleet(self.pages())
        fleet = merged.histogram("latency_seconds", bounds=[0.1, 1.0])
        assert fleet.count == 6
        assert tuple(fleet.bucket_counts) == (2, 2, 2)
        per_node = merged.histogram("latency_seconds", bounds=[0.1, 1.0],
                                    node="node0")
        assert per_node.count == 3

    def test_gauges_stay_per_node_only(self):
        merged = aggregate_fleet(self.pages())
        assert merged.gauge("depth", node="node0").value == 7
        assert merged.gauge("depth", node="node1").value == 2
        # No unlabelled fleet-wide gauge series was created: summing
        # per-node gauges (queue depth, uptime) is not a fleet value.
        unlabelled = [m for m in merged.metrics()
                      if m.name == "depth" and not m.labels]
        assert unlabelled == []

    def test_merges_into_a_caller_registry(self):
        mine = MetricsRegistry()
        mine.counter("jobs_total", "Jobs processed").inc(100)
        out = aggregate_fleet(self.pages(), registry=mine)
        assert out is mine
        assert mine.counter("jobs_total").value == 108
