"""Tests for repro.telemetry.exporters — Prometheus text and JSON lines.

The snapshot tests at the bottom run a real filter over a real attack trace
under a live registry and pin down the export formats: every Δt tick yields
one JSON-lines row whose counter deltas cover admits/drops/rotations for
that interval, and the Prometheus rendering parses cleanly.
"""

import io
import json
import math

import pytest

pytestmark = pytest.mark.telemetry

from repro.core.bitmap_filter import BitmapFilter
from repro.sim.pipeline import run_filter_on_trace
from repro.telemetry.exporters import (
    JsonLinesSampler,
    LiveSummarySampler,
    to_prometheus,
)
from repro.telemetry.registry import MetricsRegistry, use_registry


def make_registry():
    reg = MetricsRegistry()
    reg.counter("jobs_total", "Jobs processed").inc(3)
    reg.counter("errs_total", "Errors", kind="io").inc(1)
    reg.gauge("depth", "Queue depth").set(7)
    h = reg.histogram("latency_seconds", "Latency", bounds=[0.1, 1.0])
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestPrometheusFormat:
    def test_headers_and_samples(self):
        text = to_prometheus(make_registry())
        assert "# HELP jobs_total Jobs processed" in text
        assert "# TYPE jobs_total counter" in text
        assert "jobs_total 3" in text
        assert 'errs_total{kind="io"} 1' in text
        assert "# TYPE depth gauge" in text
        assert "depth 7" in text

    def test_histogram_cumulative_buckets(self):
        text = to_prometheus(make_registry())
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum 5.55" in text
        assert "latency_seconds_count 3" in text

    def test_every_sample_line_well_formed(self):
        for line in to_prometheus(make_registry()).splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            float(value)  # parses as a number

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestJsonLinesSampler:
    def test_rows_carry_cumulative_and_deltas(self):
        reg = MetricsRegistry()
        sampler = JsonLinesSampler()
        reg.add_sampler(sampler)
        c = reg.counter("c")
        c.inc(5)
        reg.tick(1.0)
        c.inc(2)
        reg.tick(2.0)
        assert [row["ts"] for row in sampler.rows] == [1.0, 2.0]
        assert sampler.rows[0]["counters"]["c"] == 5
        assert sampler.rows[1]["counters"]["c"] == 7
        assert sampler.rows[1]["deltas"]["c"] == 2

    def test_gauges_snapshot(self):
        reg = MetricsRegistry()
        sampler = JsonLinesSampler()
        reg.add_sampler(sampler)
        reg.gauge("g").set(4.5)
        reg.tick(0.0)
        assert sampler.rows[0]["gauges"]["g"] == 4.5

    def test_streams_valid_jsonl(self):
        stream = io.StringIO()
        reg = MetricsRegistry()
        reg.add_sampler(JsonLinesSampler(stream=stream))
        reg.counter("c").inc()
        reg.tick(1.0)
        reg.tick(2.0)
        lines = stream.getvalue().strip().split("\n")
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_to_jsonl_roundtrip(self):
        reg = MetricsRegistry()
        sampler = JsonLinesSampler()
        reg.add_sampler(sampler)
        reg.tick(1.0)
        for line in sampler.to_jsonl().strip().split("\n"):
            assert json.loads(line)["ts"] == 1.0


class TestLiveSummarySampler:
    def test_emits_every_n_ticks(self):
        lines = []
        reg = MetricsRegistry()
        reg.add_sampler(LiveSummarySampler(every=2, emit=lines.append))
        for ts in range(1, 6):
            reg.tick(float(ts))
        assert len(lines) == 2  # ticks 2 and 4

    def test_prefix_sums_across_labels(self):
        lines = []
        reg = MetricsRegistry()
        reg.add_sampler(LiveSummarySampler(
            every=1, watch={"hits": "hits_total"}, emit=lines.append))
        reg.counter("hits_total", path="a").inc(2)
        reg.counter("hits_total", path="b").inc(3)
        reg.tick(1.0)
        assert "hits=       5" in lines[0]

    def test_rejects_zero_interval(self):
        with pytest.raises(ValueError):
            LiveSummarySampler(every=0)


class TestFilterRunSnapshot:
    """End-to-end: a live-registry filter run exports per-Δt admissions."""

    @pytest.fixture(scope="class")
    def attacked(self, tiny_trace):
        from dataclasses import replace

        from repro.experiments.config import SMALL
        from repro.experiments.fig5 import build_attack_trace

        scale = replace(SMALL, duration=tiny_trace.duration,
                        normal_pps=300.0)
        return build_attack_trace(scale, tiny_trace)

    @pytest.fixture()
    def run(self, attacked, small_config):
        with use_registry() as registry:
            sampler = JsonLinesSampler()
            registry.add_sampler(sampler)
            filt = BitmapFilter(small_config, attacked.protected)
            run_filter_on_trace(filt, attacked, exact=True)
            prom = to_prometheus(registry)
        return sampler, prom, filt

    def test_one_row_per_rotation(self, run):
        sampler, _, filt = run
        assert len(sampler.rows) == filt.stats.rotations
        # Rows are Δt apart in simulated time.
        ts = [row["ts"] for row in sampler.rows]
        dt = filt.config.rotation_interval
        assert all(b - a == pytest.approx(dt) for a, b in zip(ts, ts[1:]))

    def test_deltas_cover_admissions_per_interval(self, run):
        sampler, _, filt = run
        admit_key = 'repro_filter_admits_total{path="exact_batch"}'
        drop_key = 'repro_filter_drops_total{path="exact_batch"}'
        rot_key = "repro_filter_rotations_total"
        admits = sum(row["deltas"][admit_key] for row in sampler.rows)
        drops = sum(row["deltas"][drop_key] for row in sampler.rows)
        assert sampler.rows[-1]["counters"][rot_key] == filt.stats.rotations
        # Sampled sums can trail the final stats only by the tail interval
        # (packets after the last rotation are never sampled).
        assert 0 < admits <= filt.stats.incoming_passed
        assert 0 < drops <= filt.stats.incoming_dropped
        # At least one attack-interval row shows heavy dropping.
        assert max(row["deltas"][drop_key] for row in sampler.rows) > 100

    def test_prometheus_covers_filter_metrics(self, run):
        _, prom, filt = run
        assert f"repro_filter_rotations_total {filt.stats.rotations}" in prom
        assert ('repro_filter_admits_total{path="exact_batch"} '
                f"{filt.stats.incoming_passed}") in prom
        assert ('repro_filter_drops_total{path="exact_batch"} '
                f"{filt.stats.incoming_dropped}") in prom
        assert "repro_filter_rotation_seconds_bucket" in prom
        assert 'le="+Inf"' in prom


class TestParsePrometheus:
    """parse/summarize round-trip the exporter's own output."""

    def test_roundtrip_every_sample(self):
        from repro.telemetry.exporters import parse_prometheus

        reg = make_registry()
        samples = parse_prometheus(to_prometheus(reg))
        by_key = {(s.name, tuple(sorted(s.labels.items()))): s.value
                  for s in samples}
        assert by_key[("jobs_total", ())] == 3
        assert by_key[("errs_total", (("kind", "io"),))] == 1
        assert by_key[("depth", ())] == 7
        assert by_key[("latency_seconds_count", ())] == 3
        assert by_key[("latency_seconds_bucket", (("le", "+Inf"),))] == 3

    def test_histogram_kind_attached(self):
        from repro.telemetry.exporters import parse_prometheus

        samples = parse_prometheus(to_prometheus(make_registry()))
        kinds = {s.name: s.kind for s in samples}
        assert kinds["latency_seconds_bucket"] == "histogram"
        assert kinds["latency_seconds_sum"] == "histogram"
        assert kinds["jobs_total"] == "counter"
        assert kinds["depth"] == "gauge"

    def test_malformed_line_reports_line_number(self):
        from repro.telemetry.exporters import parse_prometheus

        with pytest.raises(ValueError, match="line 2"):
            parse_prometheus("ok_total 1\nthis is not a sample line at all\n")

    def test_summary_folds_histograms(self):
        from repro.telemetry.exporters import summarize_prometheus

        text = to_prometheus(make_registry())
        summary = summarize_prometheus(text)
        assert "jobs_total" in summary
        # Histogram series collapse to a single count/sum/mean line.
        assert summary.count("latency_seconds") == 1
        assert "count=3" in summary

    def test_summary_prefix_filter(self):
        from repro.telemetry.exporters import summarize_prometheus

        summary = summarize_prometheus(to_prometheus(make_registry()),
                                       prefix="jobs_")
        assert "jobs_total" in summary
        assert "depth" not in summary
