"""Differential proof, part 4: shard-aware adaptive packet dropping.

APD drop decisions depend on *global arrival order* — the indicator state
and the drop-RNG draw sequence are both functions of every packet the
filter has seen, in order.  The sharded backend's replicas never observe
that order, so it historically fell back to a serial filter (silently;
now with a :class:`DeprecationWarning`).  The shared backend's single
writer *does* see every arrival in order and publishes the arrival
counters into the shared header, so APD runs natively in parallel.

This file is the proof: a shared filter with APD is verdict-for-verdict,
counter-for-counter, and RNG-draw-for-RNG-draw identical to the serial
filter — plus the regression tests pinning the sharded fallback's
deprecation path.
"""

import warnings

import numpy as np
import pytest

from repro.core.apd import (
    AdaptiveDroppingPolicy,
    BandwidthIndicator,
    PacketRatioIndicator,
)
from repro.core import filter_api
from repro.core.filter_api import build_filter
from repro.parallel import (
    SharedBitmapFilter,
    ShardedBitmapFilter,
    create_filter,
    shard_filter,
    share_filter,
    use_backend,
)
from repro.parallel.shm import ARRIVALS_IN, ARRIVALS_OUT, ARRIVALS_TOTAL
from tests.differential.conftest import CONFIG, make_serial

pytestmark = pytest.mark.differential

#: Aggressive thresholds so the flood window actually modulates the drop
#: probability into (0, 1) — otherwise the RNG is never consulted and the
#: agreement test would be vacuous.
def _ratio_policy(seed=0xD09):
    return AdaptiveDroppingPolicy(PacketRatioIndicator(low=0.5, high=2.0),
                                  seed=seed)


def _bandwidth_policy(seed=0xD09):
    return AdaptiveDroppingPolicy(BandwidthIndicator(link_capacity_bps=2e5),
                                  seed=seed)


def _make_shared(protected, num_workers, apd):
    return SharedBitmapFilter(CONFIG, protected, num_workers=num_workers,
                              apd=apd)


@pytest.mark.parametrize("num_workers", (1, 2, 4))
@pytest.mark.parametrize("policy_factory", [_ratio_policy, _bandwidth_policy],
                         ids=["packet-ratio", "bandwidth"])
def test_scalar_apd_verdicts_identical(trace, num_workers, policy_factory):
    """Same trace, same APD seed: the shared filter must consult the
    indicator and burn RNG draws in exactly the serial order, so every
    randomized admit/drop lands identically."""
    serial = make_serial(trace.protected, apd=policy_factory())
    with _make_shared(trace.protected, num_workers,
                      policy_factory()) as shared:
        for pkt in trace.packets:
            assert shared.process(pkt) is serial.process(pkt), pkt
        assert shared.stats.as_dict() == serial.stats.as_dict()
        assert (shared.apd.stats.admitted, shared.apd.stats.dropped) \
            == (serial.apd.stats.admitted, serial.apd.stats.dropped)
        # Identical draw sequences leave identical RNG states — the
        # strongest statement that no draw was skipped or reordered.
        assert shared.apd._rng.getstate() == serial.apd._rng.getstate()
    # The policy actually randomized (drop probability strictly inside
    # (0,1) at least once); otherwise this test proves nothing.
    assert serial.apd.stats.admitted > 0
    assert serial.stats.apd_admitted == serial.apd.stats.admitted


def test_apd_indicator_state_tracks_serial(trace):
    """The indicator's sliding windows advance identically: after replay
    the drop probability itself (not just past verdicts) agrees, so the
    *next* decision would agree too."""
    serial = make_serial(trace.protected, apd=_ratio_policy())
    with _make_shared(trace.protected, 2, _ratio_policy()) as shared:
        for pkt in trace.packets:
            serial.process(pkt)
            shared.process(pkt)
        assert (shared.apd.indicator.drop_probability()
                == serial.apd.indicator.drop_probability())


def test_shared_arrival_counters_visible_to_workers(trace):
    """The header words that make APD shard-aware: the writer publishes
    global arrival counts, and every reader process observes them."""
    with _make_shared(trace.protected, 2, _ratio_policy()) as shared:
        for pkt in trace.packets[:600]:
            shared.process(pkt)
        stats = shared.stats
        assert shared.bitmap.arrivals == (stats.total, stats.outgoing,
                                          stats.incoming)
        for w in range(shared.num_workers):
            header = shared.worker_header(w)
            assert header[ARRIVALS_TOTAL] == stats.total
            assert header[ARRIVALS_OUT] == stats.outgoing
            assert header[ARRIVALS_IN] == stats.incoming


def test_apd_batch_unsupported_on_both(trace):
    """Batch + APD is NotImplemented on the serial path; the shared filter
    must refuse identically rather than silently diverge."""
    serial = make_serial(trace.protected, apd=_ratio_policy())
    with pytest.raises(NotImplementedError):
        serial.process_batch(trace.packets[:10])
    with _make_shared(trace.protected, 2, _ratio_policy()) as shared:
        with pytest.raises(NotImplementedError):
            shared.process_batch(trace.packets[:10])


def test_share_filter_transfers_apd(trace):
    """share_filter() carries the donor's APD policy object across, so
    the wrapped filter keeps the donor's RNG position and indicator."""
    policy = _ratio_policy()
    donor = make_serial(trace.protected, apd=policy)
    shared = share_filter(donor, 2)
    try:
        assert shared.apd is policy
    finally:
        shared.close()


# -- regression: the sharded backend's serial fallback is now loud -----------


def test_create_filter_sharded_apd_deprecation(trace):
    """The silent serial fallback is gone: requesting APD on the sharded
    backend warns (DeprecationWarning naming the shared backend) while
    still returning the equivalent serial filter."""
    with use_backend(name="sharded", workers=2):
        with pytest.warns(DeprecationWarning, match='backend="shared"'):
            filt = create_filter(CONFIG, trace.protected, apd=_ratio_policy())
    assert not isinstance(filt, (ShardedBitmapFilter, SharedBitmapFilter))
    assert filt.apd is not None


def test_build_filter_shared_apd_is_silent_and_parallel(trace):
    """Opting into the shared backend makes the same request clean: a
    parallel filter, no warning — through the unified factory, which is
    the non-deprecated spelling."""
    with filter_api.use_backend(name="shared", workers=2):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            filt = build_filter(CONFIG, trace.protected, apd=_ratio_policy())
    try:
        assert isinstance(filt, SharedBitmapFilter)
        assert filt.apd is not None
    finally:
        filt.close()


def test_create_filter_alias_warns_with_pointer(trace):
    """The legacy factory still works but names its replacement."""
    with pytest.warns(DeprecationWarning, match="build_filter"):
        filt = create_filter(CONFIG, trace.protected)
    assert filt.apd is None


def test_shard_filter_still_refuses_apd_donor(trace):
    """shard_filter() cannot support APD at all — its error now routes
    users to the shared backend instead of the removed silent fallback."""
    donor = make_serial(trace.protected, apd=_ratio_policy())
    with pytest.raises(ValueError, match="shared"):
        shard_filter(donor, 2)


def test_apd_verdicts_differ_from_plain_filter(trace):
    """Sanity for the whole file: APD actually changed some verdicts on
    this trace (otherwise agreement above is trivially meaningless)."""
    plain = make_serial(trace.protected)
    apd = make_serial(trace.protected, apd=_ratio_policy())
    plain_verdicts = [plain.process(pkt) for pkt in trace.packets]
    apd_verdicts = [apd.process(pkt) for pkt in trace.packets]
    assert not np.array_equal(np.array(plain_verdicts),
                              np.array(apd_verdicts))
