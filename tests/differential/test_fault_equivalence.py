"""Differential proof, part 2: equivalence holds *under fault injection*.

Every parallel filter exposes the same control surface as the serial one
(fail/recover, rotation stalls, bit flips, snapshot state), so the entire
chaos harness must produce identical verdict vectors and final stats
whichever execution backend it drives — including both fail policies and
trace-level stream perturbations.  ``backend`` arguments sweep
automatically over every parallel backend (see conftest).
"""

import numpy as np
import pytest

from repro.core.resilience import FailPolicy
from repro.faults.harness import run_with_faults
from repro.faults.injectors import (
    BitFlips,
    CrashRestart,
    Outage,
    PacketDuplication,
    PacketReorder,
    RotationStall,
)
from tests.differential.conftest import (
    assert_same_filter_state,
    make_parallel,
    make_serial,
)

pytestmark = [pytest.mark.differential, pytest.mark.faults]

NUM_WORKERS = 3


def _assert_equivalent_runs(trace, backend, injectors, exact=True,
                            fail_policy=None, compare_state=True):
    """Replay the same fault schedule serially and parallel; require
    identical verdicts, fault logs, and (optionally) final filter state."""
    kwargs = {} if fail_policy is None else {"fail_policy": fail_policy}
    serial = make_serial(trace.protected, backend, **kwargs)
    serial_run = run_with_faults(serial, trace, injectors, exact=exact)

    parallel = make_parallel(backend, trace.protected, NUM_WORKERS, **kwargs)
    try:
        parallel_run = run_with_faults(parallel, trace, injectors,
                                       exact=exact)
        assert np.array_equal(parallel_run.run.verdicts,
                              serial_run.run.verdicts)
        assert parallel_run.fault_log == serial_run.fault_log
        assert parallel_run.confusion == serial_run.confusion
        if compare_state:
            assert_same_filter_state(serial_run.filter, parallel_run.filter)
        return serial_run, parallel_run
    finally:
        parallel.close()


@pytest.mark.parametrize("policy", [FailPolicy.FAIL_CLOSED,
                                    FailPolicy.FAIL_OPEN])
def test_outage_under_both_fail_policies(trace, backend, policy):
    injectors = [Outage(at=9.0, duration=4.0)]
    serial_run, parallel_run = _assert_equivalent_runs(
        trace, backend, injectors, fail_policy=policy)
    # Sanity that the outage actually bit: degraded verdicts are uniform.
    expected = 1.0 if policy is FailPolicy.FAIL_OPEN else 0.0
    assert serial_run.incoming_pass_fraction(9.0, 13.0) == expected
    assert parallel_run.incoming_pass_fraction(9.0, 13.0) == expected


@pytest.mark.parametrize("catch_up", [True, False],
                         ids=["catch-up", "no-catch-up"])
def test_rotation_stall(trace, backend, catch_up):
    _assert_equivalent_runs(
        trace, backend,
        [RotationStall(at=6.0, duration=7.0, catch_up=catch_up)])


def test_bit_flips(trace, backend):
    serial_flip = BitFlips(at=10.0, fraction=0.01, seed=0xFEED)
    parallel_flip = BitFlips(at=10.0, fraction=0.01, seed=0xFEED)
    serial = make_serial(trace.protected, backend)
    serial_run = run_with_faults(serial, trace, [serial_flip])
    with make_parallel(backend, trace.protected, NUM_WORKERS) as parallel:
        parallel_run = run_with_faults(parallel, trace, [parallel_flip])
        assert parallel_flip.flipped == serial_flip.flipped > 0
        assert np.array_equal(parallel_run.run.verdicts,
                              serial_run.run.verdicts)
        assert_same_filter_state(serial_run.filter, parallel_run.filter)


@pytest.mark.parametrize("snapshot_age", [None, 6.0],
                         ids=["cold-restart", "warm-restart"])
def test_crash_restart(trace, backend, snapshot_age):
    """Snapshots capture the parallel filter's reconstructed serial view;
    restarts hand back a serial replacement either way, so both timelines
    converge on identical state."""
    def injectors():
        return [CrashRestart(crash_at=12.0, downtime=3.0,
                             snapshot_age=snapshot_age)]

    serial_run = run_with_faults(make_serial(trace.protected, backend), trace,
                                 injectors())
    with make_parallel(backend, trace.protected, NUM_WORKERS) as parallel:
        parallel_run = run_with_faults(parallel, trace, injectors())
    assert parallel_run.filters_swapped == serial_run.filters_swapped == 1
    assert np.array_equal(parallel_run.run.verdicts, serial_run.run.verdicts)
    assert_same_filter_state(serial_run.filter, parallel_run.filter)


def test_trace_level_faults_on_windowed_path(trace, backend):
    """Stream perturbations (reordering, duplication) transform the trace
    before replay; every backend must see — and judge — the same perturbed
    stream, here on the windowed batch path."""
    injectors = [PacketReorder(fraction=0.05, max_delay=0.4, seed=3),
                 PacketDuplication(fraction=0.02, delay=0.05, seed=5)]
    _assert_equivalent_runs(trace, backend, injectors, exact=False)


def test_compound_schedule(trace, backend):
    """An outage, a stall, and corruption in one run — the kitchen sink."""
    injectors = [
        Outage(at=5.0, duration=2.0),
        RotationStall(at=14.0, duration=4.0),
        BitFlips(at=20.0, fraction=0.005, seed=21),
    ]
    _assert_equivalent_runs(trace, backend, injectors,
                            fail_policy=FailPolicy.FAIL_OPEN)


def test_manual_control_surface_sequence(trace, backend):
    """Driving fail/recover/stall/resume by hand (no harness) stays in
    lockstep, including recover()'s missed-rotation accounting that sizes
    the default warm-up grace."""
    packets = trace.packets
    serial = make_serial(trace.protected, backend)
    with make_parallel(backend, trace.protected, 2) as parallel:
        cut1 = int(np.searchsorted(packets.ts, 7.0))
        cut2 = int(np.searchsorted(packets.ts, 13.0))
        for filt in (serial, parallel):
            filt.process_batch(packets[:cut1])
            filt.fail()
        assert parallel.is_down and serial.is_down
        v_serial = serial.process_batch(packets[cut1:cut2])
        v_parallel = parallel.process_batch(packets[cut1:cut2])
        assert np.array_equal(v_parallel, v_serial)
        missed_serial = serial.recover(13.0)
        missed_parallel = parallel.recover(13.0)
        assert missed_parallel == missed_serial > 0
        assert parallel.warmup_until == serial.warmup_until

        for filt in (serial, parallel):
            filt.stall_rotations()
        assert parallel.rotations_stalled
        tail = packets[cut2:]
        assert np.array_equal(parallel.process_batch(tail),
                              serial.process_batch(tail))
        assert (parallel.resume_rotations(26.0)
                == serial.resume_rotations(26.0))
        assert_same_filter_state(serial, parallel)
