"""Differential proof, part 2: equivalence holds *under fault injection*.

The sharded filter exposes the same control surface as the serial one
(fail/recover, rotation stalls, bit flips, snapshot state), so the entire
chaos harness must produce identical verdict vectors and final stats
whichever execution backend it drives — including both fail policies and
trace-level stream perturbations.
"""

import numpy as np
import pytest

from repro.core.resilience import FailPolicy
from repro.faults.harness import run_with_faults
from repro.faults.injectors import (
    BitFlips,
    CrashRestart,
    Outage,
    PacketDuplication,
    PacketReorder,
    RotationStall,
)
from tests.differential.conftest import (
    assert_same_filter_state,
    make_serial,
    make_sharded,
)

pytestmark = [pytest.mark.differential, pytest.mark.faults]

NUM_WORKERS = 3


def _assert_equivalent_runs(trace, injectors, exact=True,
                            fail_policy=None, compare_state=True):
    """Replay the same fault schedule serially and sharded; require
    identical verdicts, fault logs, and (optionally) final filter state."""
    kwargs = {} if fail_policy is None else {"fail_policy": fail_policy}
    serial = make_serial(trace.protected, **kwargs)
    serial_run = run_with_faults(serial, trace, injectors, exact=exact)

    sharded = make_sharded(trace.protected, NUM_WORKERS, **kwargs)
    try:
        sharded_run = run_with_faults(sharded, trace, injectors, exact=exact)
        assert np.array_equal(sharded_run.run.verdicts,
                              serial_run.run.verdicts)
        assert sharded_run.fault_log == serial_run.fault_log
        assert sharded_run.confusion == serial_run.confusion
        if compare_state:
            assert_same_filter_state(serial_run.filter, sharded_run.filter)
        return serial_run, sharded_run
    finally:
        sharded.close()


@pytest.mark.parametrize("policy", [FailPolicy.FAIL_CLOSED,
                                    FailPolicy.FAIL_OPEN])
def test_outage_under_both_fail_policies(trace, policy):
    injectors = [Outage(at=9.0, duration=4.0)]
    serial_run, sharded_run = _assert_equivalent_runs(
        trace, injectors, fail_policy=policy)
    # Sanity that the outage actually bit: degraded verdicts are uniform.
    expected = 1.0 if policy is FailPolicy.FAIL_OPEN else 0.0
    assert serial_run.incoming_pass_fraction(9.0, 13.0) == expected
    assert sharded_run.incoming_pass_fraction(9.0, 13.0) == expected


@pytest.mark.parametrize("catch_up", [True, False],
                         ids=["catch-up", "no-catch-up"])
def test_rotation_stall(trace, catch_up):
    _assert_equivalent_runs(
        trace, [RotationStall(at=6.0, duration=7.0, catch_up=catch_up)])


def test_bit_flips(trace):
    serial_flip = BitFlips(at=10.0, fraction=0.01, seed=0xFEED)
    sharded_flip = BitFlips(at=10.0, fraction=0.01, seed=0xFEED)
    serial = make_serial(trace.protected)
    serial_run = run_with_faults(serial, trace, [serial_flip])
    with make_sharded(trace.protected, NUM_WORKERS) as sharded:
        sharded_run = run_with_faults(sharded, trace, [sharded_flip])
        assert sharded_flip.flipped == serial_flip.flipped > 0
        assert np.array_equal(sharded_run.run.verdicts,
                              serial_run.run.verdicts)
        assert_same_filter_state(serial_run.filter, sharded_run.filter)


@pytest.mark.parametrize("snapshot_age", [None, 6.0],
                         ids=["cold-restart", "warm-restart"])
def test_crash_restart(trace, snapshot_age):
    """Snapshots are taken from the sharded proxy's reconstructed bitmap
    copy; restarts hand back a serial replacement either way, so both
    timelines converge on identical state."""
    def injectors():
        return [CrashRestart(crash_at=12.0, downtime=3.0,
                             snapshot_age=snapshot_age)]

    serial_run = run_with_faults(make_serial(trace.protected), trace,
                                 injectors())
    with make_sharded(trace.protected, NUM_WORKERS) as sharded:
        sharded_run = run_with_faults(sharded, trace, injectors())
    assert sharded_run.filters_swapped == serial_run.filters_swapped == 1
    assert np.array_equal(sharded_run.run.verdicts, serial_run.run.verdicts)
    assert_same_filter_state(serial_run.filter, sharded_run.filter)


def test_trace_level_faults_on_windowed_path(trace):
    """Stream perturbations (reordering, duplication) transform the trace
    before replay; both backends must see — and judge — the same perturbed
    stream, here on the windowed batch path."""
    injectors = [PacketReorder(fraction=0.05, max_delay=0.4, seed=3),
                 PacketDuplication(fraction=0.02, delay=0.05, seed=5)]
    _assert_equivalent_runs(trace, injectors, exact=False)


def test_compound_schedule(trace):
    """An outage, a stall, and corruption in one run — the kitchen sink."""
    injectors = [
        Outage(at=5.0, duration=2.0),
        RotationStall(at=14.0, duration=4.0),
        BitFlips(at=20.0, fraction=0.005, seed=21),
    ]
    _assert_equivalent_runs(trace, injectors,
                            fail_policy=FailPolicy.FAIL_OPEN)


def test_manual_control_surface_sequence(trace):
    """Driving fail/recover/stall/resume by hand (no harness) stays in
    lockstep, including recover()'s missed-rotation accounting that sizes
    the default warm-up grace."""
    packets = trace.packets
    serial = make_serial(trace.protected)
    with make_sharded(trace.protected, 2) as sharded:
        cut1 = int(np.searchsorted(packets.ts, 7.0))
        cut2 = int(np.searchsorted(packets.ts, 13.0))
        for filt in (serial, sharded):
            filt.process_batch(packets[:cut1])
            filt.fail()
        assert sharded.is_down and serial.is_down
        v_serial = serial.process_batch(packets[cut1:cut2])
        v_sharded = sharded.process_batch(packets[cut1:cut2])
        assert np.array_equal(v_sharded, v_serial)
        missed_serial = serial.recover(13.0)
        missed_sharded = sharded.recover(13.0)
        assert missed_sharded == missed_serial > 0
        assert sharded.warmup_until == serial.warmup_until

        for filt in (serial, sharded):
            filt.stall_rotations()
        assert sharded.rotations_stalled
        tail = packets[cut2:]
        assert np.array_equal(sharded.process_batch(tail),
                              serial.process_batch(tail))
        assert (sharded.resume_rotations(26.0)
                == serial.resume_rotations(26.0))
        assert_same_filter_state(serial, sharded)
