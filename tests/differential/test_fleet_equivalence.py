"""Fleet control-plane differential proofs (ISSUE 9).

The zero-downtime claims are meaningless without an equivalence oracle,
so each one gets a differential twin:

- **Rolling reconfig**: replaying through a live 3-node fleet while
  ``FleetManager.rolling_reconfig`` changes the bitmap order mid-trace
  must produce verdicts *byte-identical* to an offline single filter
  that rebuilds at the same shared boundary
  (:func:`repro.sim.pipeline.run_filter_with_reconfig`).  The test also
  proves the rebuild actually fired on every node — a boundary past the
  end of the trace would make the identity vacuous.
- **Scale-out**: adding a store-pre-warmed node mid-replay must finish
  with zero hangs, divergence (if any) confined to the tail packets the
  arrival now owns, and a nonzero ``restored_arrivals`` on its
  ``/healthz`` — the proof it served warm, not cold.

Real subprocesses (the SIGHUP reload path is the thing under test), so
both ``differential`` and ``slow`` markers.
"""

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, FilterConfig
from repro.fleet import FleetManager, FleetRouter
from repro.serve.retry import RetryPolicy
from repro.sim.pipeline import run_filter_on_trace, run_filter_with_reconfig
from repro.traffic.trace import Trace

pytestmark = [pytest.mark.differential, pytest.mark.slow]

PROTECTED_ARG = ",".join(f"172.16.{i}.0/24" for i in range(6))

OLD_CFG = FilterConfig(order=12, num_vectors=4, rotation_interval=2.5)
NEW_CFG = FilterConfig(order=13, num_vectors=4, rotation_interval=2.5)


@pytest.fixture()
def fleet(tmp_path):
    manager = FleetManager(PROTECTED_ARG, size=3, workdir=str(tmp_path),
                           order=12, rotation_interval=2.5)
    yield manager
    manager.shutdown()


def frames_of(packets, step=500):
    return [packets[i:i + step] for i in range(0, len(packets), step)]


def router_for(specs, protected):
    return FleetRouter(
        specs, protected=protected,
        retry=RetryPolicy(max_attempts=3, base_delay=0.05,
                          max_delay=0.5, deadline=10.0))


def test_rolling_reconfig_is_byte_identical_to_offline(fleet, tiny_trace):
    """Fleet verdicts across a live rolling reconfig == one offline
    filter rebuilding at the same shared boundary."""
    packets = tiny_trace.packets.sorted_by_time()[:8000]
    specs = fleet.start()
    frames = frames_of(packets)
    cut = len(frames) // 3
    with router_for(specs, tiny_trace.protected) as router:
        masks = router.filter_batches(frames[:cut])
        report = fleet.rolling_reconfig(NEW_CFG)
        masks += router.filter_batches(frames[cut:])
    verdicts = np.concatenate(masks)

    # The boundary must be interior to the remaining traffic, and the
    # rebuild must have fired on every node — otherwise the byte-identity
    # below would be vacuously comparing two no-op replays.
    assert report.rebuild_at < float(packets.ts.max())
    for name in report.nodes:
        health = fleet.healthz(name)
        assert health["pending_rebuild"] is False
        assert health["filter"]["order"] == NEW_CFG.order

    expected = run_filter_with_reconfig(
        OLD_CFG, NEW_CFG, Trace(packets, tiny_trace.protected),
        report.rebuild_at)
    np.testing.assert_array_equal(verdicts, expected)


def test_reconfig_changes_verdicts_so_the_identity_is_not_vacuous(
        tiny_trace):
    """Sanity anchor for the test above: the reconfig twin must *differ*
    from a never-reconfigured replay somewhere — the shrunken order=13
    table re-marks flows differently after the rebuild."""
    packets = tiny_trace.packets.sorted_by_time()[:8000]
    trace = Trace(packets, tiny_trace.protected)
    plain = np.asarray(run_filter_on_trace(
        BitmapFilter(OLD_CFG, tiny_trace.protected), trace,
        exact=True).verdicts, dtype=bool)
    boundary = float(packets.ts[len(packets) // 3])
    reconfig = run_filter_with_reconfig(OLD_CFG, NEW_CFG, trace, boundary)
    assert len(plain) == len(reconfig)
    # Not asserting a specific count — only that the operation is
    # observable, so byte-identity through it is a real constraint.
    assert (plain != reconfig).any()


def test_add_node_mid_replay_confines_divergence_and_serves_warm(
        fleet, tiny_trace):
    """Scale-out under load: zero hangs, divergence only on the stolen
    share, and the arrival provably warm-started from the store."""
    packets = tiny_trace.packets.sorted_by_time()[:8000]
    expected = np.asarray(run_filter_on_trace(
        BitmapFilter(OLD_CFG, tiny_trace.protected),
        Trace(packets, tiny_trace.protected), exact=True).verdicts,
        dtype=bool)

    specs = fleet.start()
    frames = frames_of(packets)
    half = len(frames) // 2
    cut = sum(len(frame) for frame in frames[:half])
    with router_for(specs, tiny_trace.protected) as router:
        masks = router.filter_batches(frames[:half])
        report = fleet.add_node(router)
        masks += router.filter_batches(frames[half:])
        owners = np.asarray(router.owner_names(packets))
    verdicts = np.concatenate(masks)

    assert len(verdicts) == len(packets)  # every frame answered: no hangs
    assert report.warm is True
    health = fleet.healthz(report.spec.name)
    assert health["restored"] is True
    assert health["restored_arrivals"] > 0

    diverged = np.flatnonzero(verdicts != expected)
    foreign = [i for i in diverged
               if i < cut or owners[i] != report.spec.name]
    assert not foreign, (
        f"{len(foreign)} diverged verdicts outside the arrival's share")
