"""Shared fixtures for the serial-vs-parallel differential suite.

Every test here replays identical input through a serial
:class:`~repro.core.bitmap_filter.BitmapFilter` and a parallel filter —
the replicated :class:`~repro.parallel.ShardedBitmapFilter` and the
shared-memory :class:`~repro.parallel.SharedBitmapFilter` — and asserts
*bit-for-bit* agreement: verdicts, merged stats, rotation schedule, and
raw bitmap bytes.  Any test that takes a ``backend`` argument is
automatically parametrized over every parallel backend, so the whole
suite states the equivalence contract once and proves it N times.

The ``verified-*`` backends re-run the same contract with the hybrid
bitmap→cuckoo verification tier stacked on top of each side: the serial
reference becomes a :class:`~repro.core.hybrid.HybridVerifiedFilter`
over a serial bitmap filter, the parallel subject a hybrid over the
parallel backend.  Verdicts, bitmap bytes, *and* cuckoo table digests
must all agree, which proves the verification layer composes with the
execution backends without changing semantics.

The fixtures provide one session-scoped benign+flood trace and the
state-comparison helper the whole suite leans on.
"""

import numpy as np
import pytest

from repro.attacks.ddos import syn_flood
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.core.hybrid import HybridVerifiedFilter, VerifySpec
from repro.parallel import (
    SharedBitmapFilter,
    ShardedBitmapFilter,
    shard_filter,
    share_filter,
)
from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig
from repro.traffic.trace import Trace

#: Worker counts every parametrized equivalence test sweeps.
WORKER_COUNTS = (1, 2, 4)

#: Every parallel backend the differential contract covers.  The
#: ``verified-*`` names stack the hybrid verification tier over the base
#: backend on *both* sides of every comparison.
PARALLEL_BACKENDS = ("sharded", "shared", "verified-sharded",
                     "verified-shared")

#: Small table so the trace exercises growth under the sweep.
VERIFY_SPEC = VerifySpec(initial_order=4)


def base_backend(backend: str) -> str:
    """The execution-backend half of a sweep name (``verified-shared`` →
    ``shared``); plain names pass through."""
    return backend.rsplit("-", 1)[-1]


def is_verified(backend: str) -> bool:
    return backend.startswith("verified-")


def _verified_wrapper(wrap):
    """Lift a pristine-donor wrapper (shard/share) to hybrid donors: the
    bitmap tier underneath gets parallelized, the wrapper and its cuckoo
    table carry over.  Keeps the base wrappers' idempotence contract."""
    def wrapper(donor, num_workers):
        if isinstance(donor, HybridVerifiedFilter):
            inner = wrap(donor.inner, num_workers)
            if inner is donor.inner:
                return donor
            # The base wrappers leave the donor usable, so the lifted
            # wrapper must too: the new stack gets its own table copy.
            return HybridVerifiedFilter(inner, donor.spec,
                                        table=donor.table.copy())
        return wrap(donor, num_workers)
    return wrapper


#: Backend name -> filter class / pristine-donor wrapper.
PARALLEL_FILTERS = {"sharded": ShardedBitmapFilter,
                    "shared": SharedBitmapFilter,
                    "verified-sharded": HybridVerifiedFilter,
                    "verified-shared": HybridVerifiedFilter}
PARALLEL_WRAPPERS = {"sharded": shard_filter, "shared": share_filter,
                     "verified-sharded": _verified_wrapper(shard_filter),
                     "verified-shared": _verified_wrapper(share_filter)}

#: Small geometry with a fast rotation clock: a 25 s trace crosses ~12
#: rotation boundaries and several full expiry windows.
CONFIG = BitmapFilterConfig(order=12, num_vectors=4, num_hashes=3,
                            rotation_interval=2.0)


def pytest_generate_tests(metafunc):
    """Sweep every test that names a ``backend`` argument across all
    parallel backends (plain parametrize, so Hypothesis tests get it
    too without function-scoped-fixture health checks)."""
    if "backend" in metafunc.fixturenames:
        metafunc.parametrize("backend", PARALLEL_BACKENDS)


@pytest.fixture(scope="session")
def trace() -> Trace:
    """Benign client-network workload with a SYN flood on top."""
    base = ClientNetworkWorkload(
        WorkloadConfig(duration=25.0, target_pps=250.0, seed=97)).generate()
    victim = base.protected.networks[0].host(5)
    flood = syn_flood(victim, 80, rate_pps=400.0, start=8.0, duration=6.0,
                      seed=11)
    # Session tails dribble on long past the nominal duration; bound the
    # trace so fault schedules (and rotation counts) stay in a known window.
    return base.merged_with(Trace(flood, base.protected)).time_slice(0.0, 26.0)


def make_serial(protected, backend="serial", config=CONFIG, **kwargs):
    """The serial reference for ``backend``: a plain bitmap filter, or a
    hybrid over one when the sweep name asks for the verified stack."""
    filt = BitmapFilter(config, protected, **kwargs)
    if is_verified(backend):
        filt = HybridVerifiedFilter(filt, VERIFY_SPEC)
    return filt


def make_parallel(backend, protected, num_workers, config=CONFIG, **kwargs):
    """A parallel filter of the requested backend over ``config``."""
    filt = PARALLEL_FILTERS[base_backend(backend)](
        config, protected, num_workers=num_workers, **kwargs)
    if is_verified(backend):
        filt = HybridVerifiedFilter(filt, VERIFY_SPEC)
    return filt


def bitmap_state(filt):
    """(stacked vector bytes, current index, rotation count) of a filter."""
    bitmap = filt.bitmap
    vectors = np.stack([vec.as_numpy() for vec in bitmap.vectors])
    return vectors, bitmap.current_index, bitmap.rotations


def assert_same_filter_state(serial, parallel) -> None:
    """The full serial-equivalence contract on two post-replay filters."""
    assert parallel.stats.as_dict() == serial.stats.as_dict()
    assert parallel.next_rotation == serial.next_rotation
    serial_vecs, serial_idx, serial_rot = bitmap_state(serial)
    parallel_vecs, parallel_idx, parallel_rot = bitmap_state(parallel)
    assert parallel_idx == serial_idx
    assert parallel_rot == serial_rot
    assert np.array_equal(parallel_vecs, serial_vecs)
    if isinstance(serial, HybridVerifiedFilter) or isinstance(
            parallel, HybridVerifiedFilter):
        # Verified sweeps: the exact tier must agree too, byte for byte.
        assert parallel.table.state_digest() == serial.table.state_digest()
        assert parallel.confirmed == serial.confirmed
        assert parallel.denied == serial.denied
