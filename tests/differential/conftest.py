"""Shared fixtures for the serial-vs-sharded differential suite.

Every test here replays identical input through a serial
:class:`~repro.core.bitmap_filter.BitmapFilter` and a
:class:`~repro.parallel.ShardedBitmapFilter` and asserts *bit-for-bit*
agreement — verdicts, merged stats, rotation schedule, and raw bitmap
bytes.  The fixtures provide one session-scoped benign+flood trace and
the state-comparison helper the whole suite leans on.
"""

import numpy as np
import pytest

from repro.attacks.ddos import syn_flood
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.parallel import ShardedBitmapFilter
from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig
from repro.traffic.trace import Trace

#: Worker counts every parametrized equivalence test sweeps.
WORKER_COUNTS = (1, 2, 4)

#: Small geometry with a fast rotation clock: a 25 s trace crosses ~12
#: rotation boundaries and several full expiry windows.
CONFIG = BitmapFilterConfig(order=12, num_vectors=4, num_hashes=3,
                            rotation_interval=2.0)


@pytest.fixture(scope="session")
def trace() -> Trace:
    """Benign client-network workload with a SYN flood on top."""
    base = ClientNetworkWorkload(
        WorkloadConfig(duration=25.0, target_pps=250.0, seed=97)).generate()
    victim = base.protected.networks[0].host(5)
    flood = syn_flood(victim, 80, rate_pps=400.0, start=8.0, duration=6.0,
                      seed=11)
    # Session tails dribble on long past the nominal duration; bound the
    # trace so fault schedules (and rotation counts) stay in a known window.
    return base.merged_with(Trace(flood, base.protected)).time_slice(0.0, 26.0)


def make_serial(protected, **kwargs) -> BitmapFilter:
    return BitmapFilter(CONFIG, protected, **kwargs)


def make_sharded(protected, num_workers, **kwargs) -> ShardedBitmapFilter:
    return ShardedBitmapFilter(CONFIG, protected, num_workers=num_workers,
                               **kwargs)


def bitmap_state(filt):
    """(stacked vector bytes, current index, rotation count) of a filter."""
    bitmap = filt.bitmap
    vectors = np.stack([vec.as_numpy() for vec in bitmap.vectors])
    return vectors, bitmap.current_index, bitmap.rotations


def assert_same_filter_state(serial, sharded) -> None:
    """The full serial-equivalence contract on two post-replay filters."""
    assert sharded.stats.as_dict() == serial.stats.as_dict()
    assert sharded.next_rotation == serial.next_rotation
    serial_vecs, serial_idx, serial_rot = bitmap_state(serial)
    sharded_vecs, sharded_idx, sharded_rot = bitmap_state(sharded)
    assert sharded_idx == serial_idx
    assert sharded_rot == serial_rot
    assert np.array_equal(sharded_vecs, serial_vecs)
