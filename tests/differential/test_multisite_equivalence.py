"""Online multi-site replay must be byte-identical to the offline runner.

The scenario engine's acceptance bar: streaming each site's trace through a
real one-daemon fleet (packet clock) produces exactly the verdict arrays the
offline ``build_filter``/``run_filter_on_trace`` path computes — including
the roaming client, whose snapshot is published by the *home* daemon through
the shared :class:`~repro.fleet.store.SnapshotStore` and restored by the
*visit* daemon via ``FleetManager(restore=...)``.
"""

import numpy as np
import pytest

from repro.scenarios.online import run_online
from repro.scenarios.runner import build_scenario, run_offline
from repro.scenarios.spec import (
    AttackWave,
    FilterGeometry,
    RoamingClient,
    ScenarioSpec,
    TrafficSpec,
)

pytestmark = [pytest.mark.differential, pytest.mark.slow]

SPEC = ScenarioSpec(
    name="diff-online",
    topology="fat-tree",
    sites=2,
    duration=12.0,
    seed=9,
    traffic=TrafficSpec(mix="web-search", pps=60.0),
    filter=FilterGeometry(order=12, rotation_interval=2.0),
    waves=(AttackWave(kind="scan", rate_multiplier=5.0, site_stagger=2.0),),
    roamers=(RoamingClient(roam_fraction=0.5, pps=20.0),),
)


def test_online_fleet_matches_offline_including_roaming_handoff(tmp_path):
    run = build_scenario(SPEC)
    online = run_online(run, workdir=tmp_path / "online")
    offline = run_offline(run, workdir=tmp_path / "offline")

    assert [s.name for s in online.sites] == [s.name for s in offline.sites]
    for live, ref in zip(online.sites, offline.sites):
        assert np.array_equal(live.verdicts, ref.verdicts), live.name
        assert np.array_equal(live.incoming_mask, ref.incoming_mask)
        assert live.confusion == ref.confusion

    (live_roam,) = online.roamers
    (ref_roam,) = offline.roamers
    assert live_roam.split_index == ref_roam.split_index
    assert np.array_equal(live_roam.verdicts, ref_roam.verdicts)
    assert live_roam.confusion == ref_roam.confusion
    # The handoff really went through the store: a snapshot was published.
    assert live_roam.snapshot_sequence >= 1

    assert online.aggregate == offline.aggregate
    # The daemons exported real metrics and the merge kept them.
    assert "repro_" in online.metrics_text


def test_run_online_verify_flag_self_checks(tmp_path):
    spec = ScenarioSpec(
        name="diff-verify",
        topology="multi-isp",
        sites=2,
        duration=8.0,
        seed=3,
        traffic=TrafficSpec(mix="campus", pps=50.0),
        filter=FilterGeometry(order=12, rotation_interval=2.0),
        waves=(AttackWave(kind="udp-flood", rate_multiplier=4.0,
                          site_stagger=1.0),),
    )
    outcome = run_online(build_scenario(spec), workdir=tmp_path,
                         verify=True)
    assert outcome.verified is True
