"""Differential proof, part 3: scores, telemetry, and snapshots agree.

Verdict equality is necessary but not sufficient — the experiment layer
consumes *derived* artifacts: scored run results (drop rates, confusion
counts), telemetry counters, and on-disk snapshots.  Each must come out
identical whichever backend produced it.  ``backend`` arguments sweep
automatically over every parallel backend (see conftest).
"""

import io

import numpy as np
import pytest

from repro.core import filter_api
from repro.core.filter_api import build_filter
from repro.core.persistence import load_filter, save_filter
from repro.sim.pipeline import run_filter_on_trace
from repro.telemetry import MetricsRegistry, use_registry
from tests.differential.conftest import (
    CONFIG,
    WORKER_COUNTS,
    base_backend,
    is_verified,
    make_parallel,
    make_serial,
)

pytestmark = pytest.mark.differential


def _counter_total(registry: MetricsRegistry, name: str) -> int:
    """Sum a counter over its unified label sets (serial splits by path
    label, the sharded proxy publishes one path="sharded" series).
    Per-shard replica detail (shard=N labels) is excluded — each replica
    re-counts broadcast marks, so including it would triple-count."""
    return sum(metric.value for metric in registry.metrics()
               if metric.name == name
               and "shard" not in dict(metric.labels))


@pytest.mark.parametrize("num_workers", WORKER_COUNTS)
def test_scored_pipeline_results_agree(trace, backend, num_workers):
    serial_run = run_filter_on_trace(make_serial(trace.protected, backend),
                                     trace)
    parallel_run = run_filter_on_trace(
        make_serial(trace.protected, backend), trace,
        backend=base_backend(backend), workers=num_workers)
    assert np.array_equal(parallel_run.verdicts, serial_run.verdicts)
    assert parallel_run.confusion == serial_run.confusion
    assert parallel_run.filter_stats == serial_run.filter_stats
    # The scored per-second series (the Fig. 5 drop-rate curves) is derived
    # purely from the verdicts, so field-for-field equality must follow.
    for fieldname in ("seconds", "normal_incoming", "attack_incoming",
                      "passed_incoming", "dropped_incoming"):
        assert np.array_equal(getattr(parallel_run.series, fieldname),
                              getattr(serial_run.series, fieldname)), fieldname


def test_ambient_backend_matches_explicit(trace, backend):
    """The ambient stack installed via use_backend()/use_layers() (the
    CLI's --backend/--workers/--filter path) produces the same scores as
    the explicit backend= argument over a hand-built filter."""
    explicit = run_filter_on_trace(make_serial(trace.protected, backend),
                                   trace, backend=base_backend(backend),
                                   workers=2)
    layers = ("verify",) if is_verified(backend) else ()
    with filter_api.use_backend(name=base_backend(backend), workers=2), \
            filter_api.use_layers(layers):
        assert filter_api.get_backend().is_parallel
        ambient_filter = build_filter(CONFIG, trace.protected)
        try:
            ambient = run_filter_on_trace(ambient_filter, trace)
        finally:
            ambient_filter.close()
    assert np.array_equal(ambient.verdicts, explicit.verdicts)
    assert ambient.confusion == explicit.confusion


def test_unified_telemetry_counters_agree(trace, backend):
    """Whatever series shape a backend publishes (the sharded proxy's
    merged path="sharded" counters, the shared filter's inherited serial
    per-path counters), the unified totals must equal the serial run's."""
    with use_registry(MetricsRegistry()) as serial_registry:
        serial = make_serial(trace.protected, backend)
        serial.process_batch(trace.packets)
    with use_registry(MetricsRegistry()) as parallel_registry:
        with make_parallel(backend, trace.protected, 2) as parallel:
            parallel.process_batch(trace.packets)

    for name in ("repro_filter_marks_total", "repro_filter_admits_total",
                 "repro_filter_drops_total", "repro_filter_rotations_total",
                 "repro_filter_warmup_admits_total"):
        assert (_counter_total(parallel_registry, name)
                == _counter_total(serial_registry, name)), name


def test_sharded_replicas_count_broadcast_marks(trace):
    """Per-shard replica detail reflects broadcast marking: every replica
    marked every outgoing packet, so each shard's replica-level mark
    counter equals the serial count.  (Sharded-specific by design — the
    shared backend has exactly one copy of the bits and no replicas.)"""
    with use_registry(MetricsRegistry()) as serial_registry:
        serial = make_serial(trace.protected)
        serial.process_batch(trace.packets)
    with use_registry(MetricsRegistry()) as sharded_registry:
        with make_parallel("sharded", trace.protected, 2) as sharded:
            sharded.process_batch(trace.packets)

    serial_marks = _counter_total(serial_registry,
                                  "repro_filter_marks_total")
    per_shard = [metric for metric in sharded_registry.metrics()
                 if metric.name == "repro_filter_marks_total"
                 and dict(metric.labels).get("shard") is not None]
    assert len(per_shard) == 2
    for metric in per_shard:
        assert metric.value == serial_marks


def test_snapshot_agreement(trace, backend, tmp_path):
    """save_filter() on a parallel filter captures byte-identical state:
    the snapshot loads into a serial filter indistinguishable from one
    that did the whole run serially."""
    serial = make_serial(trace.protected, backend)
    serial.process_batch(trace.packets)
    with make_parallel(backend, trace.protected, 4) as parallel:
        parallel.process_batch(trace.packets)
        serial_snap, parallel_snap = io.BytesIO(), io.BytesIO()
        save_filter(serial, serial_snap)
        save_filter(parallel, parallel_snap)

    serial_snap.seek(0)
    parallel_snap.seek(0)
    restored_serial = load_filter(serial_snap)
    restored_parallel = load_filter(parallel_snap)
    assert (restored_parallel.stats.as_dict()
            == restored_serial.stats.as_dict())
    assert restored_parallel.next_rotation == restored_serial.next_rotation
    assert np.array_equal(
        np.stack([v.as_numpy() for v in restored_parallel.bitmap.vectors]),
        np.stack([v.as_numpy() for v in restored_serial.bitmap.vectors]))

    # Both restored filters judge fresh traffic identically.
    tail = trace.packets[-500:]
    assert np.array_equal(restored_parallel.process_batch(tail),
                          restored_serial.process_batch(tail))
