"""Differential proof, part 1: fault-free verdict and state agreement.

Every parallel filter must return the exact verdict vector the serial
filter returns — same trace, same config — for every backend, every
worker count, on both the exact and the windowed batch path, on the
scalar path, and across adversarially boundary-clustered timestamp
sequences.  ``backend`` arguments sweep automatically over every
parallel backend (see conftest).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.bitmap_filter import BitmapFilterConfig
from tests.differential.conftest import (
    PARALLEL_FILTERS,
    PARALLEL_WRAPPERS,
    WORKER_COUNTS,
    assert_same_filter_state,
    make_parallel,
    make_serial,
)
from tests.strategies import (
    PROTECTED,
    mixed_direction_packets,
    rotation_straddling_arrays,
    script_to_packets,
    traffic_scripts,
)

pytestmark = pytest.mark.differential

#: Geometry matching the shared strategies' defaults (5 s rotations).
HYP_CONFIG = BitmapFilterConfig(order=10, num_vectors=4, num_hashes=3,
                                rotation_interval=5.0)


@pytest.mark.parametrize("num_workers", WORKER_COUNTS)
@pytest.mark.parametrize("exact", [True, False], ids=["exact", "windowed"])
def test_full_trace_verdicts_and_state(trace, backend, num_workers, exact):
    serial = make_serial(trace.protected, backend)
    expected = serial.process_batch(trace.packets, exact=exact)
    with make_parallel(backend, trace.protected, num_workers) as parallel:
        got = parallel.process_batch(trace.packets, exact=exact)
        assert np.array_equal(got, expected)
        assert_same_filter_state(serial, parallel)


@pytest.mark.parametrize("num_workers", (2, 3))
def test_scalar_path_agrees(trace, backend, num_workers):
    packets = list(trace.packets[:400])
    serial = make_serial(trace.protected, backend)
    with make_parallel(backend, trace.protected, num_workers) as parallel:
        for pkt in packets:
            assert parallel.process(pkt) is serial.process(pkt), pkt
        assert_same_filter_state(serial, parallel)


def test_batch_after_scalar_interleaving(trace, backend):
    """Mixing the scalar and batch entry points must not diverge."""
    packets = trace.packets[:900]
    split = 300
    serial = make_serial(trace.protected, backend)
    with make_parallel(backend, trace.protected, 2) as parallel:
        for pkt in packets[:split]:
            assert parallel.process(pkt) is serial.process(pkt)
        expected = serial.process_batch(packets[split:])
        got = parallel.process_batch(packets[split:])
        assert np.array_equal(got, expected)
        assert_same_filter_state(serial, parallel)


def test_parallel_windowed_equals_serial_windowed(trace, backend):
    """exact=False is an approximation of serial-exact, but it must still
    be the *same* approximation on every backend — verified on a batch
    where the approximation provably diverges (replies arriving just
    before their own outgoing mark inside one rotation window, which the
    windowed path admits and the exact path drops)."""
    from repro.net.packet import Packet, PacketArray, TcpFlags
    from repro.net.protocols import IPPROTO_TCP

    protected = trace.protected
    packets = []
    for flow in range(24):
        client = protected.networks[flow % 2].host(30 + flow)
        server = 0x0A000100 + flow
        sport = 40_000 + flow
        t0 = 0.3 + 0.9 * flow  # spreads flows across rotation windows
        packets.append(Packet(t0, IPPROTO_TCP, server, 80, client, sport,
                              TcpFlags.ACK))          # reply before the mark
        packets.append(Packet(t0 + 0.05, IPPROTO_TCP, client, sport,
                              server, 80, TcpFlags.ACK))  # the mark
        packets.append(Packet(t0 + 0.10, IPPROTO_TCP, server, 80, client,
                              sport, TcpFlags.ACK))   # reply after the mark
    packets.sort(key=lambda pkt: pkt.ts)
    batch = PacketArray.from_packets(packets)

    serial_windowed = make_serial(protected, backend).process_batch(
        batch, exact=False)
    serial_exact = make_serial(protected, backend).process_batch(
        batch, exact=True)
    assert not np.array_equal(serial_windowed, serial_exact), \
        "batch too tame: windowed path never diverged, weak test"
    with make_parallel(backend, protected, 4) as parallel:
        got = parallel.process_batch(batch, exact=False)
    assert np.array_equal(got, serial_windowed)


def test_wrapper_wraps_pristine_donor(trace, backend):
    wrap = PARALLEL_WRAPPERS[backend]
    donor = make_serial(trace.protected, backend)
    parallel = wrap(donor, 2)
    try:
        assert isinstance(parallel, PARALLEL_FILTERS[backend])
        assert wrap(parallel, 4) is parallel  # idempotent
        expected = donor.process_batch(trace.packets)
        got = parallel.process_batch(trace.packets)
        assert np.array_equal(got, expected)
    finally:
        parallel.close()


def test_wrapper_refuses_used_donor(trace, backend):
    donor = make_serial(trace.protected, backend)
    donor.process_batch(trace.packets[:50])
    with pytest.raises(ValueError, match="pristine"):
        PARALLEL_WRAPPERS[backend](donor, 2)


@given(script=mixed_direction_packets())
@settings(max_examples=25, deadline=None)
def test_property_mixed_direction_batches(backend, script):
    from repro.net.packet import PacketArray

    batch = PacketArray.from_packets(script)
    serial = make_serial(PROTECTED, backend, config=HYP_CONFIG)
    expected = serial.process_batch(batch)
    with make_parallel(backend, PROTECTED, 2,
                       config=HYP_CONFIG) as parallel:
        got = parallel.process_batch(batch)
        assert np.array_equal(got, expected)
        assert_same_filter_state(serial, parallel)


@given(events=traffic_scripts())
@settings(max_examples=25, deadline=None)
def test_property_scalar_scripts(backend, events):
    serial = make_serial(PROTECTED, backend, config=HYP_CONFIG)
    with make_parallel(backend, PROTECTED, 3,
                       config=HYP_CONFIG) as parallel:
        for pkt in script_to_packets(events):
            assert parallel.process(pkt) is serial.process(pkt), pkt


@pytest.mark.parametrize("exact", [True, False], ids=["exact", "windowed"])
@given(batch=rotation_straddling_arrays(
    rotation_interval=HYP_CONFIG.rotation_interval))
@settings(max_examples=25, deadline=None)
def test_property_rotation_boundary_clusters(backend, exact, batch):
    """Timestamps landing just before / on / just after rotation
    boundaries — the adversarial shape for lockstep-rotation bugs."""
    serial = make_serial(PROTECTED, backend, config=HYP_CONFIG)
    expected = serial.process_batch(batch, exact=exact)
    with make_parallel(backend, PROTECTED, 2,
                       config=HYP_CONFIG) as parallel:
        got = parallel.process_batch(batch, exact=exact)
        assert np.array_equal(got, expected)
        assert_same_filter_state(serial, parallel)
