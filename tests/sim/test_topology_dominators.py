"""Property proof: ``valid_filter_locations`` is exactly the dominator set.

The paper's placement rule — "the bitmap filter can be installed at any
location through which traffic from client networks must pass" — has a
brute-force oracle: a router is a mandatory waypoint iff deleting it from
the graph disconnects the client network from *every* peering point.  The
implementation computes the same set via ``nx.immediate_dominators`` over a
virtual-source graph; this suite proves the two agree on randomly generated
multi-peer topologies (including disconnected ones), not just the
hand-drawn Figure 1 example.
"""

import networkx as nx
from hypothesis import given, settings

from repro.sim.topology import IspTopology, NodeKind
from tests.strategies import isp_topologies


def dominator_oracle(topo: IspTopology, client: str) -> frozenset:
    """Routers whose removal disconnects the client from all peers."""
    graph = topo.graph
    peers = topo.nodes_of_kind(NodeKind.PEER)

    def reachable_without(blocked):
        g = graph.copy()
        if blocked is not None:
            g.remove_node(blocked)
        return any(nx.has_path(g, peer, client) for peer in peers)

    if not reachable_without(None):
        return frozenset()
    routers = (topo.nodes_of_kind(NodeKind.CORE)
               + topo.nodes_of_kind(NodeKind.EDGE))
    return frozenset(r for r in routers if not reachable_without(r))


@settings(max_examples=150, deadline=None)
@given(topo=isp_topologies())
def test_valid_filter_locations_equals_removal_oracle(topo):
    assert topo.valid_filter_locations("client") == dominator_oracle(
        topo, "client")


@settings(max_examples=60, deadline=None)
@given(topo=isp_topologies())
def test_attach_edge_router_dominates_whenever_client_is_reachable(topo):
    """A leaf client's sole attachment edge router is always a dominator
    (or the client is unreachable and the set is empty)."""
    valid = topo.valid_filter_locations("client")
    (attach,) = list(topo.graph.neighbors("client"))
    if valid:
        assert attach in valid
    else:
        assert dominator_oracle(topo, "client") == frozenset()


def test_paper_example_agrees_with_oracle():
    topo = IspTopology.paper_example()
    for client in ("clientA", "clientB", "clientC"):
        assert topo.valid_filter_locations(client) == dominator_oracle(
            topo, client)
