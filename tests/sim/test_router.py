"""Tests for repro.sim.router."""

import pytest

from repro.core.bitmap_filter import BitmapFilter, Decision
from repro.net.packet import Packet
from repro.net.protocols import IPPROTO_TCP
from repro.sim.router import EdgeRouter
from tests.conftest import make_reply, make_request


class TestAccounting:
    def test_counts_directions(self, protected, client_addr, server_addr):
        router = EdgeRouter("edge1", protected)
        out = make_request(1.0, client_addr, server_addr)
        router.forward(out)
        router.forward(make_reply(out, 1.1))
        assert router.counters.packets_out == 1
        assert router.counters.packets_in == 1
        assert router.counters.bytes_out == out.size

    def test_in_out_ratio(self, protected, client_addr, server_addr):
        router = EdgeRouter("edge1", protected)
        out = make_request(1.0, client_addr, server_addr)
        router.forward(out)
        for i in range(3):
            router.forward(make_reply(out, 1.1 + i * 0.01))
        assert router.counters.in_out_ratio == pytest.approx(3.0)

    def test_ratio_with_no_outgoing(self, protected, client_addr, server_addr):
        router = EdgeRouter("edge1", protected)
        stray = Packet(1.0, IPPROTO_TCP, server_addr, 1, client_addr, 2)
        router.forward(stray)
        assert router.counters.in_out_ratio == float("inf")

    def test_no_filter_passes_everything(self, protected, client_addr, server_addr):
        router = EdgeRouter("edge1", protected)
        stray = Packet(1.0, IPPROTO_TCP, server_addr, 1, client_addr, 2)
        assert router.forward(stray) is Decision.PASS
        assert router.counters.dropped_in == 0


class TestFilterIntegration:
    def test_drops_counted(self, protected, small_config, client_addr, server_addr):
        router = EdgeRouter("edge1", protected,
                            filt=BitmapFilter(small_config, protected))
        stray = Packet(1.0, IPPROTO_TCP, server_addr, 1, client_addr, 2)
        assert router.forward(stray) is Decision.DROP
        assert router.counters.dropped_in == 1
        assert router.counters.dropped_bytes_in == stray.size

    def test_legit_flow_forwarded(self, protected, small_config, client_addr, server_addr):
        router = EdgeRouter("edge1", protected,
                            filt=BitmapFilter(small_config, protected))
        out = make_request(1.0, client_addr, server_addr)
        assert router.forward(out) is Decision.PASS
        assert router.forward(make_reply(out, 1.1)) is Decision.PASS
        assert router.counters.dropped_in == 0


class TestUtilization:
    def test_utilization_estimate(self, protected, client_addr, server_addr):
        router = EdgeRouter("edge1", protected, downlink_capacity_bps=8000.0)
        # 1000 bytes/sec = 8000 bps = 100% of capacity.
        out = make_request(0.0, client_addr, server_addr)
        for i in range(30):
            pkt = Packet(i * 0.1, IPPROTO_TCP, server_addr, 80, client_addr,
                         out.sport, size=100)
            router.forward(pkt)
        assert router.downlink_utilization == pytest.approx(1.0, abs=0.3)

    def test_capacity_validated(self, protected):
        with pytest.raises(ValueError):
            EdgeRouter("edge1", protected, downlink_capacity_bps=0)

    def test_repr(self, protected):
        assert "edge1" in repr(EdgeRouter("edge1", protected))
