"""Tests for repro.sim.engine — the discrete-event timeline."""

import pytest

from repro.net.packet import PacketArray
from repro.sim.engine import (
    OutOfOrderPacketError,
    SimulationEngine,
    merge_packet_streams,
)
from tests.conftest import make_request


class TestTimers:
    def test_one_shot_timer(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(5.0, fired.append)
        engine.run([], until=10.0)
        assert fired == [5.0]
        assert engine.timers_fired == 1

    def test_recurring_timer(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(2.0, fired.append, interval=2.0)
        engine.run([], until=9.0)
        assert fired == [2.0, 4.0, 6.0, 8.0]

    def test_timer_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(3.0, lambda ts: order.append("b"))
        engine.schedule(1.0, lambda ts: order.append("a"))
        engine.schedule(5.0, lambda ts: order.append("c"))
        engine.run([], until=10.0)
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(1.0, lambda ts: order.append(1))
        engine.schedule(1.0, lambda ts: order.append(2))
        engine.run([], until=2.0)
        assert order == [1, 2]

    def test_interval_validation(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule(1.0, lambda ts: None, interval=0)

    def test_pending_timers(self):
        engine = SimulationEngine()
        engine.schedule(100.0, lambda ts: None)
        assert engine.pending_timers == 1


class TestPacketDelivery:
    def test_packets_delivered_in_order(self, client_addr, server_addr):
        engine = SimulationEngine()
        seen = []
        engine.on_packet(lambda pkt: seen.append(pkt.ts))
        packets = [make_request(float(t), client_addr, server_addr) for t in (1, 2, 3)]
        engine.run(packets)
        assert seen == [1.0, 2.0, 3.0]
        assert engine.packets_processed == 3

    def test_timers_interleave_with_packets(self, client_addr, server_addr):
        engine = SimulationEngine()
        events = []
        engine.on_packet(lambda pkt: events.append(("pkt", pkt.ts)))
        engine.schedule(1.5, lambda ts: events.append(("timer", ts)), interval=1.0)
        packets = [make_request(float(t), client_addr, server_addr) for t in (1, 2, 3)]
        engine.run(packets, until=3.5)
        assert events == [
            ("pkt", 1.0), ("timer", 1.5), ("pkt", 2.0),
            ("timer", 2.5), ("pkt", 3.0), ("timer", 3.5),
        ]

    def test_tie_timer_fires_before_packet(self, client_addr, server_addr):
        engine = SimulationEngine()
        events = []
        engine.on_packet(lambda pkt: events.append("pkt"))
        engine.schedule(2.0, lambda ts: events.append("timer"))
        engine.run([make_request(2.0, client_addr, server_addr)])
        assert events == ["timer", "pkt"]

    def test_run_array(self, client_addr, server_addr):
        engine = SimulationEngine()
        count = []
        engine.on_packet(lambda pkt: count.append(1))
        arr = PacketArray.from_packets(
            [make_request(1.0, client_addr, server_addr)] * 3
        )
        engine.run_array(arr)
        assert len(count) == 3

    def test_multiple_handlers(self, client_addr, server_addr):
        engine = SimulationEngine()
        a, b = [], []
        engine.on_packet(lambda pkt: a.append(pkt))
        engine.on_packet(lambda pkt: b.append(pkt))
        engine.run([make_request(1.0, client_addr, server_addr)])
        assert len(a) == len(b) == 1


class TestOutOfOrder:
    def test_reordered_packet_raises_by_default(self, client_addr, server_addr):
        engine = SimulationEngine()
        packets = [make_request(2.0, client_addr, server_addr),
                   make_request(1.0, client_addr, server_addr)]
        with pytest.raises(OutOfOrderPacketError):
            engine.run(packets)

    def test_tolerance_delivers_late_packet_at_current_clock(
        self, client_addr, server_addr
    ):
        engine = SimulationEngine(reorder_tolerance=2.0)
        seen = []
        engine.on_packet(lambda pkt: seen.append(pkt.ts))
        packets = [make_request(3.0, client_addr, server_addr),
                   make_request(1.5, client_addr, server_addr),
                   make_request(4.0, client_addr, server_addr)]
        engine.run(packets)
        assert seen == [3.0, 1.5, 4.0]
        assert engine.packets_reordered == 1
        assert engine.now == 4.0

    def test_tolerance_does_not_rewind_timers(self, client_addr, server_addr):
        engine = SimulationEngine(reorder_tolerance=5.0)
        fired = []
        engine.schedule(2.0, fired.append, interval=2.0)
        packets = [make_request(3.0, client_addr, server_addr),
                   make_request(1.0, client_addr, server_addr),
                   make_request(5.0, client_addr, server_addr)]
        engine.run(packets)
        # The late 1.0s packet must not re-fire the 2.0s timer.
        assert fired == [2.0, 4.0]

    def test_lateness_beyond_tolerance_raises(self, client_addr, server_addr):
        engine = SimulationEngine(reorder_tolerance=1.0)
        packets = [make_request(10.0, client_addr, server_addr),
                   make_request(2.0, client_addr, server_addr)]
        with pytest.raises(OutOfOrderPacketError):
            engine.run(packets)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine(reorder_tolerance=-1.0)


class TestCancel:
    def test_cancel_one_shot_before_it_fires(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(5.0, fired.append)
        engine.cancel(event)
        engine.run([], until=10.0)
        assert fired == []
        assert engine.pending_timers == 0

    def test_cancel_recurring_from_inside_its_handler(self):
        engine = SimulationEngine()
        fired = []

        def handler(ts):
            fired.append(ts)
            if len(fired) == 2:
                engine.cancel(event)

        event = engine.schedule(2.0, handler, interval=2.0)
        engine.run([], until=20.0)
        assert fired == [2.0, 4.0]

    def test_cancel_recurring_between_runs(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule(1.0, fired.append, interval=1.0)
        engine.run([], until=3.0)
        assert fired == [1.0, 2.0, 3.0]
        engine.cancel(event)
        engine.run([], until=10.0)
        assert fired == [1.0, 2.0, 3.0]
        assert engine.pending_timers == 0


class TestMerge:
    def test_merge_packet_streams(self, client_addr, server_addr):
        a = [make_request(float(t), client_addr, server_addr) for t in (1, 4)]
        b = [make_request(float(t), client_addr, server_addr) for t in (2, 3)]
        merged = list(merge_packet_streams(a, b))
        assert [p.ts for p in merged] == [1.0, 2.0, 3.0, 4.0]
