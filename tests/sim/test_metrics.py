"""Tests for repro.sim.metrics — confusion counts and series."""

import numpy as np
import pytest

from repro.net.packet import PacketArray, PacketLabel
from repro.sim.metrics import ConfusionCounts, score_run
from tests.conftest import make_request


class TestConfusionCounts:
    def test_rates(self):
        counts = ConfusionCounts(attack_dropped=90, attack_passed=10,
                                 normal_dropped=5, normal_passed=95)
        assert counts.attack_filter_rate == pytest.approx(0.9)
        assert counts.penetration_rate == pytest.approx(0.1)
        assert counts.false_positive_rate == pytest.approx(0.05)
        assert counts.incoming_total == 200

    def test_background_not_counted_as_fp(self):
        counts = ConfusionCounts(attack_dropped=0, attack_passed=0,
                                 normal_dropped=0, normal_passed=100,
                                 background_dropped=50, background_passed=0)
        assert counts.false_positive_rate == 0.0
        assert counts.incoming_total == 150

    def test_empty_safe(self):
        counts = ConfusionCounts(0, 0, 0, 0)
        assert counts.attack_filter_rate == 0.0
        assert counts.penetration_rate == 0.0
        assert counts.false_positive_rate == 0.0

    def test_as_dict_complete(self):
        counts = ConfusionCounts(1, 2, 3, 4, 5, 6)
        d = counts.as_dict()
        assert d["attack_dropped"] == 1
        assert d["background_passed"] == 6
        assert "attack_filter_rate" in d


class TestScoreRun:
    def _packets(self, client, server):
        from dataclasses import replace

        incoming_normal = make_request(1.0, server, client)
        incoming_attack = replace(make_request(2.0, server, client),
                                  label=PacketLabel.ATTACK)
        incoming_background = replace(make_request(3.0, server, client),
                                      label=PacketLabel.BACKGROUND)
        outgoing = make_request(4.0, client, server)
        return PacketArray.from_packets(
            [incoming_normal, incoming_attack, incoming_background, outgoing]
        )

    def test_confusion_and_series(self, client_addr, server_addr):
        packets = self._packets(client_addr, server_addr)
        verdicts = np.array([True, False, False, True])
        incoming = np.array([True, True, True, False])
        confusion, series = score_run(packets, verdicts, incoming, duration=5.0)
        assert confusion.normal_passed == 1
        assert confusion.attack_dropped == 1
        assert confusion.background_dropped == 1
        assert confusion.normal_dropped == 0
        assert series.normal_incoming.sum() == 1
        assert series.attack_incoming.sum() == 1
        assert series.dropped_incoming.sum() == 2
        assert len(series.seconds) == 5

    def test_series_binning(self, client_addr, server_addr):
        packets = self._packets(client_addr, server_addr)
        verdicts = np.ones(4, dtype=bool)
        incoming = np.array([True, True, True, False])
        _, series = score_run(packets, verdicts, incoming, duration=5.0)
        # One incoming packet per second at t=1,2,3.
        assert series.passed_incoming.tolist() == [0, 1, 1, 1, 0]


class TestAttackFilterRateSeries:
    def test_series_math(self):
        import numpy as np

        from repro.sim.metrics import PerSecondSeries

        series = PerSecondSeries(
            seconds=np.arange(3.0),
            normal_incoming=np.array([10, 10, 10]),
            attack_incoming=np.array([0, 100, 100]),
            passed_incoming=np.array([10, 12, 10]),
            dropped_incoming=np.array([0, 98, 100]),
        )
        rate = series.attack_filter_rate_series()
        # Second 1: 98 dropped of 100 attack -> 98%.
        assert rate[1] == pytest.approx(0.98)
        # Second 2: dropped (100) >= attack -> clamped to 100%.
        assert rate[2] == pytest.approx(1.0)
        # Second 0: no attack -> NaN.
        assert np.isnan(rate[0])
