"""Tests for repro.sim.pipeline — the experiment harness."""

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter
from repro.sim.pipeline import run_filter_on_trace, windowed_drop_rates
from repro.spi.hashlist import HashListFilter
from repro.spi.naive import NaiveExactFilter


class TestRunFilterOnTrace:
    def test_bitmap_run(self, tiny_trace, small_config):
        filt = BitmapFilter(small_config, tiny_trace.protected)
        result = run_filter_on_trace(filt, tiny_trace)
        assert len(result.verdicts) == len(tiny_trace)
        assert result.incoming_mask.sum() > 0
        assert 0.0 <= result.incoming_drop_rate < 0.2
        assert result.filter_stats["incoming"] == int(result.incoming_mask.sum())
        assert result.wall_time > 0

    def test_spi_run(self, tiny_trace):
        filt = HashListFilter(tiny_trace.protected, idle_timeout=240.0)
        result = run_filter_on_trace(filt, tiny_trace)
        assert len(result.verdicts) == len(tiny_trace)
        assert result.filter_stats["flows_kept"] == filt.num_flows

    def test_background_dropped_by_both(self, tiny_trace, small_config):
        bitmap = run_filter_on_trace(
            BitmapFilter(small_config, tiny_trace.protected), tiny_trace
        )
        spi = run_filter_on_trace(
            NaiveExactFilter(tiny_trace.protected), tiny_trace
        )
        # The random background radiation cannot match any real flow.
        assert bitmap.confusion.background_dropped > 0
        assert bitmap.confusion.background_passed <= 2  # false negatives possible
        assert spi.confusion.background_passed == 0

    def test_false_positive_rate_small_on_clean_trace(self, tiny_trace, small_config):
        result = run_filter_on_trace(
            BitmapFilter(small_config, tiny_trace.protected), tiny_trace
        )
        assert result.confusion.false_positive_rate < 0.05

    def test_unsupported_filter_type(self, tiny_trace):
        with pytest.raises(TypeError):
            run_filter_on_trace(object(), tiny_trace)

    def test_exact_and_windowed_agree_on_rates(self, tiny_trace, small_config):
        exact = run_filter_on_trace(
            BitmapFilter(small_config, tiny_trace.protected), tiny_trace, exact=True
        )
        windowed = run_filter_on_trace(
            BitmapFilter(small_config, tiny_trace.protected), tiny_trace, exact=False
        )
        assert windowed.incoming_drop_rate == pytest.approx(
            exact.incoming_drop_rate, abs=0.02
        )
        # Windowed is never stricter.
        assert bool(np.all(windowed.verdicts >= exact.verdicts))


class TestWindowedDropRates:
    def test_shape_and_range(self, tiny_trace, small_config):
        result = run_filter_on_trace(
            BitmapFilter(small_config, tiny_trace.protected), tiny_trace
        )
        xs, rates = windowed_drop_rates(result, window=10.0)
        assert len(xs) == len(rates)
        assert bool(np.all((rates >= 0) & (rates <= 1)))
        assert len(xs) == int(np.ceil(len(result.series.seconds) / 10.0))
