"""Tests for repro.sim.deployment — Figure 1 filter deployments."""

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilterConfig
from repro.net.address import AddressSpace
from repro.net.packet import Packet, PacketArray, TcpFlags
from repro.net.protocols import IPPROTO_TCP
from repro.sim.deployment import FilterDeployment, union_address_space
from repro.sim.topology import IspTopology
from tests.conftest import make_reply, make_request

CFG = BitmapFilterConfig(order=12, num_vectors=4, num_hashes=3,
                         rotation_interval=5.0)


@pytest.fixture()
def spaces():
    return (AddressSpace.class_c_block("10.1.0.0", 2),
            AddressSpace.class_c_block("10.2.0.0", 2))


@pytest.fixture()
def topo(spaces):
    space_a, space_b = spaces
    topo = IspTopology()
    topo.add_core_router("core")
    topo.add_edge_router("edgeA")
    topo.add_edge_router("edgeB")
    topo.add_peer("internet")
    topo.connect("internet", "core")
    topo.connect("core", "edgeA")
    topo.connect("core", "edgeB")
    topo.add_client_network("netA", "edgeA", space_a)
    topo.add_client_network("netB", "edgeB", space_b)
    return topo


class TestUnionAddressSpace:
    def test_union_contains_both(self, spaces):
        union = union_address_space(spaces)
        assert union.contains("10.1.0.5")
        assert union.contains("10.2.1.5")
        assert not union.contains("10.3.0.5")
        assert len(union.networks) == 4


class TestInstallValidation:
    def test_valid_edge_placement(self, topo):
        deployment = FilterDeployment(topo)
        placed = deployment.install("edgeA", ["netA"], CFG)
        assert placed.router == "edgeA"
        assert placed.covered_networks == ["netA"]

    def test_valid_core_aggregation(self, topo):
        deployment = FilterDeployment(topo)
        placed = deployment.install("core", ["netA", "netB"], CFG)
        assert placed.filter.protected.contains("10.1.0.5")
        assert placed.filter.protected.contains("10.2.0.5")

    def test_wrong_router_rejected(self, topo):
        deployment = FilterDeployment(topo)
        with pytest.raises(ValueError):
            deployment.install("edgeB", ["netA"], CFG)

    def test_empty_coverage_rejected(self, topo):
        deployment = FilterDeployment(topo)
        with pytest.raises(ValueError):
            deployment.install("core", [], CFG)

    def test_network_without_space_rejected(self, topo):
        topo.add_edge_router("edgeC")
        topo.connect("core", "edgeC")
        topo.add_client_network("netC", "edgeC")  # no address space
        deployment = FilterDeployment(topo)
        with pytest.raises(ValueError):
            deployment.install("edgeC", ["netC"], CFG)

    def test_coverage_bookkeeping(self, topo):
        deployment = FilterDeployment(topo)
        deployment.install("edgeA", ["netA"], CFG)
        assert deployment.covered_networks() == ["netA"]
        assert deployment.uncovered_networks() == ["netB"]


class TestBatchProcessing:
    def test_each_filter_defends_its_network(self, topo, spaces):
        space_a, space_b = spaces
        deployment = FilterDeployment(topo)
        deployment.install("edgeA", ["netA"], CFG)
        deployment.install("edgeB", ["netB"], CFG)

        client_a = space_a.networks[0].host(5)
        client_b = space_b.networks[0].host(5)
        server = 0x08080808
        request_a = make_request(1.0, client_a, server)
        packets = PacketArray.from_packets([
            request_a,
            make_reply(request_a, 1.1),                                  # pass
            Packet(2.0, IPPROTO_TCP, server, 1, client_a, 2),            # drop (A)
            Packet(2.1, IPPROTO_TCP, server, 1, client_b, 2),            # drop (B)
            Packet(2.2, IPPROTO_TCP, 0x01010101, 1, 0x02020202, 2),      # transit
        ])
        verdicts = deployment.process_batch(packets)
        assert verdicts.tolist() == [True, True, False, False, True]

    def test_aggregated_filter_equivalent_for_disjoint_networks(self, topo, spaces):
        space_a, space_b = spaces
        per_edge = FilterDeployment(topo)
        per_edge.install("edgeA", ["netA"], CFG)
        per_edge.install("edgeB", ["netB"], CFG)
        aggregated = FilterDeployment(topo)
        aggregated.install("core", ["netA", "netB"], CFG)

        client_a = space_a.networks[0].host(5)
        client_b = space_b.networks[1].host(9)
        server = 0x08080808
        req_a = make_request(1.0, client_a, server, sport=1111)
        req_b = make_request(1.2, client_b, server, sport=2222)
        packets = PacketArray.from_packets([
            req_a, req_b,
            make_reply(req_a, 1.5), make_reply(req_b, 1.6),
            Packet(2.0, IPPROTO_TCP, server, 7, client_a, 8),
        ])
        assert (per_edge.process_batch(packets)
                == aggregated.process_batch(packets)).all()

    def test_total_memory(self, topo):
        deployment = FilterDeployment(topo)
        deployment.install("edgeA", ["netA"], CFG)
        deployment.install("edgeB", ["netB"], CFG)
        assert deployment.total_memory_bytes() == 2 * CFG.memory_bytes

    def test_uncovered_traffic_passes(self, topo, spaces):
        deployment = FilterDeployment(topo)
        deployment.install("edgeA", ["netA"], CFG)
        _space_a, space_b = spaces
        stray_to_b = Packet(1.0, IPPROTO_TCP, 0x08080808, 1,
                            space_b.networks[0].host(3), 2)
        verdicts = deployment.process_batch(PacketArray.from_packets([stray_to_b]))
        assert verdicts.tolist() == [True]


class TestAggregationExperiment:
    def test_aggregated_load_doubles_utilization(self):
        from repro.experiments.aggregation import run_aggregation
        from repro.experiments.config import ExperimentScale

        xs = ExperimentScale(name="xs", duration=60.0, normal_pps=200.0,
                             bitmap_order=13)
        result = run_aggregation(xs)
        per_edge = result.by_label("per-edge (2 filters, n)")
        aggregated = result.by_label("aggregated core (1 filter, n)")
        bigger = result.by_label("aggregated core (1 filter, n+1)")

        mean_edge_u = sum(per_edge.utilizations) / len(per_edge.utilizations)
        # One filter absorbing both networks' load runs ~2x as full...
        assert aggregated.utilizations[0] == pytest.approx(2 * mean_edge_u,
                                                           rel=0.35)
        # ...and doubling the vector size restores the regime.
        assert bigger.utilizations[0] == pytest.approx(mean_edge_u, rel=0.35)

        # All three defend equally well at these utilizations.
        for outcome in result.outcomes:
            assert outcome.attack_filter_rate > 0.99

        # Memory: the aggregated n+1 filter costs the same as two n filters.
        assert bigger.memory_bytes == per_edge.memory_bytes


class TestOverlappingCoverage:
    def test_packet_passes_only_if_every_covering_filter_passes(self, topo, spaces):
        """netA is covered both at its edge and at the aggregating core;
        a packet blocked by either filter is dropped."""
        space_a, _ = spaces
        deployment = FilterDeployment(topo)
        edge = deployment.install("edgeA", ["netA"], CFG)
        core = deployment.install("core", ["netA", "netB"], CFG)

        client_a = space_a.networks[0].host(5)
        server = 0x08080808
        request = make_request(1.0, client_a, server)
        # Mark only the CORE filter (simulating divergent state, e.g. the
        # edge filter restarted cold): the edge filter must still veto.
        core.filter.process(request)

        reply = make_reply(request, 1.2)
        verdicts = deployment.process_batch(
            PacketArray.from_packets([reply]))
        assert verdicts.tolist() == [False]

        # Once both filters saw the request, the reply passes.
        edge.filter.process(request)
        verdicts = deployment.process_batch(
            PacketArray.from_packets([make_reply(request, 1.3)]))
        assert verdicts.tolist() == [True]
