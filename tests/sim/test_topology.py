"""Tests for repro.sim.topology — Figure 1 placement analysis."""

import pytest

from repro.sim.topology import IspTopology, NodeKind


@pytest.fixture()
def topo():
    return IspTopology.paper_example()


class TestConstruction:
    def test_paper_example_shape(self, topo):
        assert len(topo.nodes_of_kind(NodeKind.CORE)) == 3
        assert len(topo.nodes_of_kind(NodeKind.EDGE)) == 3
        assert len(topo.nodes_of_kind(NodeKind.CLIENT_NETWORK)) == 3
        assert len(topo.nodes_of_kind(NodeKind.PEER)) == 1

    def test_duplicate_names_rejected(self):
        topo = IspTopology()
        topo.add_core_router("c1")
        with pytest.raises(ValueError):
            topo.add_core_router("c1")

    def test_client_attaches_only_to_edge(self):
        topo = IspTopology()
        topo.add_core_router("c1")
        with pytest.raises(ValueError):
            topo.add_client_network("net", "c1")

    def test_connect_unknown_node(self):
        topo = IspTopology()
        topo.add_core_router("c1")
        with pytest.raises(KeyError):
            topo.connect("c1", "nope")

    def test_clients_not_connectable_directly(self, topo):
        with pytest.raises(ValueError):
            topo.connect("clientA", "core1")

    def test_address_space_attachment(self):
        from repro.net.address import AddressSpace

        topo = IspTopology()
        topo.add_edge_router("e1")
        space = AddressSpace.class_c_block("10.1.0.0", 2)
        topo.add_client_network("net", "e1", space)
        assert topo.address_space("net") is space
        assert topo.address_space("missing") is None


class TestFilterPlacement:
    def test_edge_router_always_valid(self, topo):
        """The edge router a client hangs off is always a choke point."""
        assert "edge1" in topo.valid_filter_locations("clientA")
        assert "edge3" in topo.valid_filter_locations("clientC")

    def test_placement_excludes_other_edges(self, topo):
        locations = topo.valid_filter_locations("clientA")
        assert "edge2" not in locations
        assert "edge3" not in locations

    def test_core_mesh_not_a_choke_point(self, topo):
        """core1 and core3 are alternatives, so neither dominates clientA...
        but core2 (sole peer attachment) does not dominate either since the
        virtual source enters at the peer which attaches only to core2."""
        locations = topo.valid_filter_locations("clientA")
        # Traffic from the peer goes peer->core2->{core1 | core3->core1}:
        # core1 is on every path to edge1; core3 is not.
        assert "core1" in locations
        assert "core3" not in locations

    def test_aggregating_core_covers_multiple_clients(self, topo):
        """Figure 1: a core router aggregating two client networks."""
        assert topo.covers_aggregate("core1", ["clientA", "clientB"])
        assert not topo.covers_aggregate("edge1", ["clientA", "clientB"])

    def test_redundant_uplinks_shrink_placement(self):
        """With two disjoint uplinks only the shared edge dominates."""
        topo = IspTopology()
        topo.add_core_router("c1")
        topo.add_core_router("c2")
        topo.add_edge_router("e1")
        topo.add_peer("p1")
        topo.add_peer("p2")
        topo.connect("p1", "c1")
        topo.connect("p2", "c2")
        topo.connect("c1", "e1")
        topo.connect("c2", "e1")
        topo.add_client_network("net", "e1")
        locations = topo.valid_filter_locations("net")
        assert locations == frozenset({"e1"})

    def test_requires_peers(self):
        topo = IspTopology()
        topo.add_edge_router("e1")
        topo.add_client_network("net", "e1")
        with pytest.raises(ValueError):
            topo.valid_filter_locations("net")

    def test_unknown_client(self, topo):
        with pytest.raises(KeyError):
            topo.valid_filter_locations("nope")
        with pytest.raises(ValueError):
            topo.valid_filter_locations("core1")

    def test_disconnected_client_has_no_locations(self):
        topo = IspTopology()
        topo.add_peer("p1")
        topo.add_core_router("c1")
        topo.connect("p1", "c1")
        topo.add_edge_router("e1")  # not connected to the core
        topo.add_client_network("net", "e1")
        assert topo.valid_filter_locations("net") == frozenset()


class TestAttachAddressSpace:
    def test_attach_after_creation(self, topo):
        from repro.net.address import AddressSpace

        space = AddressSpace.class_c_block("10.9.0.0", 1)
        topo.attach_address_space("clientA", space)
        assert topo.address_space("clientA") is space

    def test_attach_to_router_rejected(self, topo):
        from repro.net.address import AddressSpace

        with pytest.raises(ValueError):
            topo.attach_address_space("core1",
                                      AddressSpace.class_c_block("10.9.0.0", 1))
