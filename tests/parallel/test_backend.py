"""Unit tests for the execution-backend switch and filter factory."""

import pytest

from repro.core.apd import AdaptiveDroppingPolicy, PacketRatioIndicator
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.parallel import (
    BACKEND_NAMES,
    SERIAL_BACKEND,
    ExecutionBackend,
    SharedBitmapFilter,
    ShardedBitmapFilter,
    create_filter,
    get_backend,
    set_backend,
    use_backend,
)
from tests.strategies import PROTECTED

CONFIG = BitmapFilterConfig(order=10, num_vectors=4, num_hashes=3,
                            rotation_interval=5.0)


class TestExecutionBackend:
    def test_default_is_serial(self):
        assert SERIAL_BACKEND.name == "serial"
        assert SERIAL_BACKEND.workers == 1
        assert not SERIAL_BACKEND.is_sharded
        assert not SERIAL_BACKEND.is_shared
        assert not SERIAL_BACKEND.is_parallel

    def test_every_name_constructible(self):
        assert BACKEND_NAMES == ("serial", "sharded", "shared")
        for name in BACKEND_NAMES:
            backend = ExecutionBackend(
                name=name, workers=1 if name == "serial" else 2)
            assert backend.is_parallel == (name != "serial")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExecutionBackend(name="gpu")

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ExecutionBackend(name="sharded", workers=0)

    def test_serial_with_many_workers_rejected(self):
        with pytest.raises(ValueError, match="exactly one"):
            ExecutionBackend(name="serial", workers=3)


class TestAmbientBackend:
    def test_use_backend_scopes_and_restores(self):
        assert get_backend() is SERIAL_BACKEND
        with use_backend(name="sharded", workers=4) as backend:
            assert get_backend() is backend
            assert backend.workers == 4
        assert get_backend() is SERIAL_BACKEND

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend(name="sharded", workers=2):
                raise RuntimeError("boom")
        assert get_backend() is SERIAL_BACKEND

    def test_use_backend_rejects_mixed_arguments(self):
        with pytest.raises(TypeError, match="not both"):
            with use_backend(ExecutionBackend(), name="serial"):
                pass

    def test_set_backend_none_means_serial(self):
        previous = set_backend(ExecutionBackend(name="sharded", workers=2))
        try:
            assert get_backend().is_sharded
        finally:
            set_backend(None)
        assert get_backend() is SERIAL_BACKEND
        assert previous is SERIAL_BACKEND


class TestCreateFilter:
    def test_serial_by_default(self):
        filt = create_filter(CONFIG, PROTECTED)
        assert isinstance(filt, BitmapFilter)

    def test_sharded_under_ambient_backend(self):
        with use_backend(name="sharded", workers=2):
            filt = create_filter(CONFIG, PROTECTED)
        try:
            assert isinstance(filt, ShardedBitmapFilter)
            assert filt.num_workers == 2
        finally:
            filt.close()

    def test_explicit_backend_overrides_ambient(self):
        filt = create_filter(
            CONFIG, PROTECTED,
            backend=ExecutionBackend(name="sharded", workers=3))
        try:
            assert isinstance(filt, ShardedBitmapFilter)
            assert filt.num_workers == 3
        finally:
            filt.close()

    def test_shared_under_ambient_backend(self):
        with use_backend(name="shared", workers=2):
            filt = create_filter(CONFIG, PROTECTED)
        try:
            assert isinstance(filt, SharedBitmapFilter)
            assert filt.num_workers == 2
        finally:
            filt.close()

    def test_apd_on_sharded_warns_and_falls_back(self):
        """APD drop decisions depend on global arrival order, which sharded
        replicas never see — the factory still falls back to a serial
        filter, but the fallback is no longer silent."""
        with use_backend(name="sharded", workers=2):
            with pytest.warns(DeprecationWarning,
                              match="global arrival order"):
                filt = create_filter(
                    CONFIG, PROTECTED,
                    apd=AdaptiveDroppingPolicy(PacketRatioIndicator()))
        assert isinstance(filt, BitmapFilter)
        assert not isinstance(filt, SharedBitmapFilter)
        assert filt.apd is not None

    def test_apd_native_on_shared(self):
        """The shared backend's single writer sees every arrival in global
        order, so APD runs natively — no fallback, no warning.  (Built via
        the modern factory: the deprecated ``create_filter`` alias itself
        warns, which would trip the error filter.)"""
        import warnings

        from repro.core.filter_api import build_filter

        with use_backend(name="shared", workers=2):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                filt = build_filter(
                    CONFIG, PROTECTED,
                    apd=AdaptiveDroppingPolicy(PacketRatioIndicator()))
        try:
            assert isinstance(filt, SharedBitmapFilter)
            assert filt.apd is not None
        finally:
            filt.close()


class TestShardedLifecycle:
    def test_close_is_idempotent(self):
        filt = ShardedBitmapFilter(CONFIG, PROTECTED, num_workers=2)
        assert not filt.closed
        filt.close()
        assert filt.closed
        filt.close()  # second close is a no-op

    def test_context_manager_closes(self):
        with ShardedBitmapFilter(CONFIG, PROTECTED, num_workers=1) as filt:
            assert not filt.closed
        assert filt.closed

    def test_workers_are_daemons_and_exit_on_close(self):
        filt = ShardedBitmapFilter(CONFIG, PROTECTED, num_workers=2)
        procs = list(filt._procs)
        assert all(proc.daemon for proc in procs)
        assert all(proc.is_alive() for proc in procs)
        filt.close()
        for proc in procs:
            proc.join(timeout=5.0)
        assert not any(proc.is_alive() for proc in procs)

    def test_worker_errors_surface_with_traceback(self):
        from repro.parallel import ShardWorkerError

        with ShardedBitmapFilter(CONFIG, PROTECTED, num_workers=2) as filt:
            with pytest.raises(ShardWorkerError, match="fraction"):
                filt.flip_bits(3.5)  # invalid fraction raises in the worker

    def test_requires_protected_space(self):
        with pytest.raises(TypeError, match="protected"):
            ShardedBitmapFilter(CONFIG)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ShardedBitmapFilter(CONFIG, PROTECTED, num_workers=0)
