"""The simulation engine's parallel backends: same timers, same verdicts."""

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.sim.engine import SimulationEngine
from tests.strategies import PROTECTED, script_to_packets

CONFIG = BitmapFilterConfig(order=10, num_vectors=4, num_hashes=3,
                            rotation_interval=5.0)


def _fixed_batch():
    """A deterministic 26 s mixed script crossing several rotations."""
    events = []
    for i in range(160):
        events.append((0.16, i % 3 != 1, i % 6))
    from repro.net.packet import PacketArray

    return PacketArray.from_packets(script_to_packets(events))


def test_engine_ctor_validation():
    with pytest.raises(ValueError, match="unknown backend"):
        SimulationEngine(backend="gpu")
    with pytest.raises(ValueError, match="requires a parallel backend"):
        SimulationEngine(workers=2)


@pytest.mark.parametrize("backend", ["sharded", "shared"])
def test_run_filter_matches_serial_engine_with_timers(backend):
    batch = _fixed_batch()
    fired = {"serial": [], backend: []}

    def run(backend_kwargs, key):
        engine = SimulationEngine(**backend_kwargs)
        filt = BitmapFilter(CONFIG, PROTECTED)
        engine.schedule(2.0, lambda ts: fired[key].append(ts), interval=3.0)
        try:
            verdicts = engine.run_filter(filt, batch, until=30.0)
        finally:
            engine.close_shard_pools()
        return verdicts, engine

    serial_verdicts, serial_engine = run({}, "serial")
    par_verdicts, par_engine = run(
        {"backend": backend, "workers": 2}, backend)
    assert np.array_equal(par_verdicts, serial_verdicts)
    assert fired[backend] == fired["serial"]
    assert (par_engine.packets_processed
            == serial_engine.packets_processed == len(batch))
    assert par_engine.timers_fired == serial_engine.timers_fired
    assert par_engine.now == serial_engine.now == 30.0


@pytest.mark.parametrize("backend", ["sharded", "shared"])
def test_engine_reuses_one_pool_per_filter_instance(backend):
    engine = SimulationEngine(backend=backend, workers=2)
    filt = BitmapFilter(CONFIG, PROTECTED)
    batch = _fixed_batch()
    try:
        engine.run_filter(filt, batch[:50])
        pool = engine._shard_pools[id(filt)]
        engine.run_filter(filt, batch[50:100])
        assert engine._shard_pools[id(filt)] is pool
        assert len(engine._shard_pools) == 1
    finally:
        engine.close_shard_pools()
    assert pool.closed
    assert not engine._shard_pools


@pytest.mark.parametrize("backend", ["sharded", "shared"])
def test_engine_accepts_prewrapped_filter(backend):
    from repro.parallel import SharedBitmapFilter, ShardedBitmapFilter

    cls = ShardedBitmapFilter if backend == "sharded" else SharedBitmapFilter
    batch = _fixed_batch()
    engine = SimulationEngine(backend=backend, workers=2)
    with cls(CONFIG, PROTECTED, num_workers=2) as filt:
        verdicts = engine.run_filter(filt, batch[:100])
        assert len(verdicts) == 100
        assert not engine._shard_pools  # no second pool wrapped around it


@pytest.mark.parametrize("backend", ["sharded", "shared"])
def test_timer_splits_batches_at_exact_timestamps(backend):
    """A timer that mutates the filter mid-batch must land between the
    same two packets on every backend (ties: timer first)."""
    batch = _fixed_batch()
    boundary = float(batch.ts[len(batch) // 2])

    def run(backend_kwargs):
        engine = SimulationEngine(**backend_kwargs)
        filt = BitmapFilter(CONFIG, PROTECTED)
        engine.schedule(boundary, lambda ts: filt_proxy[0].flip_bits(0.02, 9))
        filt_proxy = [filt]
        try:
            if engine.backend != "serial":
                filt_proxy[0] = engine._backend_filter(filt)
            return engine.run_filter(filt, batch)
        finally:
            engine.close_shard_pools()

    serial = run({})
    parallel = run({"backend": backend, "workers": 3})
    assert np.array_equal(parallel, serial)
