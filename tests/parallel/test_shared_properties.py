"""Property proofs for the shared-memory bitmap's epoch-indexed rotation.

The shared backend rotates by bumping a shared epoch counter and zeroing
the retiring slab in place — no state is copied, so the two failure modes
a replica-based design cannot have become the ones to prove absent here:

1. **A reader consulting a retired epoch's bits** — the seqlock must make
   the (index bump, epoch bump, slab clear) triple atomic from every
   reader's point of view.
2. **Incomplete zeroing** — the retiring slab must come back all-zero in
   the readers' mapping, not just the writer's.

The scripts come from :func:`tests.strategies.epoch_op_scripts` (marks
deliberately straddling rotation boundaries), restores from
:func:`tests.strategies.bitmap_snapshot_states`, and every property is
judged against the plain serial :class:`~repro.core.bitmap.Bitmap` as the
oracle.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.bitmap import Bitmap
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.parallel.shm import EPOCH, IDX, SEQ, SharedBitmap
from repro.parallel.shared import SharedBitmapFilter
from tests.strategies import (
    PROTECTED,
    bit_index_arrays,
    bitmap_snapshot_states,
    epoch_op_scripts,
)

pytestmark = pytest.mark.parallel_properties

ORDER = 10
NUM_VECTORS = 4

CONFIG = BitmapFilterConfig(order=ORDER, num_vectors=NUM_VECTORS,
                            num_hashes=3, rotation_interval=5.0)


def _bitmap_bytes(bitmap) -> np.ndarray:
    return np.stack([vec.as_numpy() for vec in bitmap.vectors])


# -- writer-side equivalence: epoch rotation == serial rotation --------------


@given(ops=epoch_op_scripts(order=ORDER))
@settings(max_examples=50, deadline=None)
def test_epoch_rotation_matches_serial_bitmap(ops):
    """Any mark/test/rotate interleaving leaves the shared bitmap in the
    exact state the copy-free serial bitmap reaches — bytes, index, epoch,
    test results, and the pre-clear peak-utilization sample."""
    serial = Bitmap(NUM_VECTORS, ORDER)
    shared = SharedBitmap(NUM_VECTORS, ORDER)
    try:
        for kind, indices in ops:
            if kind == "mark":
                serial.mark(indices)
                shared.mark(indices)
            elif kind == "test":
                expected = serial.test_current(indices)
                assert shared.test_current(indices) == expected
                got, epoch = shared.test_current_consistent(indices)
                assert got == expected
                assert epoch == serial.rotations
            else:
                assert shared.rotate() == serial.rotate()
        assert shared.current_index == serial.current_index
        assert shared.rotations == serial.rotations
        assert shared.epoch == serial.rotations
        assert shared.peak_utilization == serial.peak_utilization
        assert np.array_equal(_bitmap_bytes(shared), _bitmap_bytes(serial))
    finally:
        shared.close()


@given(ops=epoch_op_scripts(order=ORDER))
@settings(max_examples=25, deadline=None)
def test_attached_reader_sees_writer_state(ops):
    """An in-process attached reader maps the same bytes the writer
    mutates: after every op the reader's view is byte-identical, and its
    seqlocked reads return the writer's current epoch."""
    writer = SharedBitmap(NUM_VECTORS, ORDER)
    reader = SharedBitmap.attach(writer.name)
    try:
        for kind, indices in ops:
            if kind == "mark":
                writer.mark(indices)
            elif kind == "rotate":
                writer.rotate()
            else:
                got, epoch = reader.test_current_consistent(indices)
                assert got == writer.test_current(indices)
                assert epoch == writer.epoch
        assert np.array_equal(_bitmap_bytes(reader), _bitmap_bytes(writer))
        assert reader.current_index == writer.current_index
        assert reader.epoch == writer.epoch
    finally:
        reader.close()
        writer.close()


# -- the no-retired-epoch and complete-zeroing obligations -------------------


@given(ops=epoch_op_scripts(order=ORDER, max_ops=14))
@settings(max_examples=10, deadline=None)
def test_worker_reads_never_observe_retired_epoch(ops):
    """Cross-process: every seqlocked read a worker answers carries the
    epoch it was consistent with, and that epoch is always the live one —
    a worker can never serve a verdict computed against bits the writer
    has already retired and re-zeroed."""
    with SharedBitmapFilter(CONFIG, PROTECTED, num_workers=2) as filt:
        bitmap = filt.bitmap
        worker = 0
        for kind, indices in ops:
            if kind == "mark":
                bitmap.mark(indices)
            elif kind == "rotate":
                bitmap.rotate()
            else:
                hit, epoch = filt.worker_test_indices(worker, indices)
                assert hit == bitmap.test_current(indices)
                assert epoch == bitmap.epoch
                worker = 1 - worker  # alternate the answering reader
        # Readers observed the final header, not a cached one.
        for w in range(filt.num_workers):
            header = filt.worker_header(w)
            assert header[EPOCH] == bitmap.epoch
            assert header[IDX] == bitmap.current_index
            assert header[SEQ] % 2 == 0


@given(marks=bit_index_arrays(order=ORDER, max_len=64))
@settings(max_examples=10, deadline=None)
def test_rotation_zeroing_is_complete_in_reader_mappings(marks):
    """After k rotations every mark is gone from every slab *as the
    reader processes see them* — zeroing in place is complete, never
    partial, and needs no broadcast to propagate."""
    with SharedBitmapFilter(CONFIG, PROTECTED, num_workers=2) as filt:
        bitmap = filt.bitmap
        bitmap.mark(marks)
        for _ in range(NUM_VECTORS):
            retiring = bitmap.current_index
            bitmap.rotate()
            for w in range(filt.num_workers):
                slab = np.frombuffer(filt.worker_vector(w, retiring),
                                     dtype=np.uint8)
                assert not slab.any(), (
                    f"worker {w} still sees bits in retired slab {retiring}")
        assert bitmap.is_empty()


@given(state=bitmap_snapshot_states(num_vectors=NUM_VECTORS, order=ORDER),
       marks=bit_index_arrays(order=ORDER))
@settings(max_examples=10, deadline=None)
def test_restore_then_rotate_matches_serial(state, marks):
    """apply_snapshot_state() into the shared segment, then rotating out
    of the restored position, is indistinguishable from the serial filter
    doing the same — and the restored bytes are immediately visible to
    the readers without any broadcast."""
    vectors, current_index, rotations = state
    serial = BitmapFilter(CONFIG, PROTECTED)
    with SharedBitmapFilter(CONFIG, PROTECTED, num_workers=2) as shared:
        for filt in (serial, shared):
            filt.apply_snapshot_state(
                vectors.copy(), current_index=current_index,
                bitmap_rotations=rotations, next_rotation=5.0,
                stats={})
        for w in range(shared.num_workers):
            got = np.frombuffer(
                shared.worker_vector(w, current_index), dtype=np.uint8)
            assert np.array_equal(got, vectors[current_index])
            assert shared.worker_epoch(w) == rotations
        serial.bitmap.mark(marks)
        shared.bitmap.mark(marks)
        serial.bitmap.rotate()
        shared.bitmap.rotate()
        assert shared.bitmap.current_index == serial.bitmap.current_index
        assert shared.bitmap.rotations == serial.bitmap.rotations
        assert np.array_equal(_bitmap_bytes(shared.bitmap),
                              _bitmap_bytes(serial.bitmap))
        for w in range(shared.num_workers):
            assert shared.worker_epoch(w) == rotations + 1


# -- seqlock mechanics: tearing is impossible, not just unobserved -----------


def test_read_consistent_waits_out_inflight_write():
    """A reader that samples an odd seqlock word (structural write in
    flight) must retry rather than return — the direct mechanism behind
    the no-retired-epoch property."""
    writer = SharedBitmap(NUM_VECTORS, ORDER)
    reader = SharedBitmap.attach(writer.name)
    try:
        indices = np.array([1, 2, 3], dtype=np.uint64)
        writer.mark(indices)
        writer._header[SEQ] += 1  # enter a write section by hand
        results = []
        thread = threading.Thread(
            target=lambda: results.append(
                reader.test_current_consistent(indices)))
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive(), "reader returned during an in-flight write"
        # Completing the "write" releases the reader with consistent state.
        writer._header[EPOCH] += 1
        writer._header[IDX] = (writer._header[IDX] + 1) % NUM_VECTORS
        writer._vectors[0].clear()
        writer._header[SEQ] += 1
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        (hit, epoch), = results
        # The read is consistent with the *post*-write world only.
        assert epoch == writer.epoch
        assert hit == writer.test_current(indices)
    finally:
        reader.close()
        writer.close()


def test_concurrent_rotations_never_tear_reads():
    """A writer thread rotating and marking at full speed while this
    thread hammers seqlocked reads: every read must return an epoch that
    was live at some instant of the read (monotonic, within the writer's
    progress), never a half-cleared slab.  Marks always target the
    current vector, so a consistent read of epoch e either sees the mark
    made in e or a fully-zeroed slab from a later epoch — a torn read
    would surface as a hit count dividing the mark."""
    writer = SharedBitmap(NUM_VECTORS, ORDER)
    reader = SharedBitmap.attach(writer.name)
    stop = threading.Event()
    probe = np.array([7, 99, 431], dtype=np.uint64)

    def churn():
        while not stop.is_set():
            writer.mark(probe)
            writer.rotate()

    thread = threading.Thread(target=churn)
    thread.start()
    try:
        last_epoch = 0
        for _ in range(2000):
            (hit, epoch) = reader.test_current_consistent(probe)
            assert epoch >= last_epoch, "epoch went backwards"
            last_epoch = epoch
            assert isinstance(hit, bool)
    finally:
        stop.set()
        thread.join(timeout=10.0)
        reader.close()
        writer.close()
    assert last_epoch > 0, "writer never rotated; stress test was idle"


# -- attach validation -------------------------------------------------------


def test_attach_validates_geometry():
    writer = SharedBitmap(NUM_VECTORS, ORDER)
    try:
        writer._header[6] = 1  # corrupt the stored k
        with pytest.raises(ValueError, match="does not hold a shared bitmap"):
            SharedBitmap.attach(writer.name)
    finally:
        writer.close()


def test_attach_unknown_name_raises():
    with pytest.raises(FileNotFoundError):
        SharedBitmap.attach("repro-bitmap-does-not-exist")
