"""Tests for repro.core.apd — adaptive packet dropping (Section 5.3)."""

import pytest

from repro.core.apd import (
    AdaptiveDroppingPolicy,
    BandwidthIndicator,
    PacketRatioIndicator,
    SlidingWindowCounter,
    classify_signal_packet,
)
from repro.net.packet import Packet, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP


def _pkt(ts=0.0, proto=IPPROTO_TCP, flags=TcpFlags.NONE, size=500):
    return Packet(ts=ts, proto=proto, src=1, sport=2, dst=3, dport=4,
                  flags=flags, size=size)


class TestSignalClassification:
    """The Section 5.3 marking table."""

    @pytest.mark.parametrize("flags", [
        TcpFlags.SYN | TcpFlags.ACK,
        TcpFlags.FIN | TcpFlags.ACK,
        TcpFlags.RST,
        TcpFlags.RST | TcpFlags.ACK,
    ])
    def test_non_marking_signals(self, flags):
        assert classify_signal_packet(IPPROTO_TCP, flags) is True

    @pytest.mark.parametrize("flags", [
        TcpFlags.SYN,                        # lone SYN marks (exception)
        TcpFlags.FIN,                        # lone FIN marks (exception)
        TcpFlags.ACK,                        # data/ack marks
        TcpFlags.PSH | TcpFlags.ACK,
        TcpFlags.NONE,
    ])
    def test_marking_packets(self, flags):
        assert classify_signal_packet(IPPROTO_TCP, flags) is False

    def test_udp_always_marks(self):
        assert classify_signal_packet(IPPROTO_UDP, TcpFlags.NONE) is False


class TestSlidingWindowCounter:
    def test_accumulates_within_window(self):
        counter = SlidingWindowCounter(window=10.0)
        counter.add(0.0, 5)
        counter.add(1.0, 3)
        assert counter.total(1.0) == 8

    def test_expires_old_bins(self):
        counter = SlidingWindowCounter(window=5.0)
        counter.add(0.0, 10)
        counter.add(20.0, 1)
        assert counter.total(20.0) == 1

    def test_rate(self):
        counter = SlidingWindowCounter(window=10.0)
        for t in range(10):
            counter.add(float(t), 2)
        assert counter.rate(9.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowCounter(window=0)


class TestBandwidthIndicator:
    def test_idle_link_low_probability(self):
        indicator = BandwidthIndicator(link_capacity_bps=1e6, window=1.0)
        indicator.observe_incoming(_pkt(ts=0.0, size=100))
        assert indicator.drop_probability() < 0.01

    def test_saturated_link_high_probability(self):
        indicator = BandwidthIndicator(link_capacity_bps=1e6, window=1.0)
        # 1 Mbps capacity; push ~2 Mbps of traffic.
        for i in range(200):
            indicator.observe_incoming(_pkt(ts=i * 0.005, size=1250))
        assert indicator.drop_probability() == 1.0

    def test_probability_tracks_utilization(self):
        indicator = BandwidthIndicator(link_capacity_bps=1e6, window=1.0)
        # ~0.5 Mbps on a 1 Mbps link.
        for i in range(50):
            indicator.observe_incoming(_pkt(ts=i * 0.02, size=1250))
        assert 0.3 < indicator.drop_probability() < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthIndicator(link_capacity_bps=0)


class TestPacketRatioIndicator:
    def _push(self, indicator, n_out, n_in, t0=0.0):
        for i in range(n_out):
            indicator.observe_outgoing(_pkt(ts=t0 + i * 0.001))
        for i in range(n_in):
            indicator.observe_incoming(_pkt(ts=t0 + i * 0.001))

    def test_balanced_traffic_no_drops(self):
        indicator = PacketRatioIndicator(low=1.5, high=4.0)
        self._push(indicator, 100, 100)
        assert indicator.drop_probability() == 0.0

    def test_flood_saturates(self):
        indicator = PacketRatioIndicator(low=1.5, high=4.0)
        self._push(indicator, 100, 1000)
        assert indicator.drop_probability() == 1.0

    def test_linear_between_thresholds(self):
        indicator = PacketRatioIndicator(low=1.0, high=3.0)
        self._push(indicator, 100, 200)  # r = 2.0 -> p = 0.5
        assert indicator.drop_probability() == pytest.approx(0.5)

    def test_no_outgoing_traffic(self):
        indicator = PacketRatioIndicator()
        self._push(indicator, 0, 10)
        assert indicator.ratio() == float("inf")
        assert indicator.drop_probability() == 1.0

    def test_silence_is_safe(self):
        indicator = PacketRatioIndicator()
        assert indicator.ratio() == 0.0
        assert indicator.drop_probability() == 0.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PacketRatioIndicator(low=4.0, high=4.0)


class TestAdaptiveDroppingPolicy:
    def test_should_drop_follows_probability(self):
        class Fixed:
            def __init__(self, p):
                self.p = p

            def observe_outgoing(self, pkt):
                pass

            def observe_incoming(self, pkt):
                pass

            def drop_probability(self):
                return self.p

        always = AdaptiveDroppingPolicy(Fixed(1.0), seed=1)
        assert all(always.should_drop() for _ in range(50))
        never = AdaptiveDroppingPolicy(Fixed(0.0), seed=1)
        assert not any(never.should_drop() for _ in range(50))
        half = AdaptiveDroppingPolicy(Fixed(0.5), seed=1)
        outcomes = [half.should_drop() for _ in range(2000)]
        assert 0.4 < sum(outcomes) / len(outcomes) < 0.6

    def test_stats_track_outcomes(self):
        policy = AdaptiveDroppingPolicy(PacketRatioIndicator(), seed=0)
        policy.should_drop()
        assert policy.stats.admitted + policy.stats.dropped == 1

    def test_should_mark_uses_signal_policy(self):
        policy = AdaptiveDroppingPolicy(PacketRatioIndicator())
        synack = _pkt(flags=TcpFlags.SYN | TcpFlags.ACK)
        assert not policy.should_mark(synack)
        assert policy.should_mark(_pkt(flags=TcpFlags.SYN))

    def test_signal_policy_can_be_disabled(self):
        policy = AdaptiveDroppingPolicy(PacketRatioIndicator(), signal_policy=False)
        synack = _pkt(flags=TcpFlags.SYN | TcpFlags.ACK)
        assert policy.should_mark(synack)
