"""Tests for repro.core.parameters — Equations (1)-(5) and the advisor."""

import math

import pytest

from repro.core.parameters import (
    BitmapParameters,
    ParameterAdvisor,
    expected_utilization,
    insider_utilization_increase,
    max_supported_connections,
    memory_bytes,
    optimal_num_hashes,
    penetration_probability,
    penetration_probability_for_load,
    required_order,
)


class TestEquation1:
    def test_penetration_is_u_to_the_m(self):
        assert penetration_probability(0.5, 3) == pytest.approx(0.125)
        assert penetration_probability(0.1, 2) == pytest.approx(0.01)

    def test_zero_and_full_utilization(self):
        assert penetration_probability(0.0, 3) == 0.0
        assert penetration_probability(1.0, 3) == 1.0

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            penetration_probability(1.5, 3)
        with pytest.raises(ValueError):
            penetration_probability(0.5, 0)


class TestEquation2:
    def test_linear_utilization(self):
        # c=1000, m=3, n=14: U = 3000/16384.
        assert expected_utilization(1000, 3, 14) == pytest.approx(3000 / 16384)

    def test_utilization_capped_at_one(self):
        assert expected_utilization(10**9, 3, 10) == 1.0

    def test_exact_occupancy_below_linear(self):
        linear = expected_utilization(4000, 3, 14)
        exact = expected_utilization(4000, 3, 14, exact=True)
        assert exact < linear

    def test_penetration_for_load(self):
        p = penetration_probability_for_load(1000, 3, 14)
        assert p == pytest.approx((3000 / 16384) ** 3)

    def test_negative_connections_rejected(self):
        with pytest.raises(ValueError):
            expected_utilization(-1, 3, 14)


class TestEquation4:
    def test_optimal_m_formula(self):
        # m* = 2^n / (e*c)
        m = optimal_num_hashes(20, 15_000, integral=False)
        assert m == pytest.approx((1 << 20) / (math.e * 15_000))

    def test_integral_at_least_one(self):
        assert optimal_num_hashes(10, 10**6) == 1.0

    def test_integral_picks_better_neighbour(self):
        m_star = optimal_num_hashes(14, 1500, integral=False)
        m = int(optimal_num_hashes(14, 1500))
        assert m in (math.floor(m_star), math.ceil(m_star))
        # The chosen integer beats the other neighbour.
        other = math.floor(m_star) if m == math.ceil(m_star) else math.ceil(m_star)
        if other >= 1:
            assert penetration_probability_for_load(1500, m, 14) <= (
                penetration_probability_for_load(1500, other, 14)
            )

    def test_optimum_is_a_minimum(self):
        """Eq. (2) is worse on both sides of the Eq. (4) optimum."""
        c, n = 1500, 14
        m_star = optimal_num_hashes(n, c, integral=False)
        at = penetration_probability_for_load(c, m_star, n)
        assert penetration_probability_for_load(c, m_star * 2, n) > at
        assert penetration_probability_for_load(c, m_star / 2, n) > at

    def test_rejects_nonpositive_connections(self):
        with pytest.raises(ValueError):
            optimal_num_hashes(20, 0)


class TestEquation5:
    """Section 4.1's worked capacities: 167K / 125K / 83K at n=20."""

    def test_capacity_10_percent(self):
        assert max_supported_connections(20, 0.10) == pytest.approx(167_000, rel=0.01)

    def test_capacity_5_percent(self):
        assert max_supported_connections(20, 0.05) == pytest.approx(128_000, rel=0.03)

    def test_capacity_1_percent(self):
        assert max_supported_connections(20, 0.01) == pytest.approx(83_700, rel=0.01)

    def test_paper_trace_load_is_far_below_capacity(self):
        """The paper's 15K active connections sit well under every bound."""
        for target in (0.10, 0.05, 0.01):
            assert max_supported_connections(20, target) > 15_000

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            max_supported_connections(20, 0.0)
        with pytest.raises(ValueError):
            max_supported_connections(20, 1.0)

    def test_required_order_inverts_capacity(self):
        order = required_order(15_000, 0.01)
        assert max_supported_connections(order, 0.01) >= 15_000
        assert max_supported_connections(order - 1, 0.01) < 15_000


class TestMemory:
    def test_paper_memory(self):
        """Section 4.1: (k * 2^n)/8 = 512K bytes for k=4, n=20."""
        assert memory_bytes(4, 20) == 512 * 1024

    def test_table1_bitmap_memory(self):
        assert memory_bytes(4, 24) == 8 * 1024 * 1024

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            memory_bytes(0, 20)


class TestInsiderFormula:
    def test_formula(self):
        # dU = m*r*Te / 2^n
        assert insider_utilization_increase(1000, 3, 20, 20.0) == pytest.approx(
            3 * 1000 * 20 / 2**20
        )

    def test_capped_at_one(self):
        assert insider_utilization_increase(10**9, 3, 10, 20.0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            insider_utilization_increase(-1, 3, 20, 20.0)


class TestBitmapParameters:
    def test_derived_values(self):
        params = BitmapParameters(order=20, num_vectors=4, num_hashes=3,
                                  rotation_interval=5.0, expected_connections=15_000)
        assert params.expiry_timer == 20.0
        assert params.memory_bytes == 512 * 1024
        assert params.utilization == pytest.approx(45_000 / 2**20)
        assert params.penetration == pytest.approx((45_000 / 2**20) ** 3)

    def test_describe_mentions_shape(self):
        params = BitmapParameters(20, 4, 3, 5.0, 15_000)
        assert "{4 x 20}" in params.describe()


class TestParameterAdvisor:
    def test_num_vectors_from_timers(self):
        assert ParameterAdvisor(expiry_timer=20.0, rotation_interval=5.0).num_vectors() == 4
        assert ParameterAdvisor(expiry_timer=21.0, rotation_interval=5.0).num_vectors() == 5

    def test_recommendation_meets_target(self):
        advisor = ParameterAdvisor(expiry_timer=20.0, rotation_interval=5.0)
        params = advisor.recommend(expected_connections=15_000, target_penetration=0.01)
        assert params.penetration <= 0.01
        assert params.num_vectors == 4

    def test_recommendation_is_minimal_memory(self):
        advisor = ParameterAdvisor(expiry_timer=20.0, rotation_interval=5.0)
        params = advisor.recommend(expected_connections=15_000, target_penetration=0.01)
        smaller = params.order - 1
        # No m up to the cap meets the target at the next-smaller n.
        assert all(
            penetration_probability_for_load(15_000, m, smaller) > 0.01
            for m in range(1, 9)
        )

    def test_recommendation_for_paper_load_fits_in_1mb(self):
        """The abstract's claim: <1 MB filters >95% of attack traffic."""
        advisor = ParameterAdvisor(expiry_timer=20.0, rotation_interval=5.0)
        params = advisor.recommend(expected_connections=15_000, target_penetration=0.05)
        assert params.memory_bytes < 1024 * 1024

    def test_capacity_table_shape(self):
        advisor = ParameterAdvisor()
        rows = advisor.capacity_table(20, [0.10, 0.01])
        assert len(rows) == 2
        assert rows[0]["max_connections"] > rows[1]["max_connections"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterAdvisor(expiry_timer=-1)
        with pytest.raises(ValueError):
            ParameterAdvisor(expiry_timer=5.0, rotation_interval=10.0)
        with pytest.raises(ValueError):
            ParameterAdvisor().recommend(expected_connections=0)
