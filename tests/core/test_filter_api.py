"""Tests for the unified PacketFilter protocol and FilterConfig.

Every admission filter in the repository — the bitmap filter, the
close-aware wrapper, all three SPI baselines, and the rate-limit
baseline — must satisfy the :class:`PacketFilter` protocol and agree
between its directional methods and the generic entry points.
"""

import json
import warnings
from dataclasses import FrozenInstanceError, asdict

import pytest

from repro.baselines.throttle import AggregateRateLimiter
from repro.core.bitmap_filter import (
    BitmapFilter,
    BitmapFilterConfig,
    Decision,
    FilterConfig,
)
from repro.core.close_aware import CloseAwareBitmapFilter
from repro.core.filter_api import PacketFilter, PacketFilterMixin
from repro.core.resilience import FailPolicy
from repro.net.packet import PacketArray
from repro.spi.avltree import AvlTreeFilter
from repro.spi.hashlist import HashListFilter
from repro.spi.naive import NaiveExactFilter
from tests.conftest import make_reply, make_request


def all_filters(small_config, protected):
    return [
        BitmapFilter(small_config, protected),
        CloseAwareBitmapFilter(small_config, protected),
        NaiveExactFilter(protected),
        HashListFilter(protected),
        AvlTreeFilter(protected),
        AggregateRateLimiter(protected, trigger_pps=1e9, limit_pps=1e9),
    ]


class TestProtocolConformance:
    def test_every_filter_satisfies_protocol(self, small_config, protected):
        for filt in all_filters(small_config, protected):
            assert isinstance(filt, PacketFilter), type(filt).__name__

    def test_non_filters_rejected(self):
        assert not isinstance(object(), PacketFilter)

    def test_directional_methods_agree_with_process(
        self, small_config, protected, client_addr, server_addr
    ):
        for filt in all_filters(small_config, protected):
            request = make_request(1.0, client_addr, server_addr)
            filt.observe_out(request)
            assert filt.admit_in(make_reply(request, 1.5)) is True
            never_sent = make_request(1.0, client_addr, server_addr,
                                      sport=9123)
            admitted = filt.admit_in(make_reply(never_sent, 2.0))
            # Everything except the rate limiter is stateful and drops.
            if not isinstance(filt, AggregateRateLimiter):
                assert admitted is False, type(filt).__name__

    def test_batch_methods_agree_with_process_batch(
        self, small_config, protected, client_addr, server_addr
    ):
        requests = [make_request(1.0 + i, client_addr, server_addr,
                                 sport=5000 + i) for i in range(4)]
        replies = [make_reply(r, 2.0 + i) for i, r in enumerate(requests)]
        out_batch = PacketArray.from_packets(requests)
        in_batch = PacketArray.from_packets(replies)
        for filt in all_filters(small_config, protected):
            filt.observe_out_batch(out_batch)
            mask = filt.admit_in_batch(in_batch)
            assert mask.tolist() == [True] * 4, type(filt).__name__

    def test_process_batch_accepts_exact_keyword(self, small_config,
                                                 protected, client_addr,
                                                 server_addr):
        pkt = make_request(1.0, client_addr, server_addr)
        batch = PacketArray.from_packets([pkt])
        for filt in all_filters(small_config, protected):
            for exact in (True, False):
                mask = filt.process_batch(batch, exact=exact)
                assert len(mask) == 1

    def test_mixin_derives_from_process(self):
        calls = []

        class Fake(PacketFilterMixin):
            def process(self, pkt):
                calls.append(pkt)
                return Decision.PASS

            def process_batch(self, packets, exact=True):
                import numpy as np
                return np.ones(len(packets), dtype=bool)

        fake = Fake()
        fake.observe_out("p1")
        assert fake.admit_in("p2") is True
        assert calls == ["p1", "p2"]
        assert isinstance(fake, PacketFilter)


class TestProcessArrayRemoved:
    def test_shims_are_gone(self, small_config, protected):
        """The ``process_array`` deprecation shims completed their cycle:
        the name no longer exists on any filter class."""
        for filt in all_filters(small_config, protected):
            assert not hasattr(filt, "process_array"), type(filt).__name__

    def test_canonical_name_does_not_warn(self, protected, client_addr,
                                          server_addr):
        batch = PacketArray.from_packets(
            [make_request(1.0, client_addr, server_addr)])
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            NaiveExactFilter(protected).process_batch(batch)


class TestFilterConfig:
    def test_defaults_match_paper(self):
        cfg = FilterConfig.paper_default()
        assert (cfg.order, cfg.num_vectors, cfg.num_hashes) == (20, 4, 3)
        assert cfg.rotation_interval == 5.0
        assert cfg.fail_policy is FailPolicy.FAIL_CLOSED
        assert cfg.expiry_timer == 20.0
        assert cfg.guaranteed_window == 15.0
        assert cfg.memory_bytes == 4 * (1 << 20) // 8

    def test_frozen_and_keyword_only(self):
        cfg = FilterConfig()
        with pytest.raises(FrozenInstanceError):
            cfg.order = 12
        with pytest.raises(TypeError):
            FilterConfig(12)  # positional geometry is not allowed

    def test_validation(self):
        with pytest.raises(ValueError):
            FilterConfig(rotation_interval=0)
        with pytest.raises(ValueError):
            FilterConfig(num_hashes=0)
        with pytest.raises(ValueError):
            FilterConfig(warmup_grace=-1.0)

    def test_round_trip_with_bitmap_config(self, small_config):
        lifted = FilterConfig.from_bitmap_config(
            small_config, fail_policy=FailPolicy.FAIL_OPEN, warmup_grace=7.5)
        assert lifted.order == small_config.order
        assert lifted.fail_policy is FailPolicy.FAIL_OPEN
        assert lifted.bitmap_config() == small_config

    def test_from_config_constructor(self, protected):
        cfg = FilterConfig(order=12, num_vectors=4, rotation_interval=2.0,
                           fail_policy=FailPolicy.FAIL_OPEN,
                           warmup_grace=6.0)
        filt = BitmapFilter.from_config(cfg, protected)
        assert filt.fail_policy is FailPolicy.FAIL_OPEN
        assert filt.in_warmup(5.9)
        assert not filt.in_warmup(6.1)
        # The stored config stays the plain persistable geometry view.
        assert isinstance(filt.config, BitmapFilterConfig)
        json.dumps(asdict(filt.config))  # persistence requires JSON-safe

    def test_bare_field_construction(self, protected):
        filt = BitmapFilter(protected=protected, order=12,
                            rotation_interval=2.0)
        assert filt.config.order == 12
        assert filt.config.rotation_interval == 2.0

    def test_config_object_plus_fields_rejected(self, small_config,
                                                protected):
        with pytest.raises(TypeError):
            BitmapFilter(small_config, protected, order=12)

    def test_legacy_positional_config_still_works(self, small_config,
                                                  protected):
        filt = BitmapFilter(small_config, protected)
        assert filt.config is small_config
        assert filt.fail_policy is FailPolicy.FAIL_CLOSED
