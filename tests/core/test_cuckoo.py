"""Unit tests for the exact cuckoo flow table (the verification tier).

The table's one-line contract: a key inserted at ``t`` is found by any
lookup in ``[t, t + lifetime)`` and by none after, exactly — no false
positives ever, no false negatives while live.  Everything else here
(growth, kicking, the ``gc_now`` clock, snapshots) exists to keep that
contract under pressure.
"""

import numpy as np
import pytest

from repro.core.cuckoo import CuckooFlowTable, pack_flow, pack_flows_vec

pytestmark = pytest.mark.core


def key(i: int):
    """A distinct directional flow key per index."""
    return pack_flow(6, 0xAC100000 + i, 10_000 + (i % 40_000), 0x08080000 + i)


class TestPacking:
    def test_pack_flow_is_injective_on_fields(self):
        seen = {pack_flow(6, 1, 2, 3), pack_flow(17, 1, 2, 3),
                pack_flow(6, 9, 2, 3), pack_flow(6, 1, 9, 3),
                pack_flow(6, 1, 2, 9)}
        assert len(seen) == 5

    def test_vectorized_matches_scalar(self):
        proto = np.array([6, 17, 6], dtype=np.uint8)
        laddr = np.array([0xAC100001, 0xAC100002, 0xFFFFFFFF], dtype=np.uint32)
        lport = np.array([80, 443, 65535], dtype=np.uint16)
        raddr = np.array([0x08080808, 0x01010101, 0], dtype=np.uint32)
        lo, hi = pack_flows_vec(proto, laddr, lport, raddr)
        for i in range(3):
            slo, shi = pack_flow(int(proto[i]), int(laddr[i]),
                                 int(lport[i]), int(raddr[i]))
            assert (int(lo[i]), int(hi[i])) == (slo, shi)


class TestExactness:
    def test_insert_then_contains(self):
        table = CuckooFlowTable(order=4, lifetime=10.0)
        lo, hi = key(1)
        assert not table.contains(lo, hi, 0.0)
        table.insert(lo, hi, 1.0)
        assert table.contains(lo, hi, 1.0)
        assert table.contains(lo, hi, 10.9)       # still inside lifetime
        assert not table.contains(lo, hi, 11.1)   # expired
        other = key(2)
        assert not table.contains(other[0], other[1], 1.0)

    def test_refresh_extends_lifetime_without_duplicating(self):
        table = CuckooFlowTable(order=4, lifetime=10.0)
        lo, hi = key(3)
        table.insert(lo, hi, 0.0)
        table.insert(lo, hi, 8.0)
        assert table.occupancy == 1
        assert table.refreshes == 1
        assert table.contains(lo, hi, 17.0)       # lives from the refresh

    def test_no_false_positives_under_load(self):
        """Fill well past several doublings, then probe disjoint keys —
        an exact table never confabulates membership."""
        table = CuckooFlowTable(order=4, lifetime=100.0)
        for i in range(2000):
            lo, hi = key(i)
            table.insert(lo, hi, float(i) * 0.01)
        for i in range(2000):
            lo, hi = key(i)
            assert table.contains(lo, hi, 20.0), i
        probe = [key(100_000 + i) for i in range(2000)]
        lo = np.array([p[0] for p in probe], dtype=np.uint64)
        hi = np.array([p[1] for p in probe], dtype=np.uint64)
        assert not table.contains_batch(lo, hi, np.full(2000, 20.0)).any()

    def test_batch_paths_match_scalar(self):
        table_s = CuckooFlowTable(order=5, lifetime=30.0)
        table_b = CuckooFlowTable(order=5, lifetime=30.0)
        keys = [key(i % 300) for i in range(1500)]
        ts = np.linspace(0.0, 25.0, 1500)
        for (lo, hi), t in zip(keys, ts.tolist()):
            table_s.insert(lo, hi, t)
        lo = np.array([k[0] for k in keys], dtype=np.uint64)
        hi = np.array([k[1] for k in keys], dtype=np.uint64)
        table_b.insert_batch(lo, hi, ts)
        assert table_b.state_digest() == table_s.state_digest()
        got = table_b.contains_batch(lo, hi, np.full(1500, 26.0))
        want = np.array([table_s.contains(int(l), int(h), 26.0)
                         for l, h in keys])
        assert np.array_equal(got, want)

    def test_lookups_never_mutate(self):
        table = CuckooFlowTable(order=4, lifetime=10.0)
        for i in range(40):
            lo, hi = key(i)
            table.insert(lo, hi, 0.5)
        before = table.state_digest()
        for i in range(80):
            lo, hi = key(i)
            table.contains(lo, hi, 5.0)
            table.contains(lo, hi, 50.0)
        assert table.state_digest() == before


class TestGrowthAndPressure:
    def test_grows_under_utilization(self):
        table = CuckooFlowTable(order=3, lifetime=1e9, max_order=10)
        start = table.capacity
        for i in range(300):
            lo, hi = key(i)
            table.insert(lo, hi, 1.0)
        assert table.capacity > start
        assert table.grows >= 1
        assert table.grow_causes["utilization"] >= 1
        for i in range(300):        # every key survives the rehash exactly
            lo, hi = key(i)
            assert table.contains(lo, hi, 1.5), i

    def test_purge_before_grow_reclaims_expired(self):
        """Expired entries are collected in place, so churn at steady state
        never grows the table."""
        table = CuckooFlowTable(order=4, lifetime=5.0, max_order=20)
        for gen in range(40):
            t = gen * 10.0          # every generation fully expires the last
            for i in range(40):
                lo, hi = key(i + 1000 * gen)
                table.insert(lo, hi, t)
        assert table.grows == 0

    def test_max_order_overwrites_stalest(self):
        table = CuckooFlowTable(order=2, slots_per_bucket=1,
                                lifetime=1e9, max_order=2, grow_at=1.0)
        for i in range(200):
            lo, hi = key(i)
            table.insert(lo, hi, float(i))
        assert table.grows == 0
        assert table.overwrites > 0
        assert table.occupancy <= table.capacity

    def test_grow_for_pressure_external_trigger(self):
        table = CuckooFlowTable(order=4, max_order=5)
        assert table.grow_for_pressure(0.0) is True
        assert table.order == 5
        assert table.grow_for_pressure(0.0) is False   # ceiling
        assert table.grow_causes["fpr"] == 1


class TestGcClock:
    def test_late_stamp_does_not_evict_live_entries(self):
        """A batch replay inserts with stamps far in the future of the
        lookups still pending for the same window; ``gc_now`` pins the
        collection clock so those lookups still see their entries."""
        table = CuckooFlowTable(order=2, slots_per_bucket=1, lifetime=5.0,
                                max_order=8, grow_at=1.0)
        early = [key(i) for i in range(6)]
        for lo, hi in early:
            table.insert(lo, hi, 0.0, gc_now=0.0)
        # Late-stamped inserts, GC clock held at the window start: nothing
        # live at t=0 may be reclaimed to make room.
        for i in range(6, 40):
            lo, hi = key(i)
            table.insert(lo, hi, 1000.0, gc_now=0.0)
        for lo, hi in early:
            assert table.contains(lo, hi, 0.1)

    def test_default_gc_now_is_the_stamp(self):
        """Scalar inserts collect relative to their own timestamp — the
        entry inserted at t=0 with lifetime 5 is fair game at t=1000."""
        table = CuckooFlowTable(order=2, slots_per_bucket=1, lifetime=5.0,
                                max_order=2, grow_at=1.0)
        lo0, hi0 = key(0)
        table.insert(lo0, hi0, 0.0)
        occupied_before = table.occupancy
        for i in range(1, 30):
            lo, hi = key(i)
            table.insert(lo, hi, 1000.0)
        assert not table.contains(lo0, hi0, 1000.0)
        assert table.occupancy <= table.capacity
        assert occupied_before <= table.capacity

    def test_gc_now_never_exceeds_stamp(self):
        """gc_now is clamped to min(gc_now, ts): passing a *later* clock
        must not let an insert collect entries its own stamp considers
        live."""
        table = CuckooFlowTable(order=2, slots_per_bucket=1, lifetime=5.0,
                                max_order=2, grow_at=1.0)
        lo0, hi0 = key(0)
        table.insert(lo0, hi0, 0.0)
        lo1, hi1 = key(1)
        table.insert(lo1, hi1, 1.0, gc_now=1e6)   # clamped to ts=1.0
        assert table.contains(lo0, hi0, 0.5)


class TestSnapshotAndCopy:
    def _populated(self):
        table = CuckooFlowTable(order=4, lifetime=20.0)
        for i in range(200):
            lo, hi = key(i)
            table.insert(lo, hi, float(i % 7))
        return table

    def test_export_restore_round_trip(self):
        table = self._populated()
        arrays, meta = table.export_state()
        clone = CuckooFlowTable.from_state(arrays, meta)
        assert clone.state_digest() == table.state_digest()
        assert clone.occupancy == table.occupancy
        assert clone.capacity == table.capacity
        for i in range(200):
            lo, hi = key(i)
            assert clone.contains(lo, hi, 6.5) == table.contains(lo, hi, 6.5)

    def test_from_state_rejects_shape_mismatch(self):
        arrays, meta = self._populated().export_state()
        arrays["cuckoo_stamp"] = arrays["cuckoo_stamp"][:4]
        with pytest.raises(ValueError, match="shape"):
            CuckooFlowTable.from_state(arrays, meta)

    def test_copy_is_independent(self):
        table = self._populated()
        clone = table.copy()
        assert clone.state_digest() == table.state_digest()
        assert clone.counters() == table.counters()
        lo, hi = key(9999)
        clone.insert(lo, hi, 1.0)
        assert not table.contains(lo, hi, 1.0)
        assert clone.state_digest() != table.state_digest()


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"order": 1}, {"order": 29},
        {"order": 8, "max_order": 7}, {"slots_per_bucket": 0},
        {"lifetime": 0.0}, {"grow_at": 0.0}, {"grow_at": 1.5},
    ])
    def test_bad_geometry_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CuckooFlowTable(**kwargs)

    def test_memory_accounting(self):
        table = CuckooFlowTable(order=4, slots_per_bucket=4)
        assert table.memory_bytes == (1 << 4) * 4 * 24
