"""Deterministic verification of Table 1's complexity columns via op counts."""

import pytest

from repro.core.costmodel import (
    CountingAvlTree,
    CountingBitmap,
    CountingFlowTable,
    OpCounts,
    profile_structures,
)
from repro.spi.base import FlowState


@pytest.fixture(scope="module")
def profiles():
    return profile_structures(populations=(1_000, 4_000, 16_000), probes=500)


class TestOpCounts:
    def test_per_op(self):
        counts = OpCounts(hash_evaluations=100, memory_reads=300)
        per = counts.per_op(100)
        assert per.hash_evaluations == 1
        assert per.memory_reads == 3

    def test_per_op_validation(self):
        with pytest.raises(ValueError):
            OpCounts().per_op(0)

    def test_total(self):
        assert OpCounts(1, 2, 3, 4, 5).total == 15


class TestBitmapIsConstantTime:
    def test_insert_ops_independent_of_population(self, profiles):
        series = profiles["bitmap filter"]
        inserts = [p.insert.total for p in series]
        assert len(set(inserts)) == 1, inserts

    def test_lookup_ops_independent_of_population(self, profiles):
        series = profiles["bitmap filter"]
        lookups = [p.lookup.total for p in series]
        assert len(set(lookups)) == 1, lookups

    def test_exact_op_budget(self):
        """m=3, k=4: mark = 1 hash + 12 writes; lookup = 1 hash + 3 reads."""
        bitmap = CountingBitmap(4, 16, 3)
        bitmap.mark((6, 1, 2, 3))
        assert bitmap.counts.hash_evaluations == 1
        assert bitmap.counts.memory_writes == 12
        bitmap.counts = OpCounts()
        bitmap.lookup((6, 1, 2, 3))
        assert bitmap.counts.memory_reads == 3

    def test_rotation_cost_is_fixed_memset(self, profiles):
        series = profiles["bitmap filter"]
        gcs = [p.gc.memory_writes for p in series]
        assert len(set(gcs)) == 1
        assert gcs[0] == (1 << 20) // 64  # 2^n bits / word size


class TestHashListComplexity:
    def test_gc_visits_every_state(self, profiles):
        series = profiles["hash+link-list"]
        for profile in series:
            # GC dereferences all bucket heads + one per kept node.
            assert profile.gc.pointer_derefs >= profile.population

    def test_gc_grows_linearly_in_ops(self, profiles):
        series = profiles["hash+link-list"]
        small, large = series[0], series[-1]
        read_growth = large.gc.memory_reads / small.gc.memory_reads
        assert read_growth == pytest.approx(16.0, rel=0.35)

    def test_lookup_ops_grow_with_load(self, profiles):
        """Chains lengthen once flows outnumber buckets' comfort zone."""
        series = profiles["hash+link-list"]
        assert series[-1].lookup.key_comparisons >= series[0].lookup.key_comparisons

    def test_insert_is_cheap_when_chains_short(self):
        table = CountingFlowTable(num_buckets=16384)
        table.insert((6, 1, 2, 3, 4), FlowState(1e18))
        assert table.counts.hash_evaluations == 1
        assert table.counts.key_comparisons == 0  # empty chain


class TestAvlComplexity:
    def test_lookup_grows_logarithmically(self, profiles):
        """16x more keys -> ~+4 comparisons per lookup, not 16x."""
        series = profiles["AVL-tree"]
        small = series[0].lookup.key_comparisons
        large = series[-1].lookup.key_comparisons
        assert large > small
        assert large < small * 2  # log growth, nowhere near linear

    def test_path_length_near_log2(self):
        import math

        tree = CountingAvlTree()
        for i in range(4096):
            tree.insert((6, i, 0, 0, 0), FlowState(1e18))
        tree.counts = OpCounts()
        tree.lookup((6, 2048, 0, 0, 0))
        depth = tree.counts.pointer_derefs
        assert depth <= 1.44 * math.log2(4096) + 2

    def test_gc_visits_every_node(self, profiles):
        series = profiles["AVL-tree"]
        for profile in series:
            # The tree holds population + 500 probe keys when GC runs.
            assert profile.gc.memory_reads == profile.population + 500


class TestCrossStructure:
    def test_bitmap_gc_cheapest_at_scale(self, profiles):
        bitmap_gc = profiles["bitmap filter"][-1].gc.total
        hash_gc = profiles["hash+link-list"][-1].gc.total
        avl_gc = profiles["AVL-tree"][-1].gc.total
        # n=20 memset = 16K word writes vs 16K flows -> ~32-48K ops for SPI.
        assert bitmap_gc < hash_gc
        assert bitmap_gc < avl_gc

    def test_bitmap_lookup_fewest_memory_touches(self, profiles):
        bitmap = profiles["bitmap filter"][-1].lookup
        avl = profiles["AVL-tree"][-1].lookup
        assert bitmap.total < avl.total
