"""Tests for repro.core.bitvector."""

import numpy as np
import pytest

from repro.core.bitvector import BitVector


class TestBasics:
    def test_starts_empty(self):
        vec = BitVector(10)
        assert vec.count() == 0
        assert not vec.any()
        assert vec.num_bits == 1024
        assert vec.num_bytes == 128
        assert len(vec) == 1024

    def test_set_and_test(self):
        vec = BitVector(8)
        vec.set(0)
        vec.set(7)
        vec.set(255)
        assert vec.test(0)
        assert vec.test(7)
        assert vec.test(255)
        assert not vec.test(1)
        assert vec.count() == 3

    def test_set_idempotent(self):
        vec = BitVector(8)
        vec.set(42)
        vec.set(42)
        assert vec.count() == 1

    def test_getitem_bounds_checked(self):
        vec = BitVector(8)
        with pytest.raises(IndexError):
            vec[256]
        assert vec[0] is False

    def test_order_bounds(self):
        with pytest.raises(ValueError):
            BitVector(2)
        with pytest.raises(ValueError):
            BitVector(33)

    def test_set_many_and_test_all(self):
        vec = BitVector(10)
        vec.set_many([1, 100, 1000])
        assert vec.test_all([1, 100, 1000])
        assert not vec.test_all([1, 100, 999])
        assert vec.test_all([])  # vacuous truth

    def test_clear(self):
        vec = BitVector(8)
        vec.set_many(range(0, 256, 3))
        vec.clear()
        assert vec.count() == 0
        assert not vec.any()

    def test_utilization(self):
        vec = BitVector(8)  # 256 bits
        vec.set_many(range(64))
        assert vec.utilization() == pytest.approx(0.25)

    def test_copy_independent(self):
        vec = BitVector(8)
        vec.set(1)
        clone = vec.copy()
        clone.set(2)
        assert not vec.test(2)
        assert clone.test(1)

    def test_equality(self):
        a, b = BitVector(8), BitVector(8)
        a.set(5)
        assert a != b
        b.set(5)
        assert a == b
        assert a != BitVector(9)
        assert a.__eq__(42) is NotImplemented

    def test_set_bit_indices(self):
        vec = BitVector(8)
        vec.set_many([3, 200, 11])
        assert vec.set_bit_indices() == [3, 11, 200]


class TestVectorizedOps:
    def test_set_many_vec_matches_scalar(self):
        scalar = BitVector(12)
        vectorized = BitVector(12)
        rng = np.random.default_rng(0)
        indices = rng.integers(0, 4096, size=500, dtype=np.uint64)
        scalar.set_many(indices.tolist())
        vectorized.set_many_vec(indices)
        assert scalar == vectorized

    def test_set_many_vec_handles_duplicates(self):
        vec = BitVector(8)
        vec.set_many_vec(np.array([7, 7, 7, 8], dtype=np.uint64))
        assert vec.count() == 2

    def test_test_many_vec_matches_scalar(self):
        vec = BitVector(10)
        rng = np.random.default_rng(1)
        set_indices = rng.integers(0, 1024, size=200, dtype=np.uint64)
        vec.set_many_vec(set_indices)
        probe = rng.integers(0, 1024, size=400, dtype=np.uint64)
        results = vec.test_many_vec(probe)
        for index, hit in zip(probe.tolist(), results.tolist()):
            assert hit == vec.test(index)

    def test_as_numpy_is_writable_view(self):
        vec = BitVector(8)
        view = vec.as_numpy()
        view[0] = 0xFF
        assert vec.count() == 8
        assert vec.test(0) and vec.test(7)

    def test_count_uses_all_bytes(self):
        vec = BitVector(8)
        vec.as_numpy()[:] = 0xFF
        assert vec.count() == 256
        assert vec.utilization() == 1.0

    def test_clear_resets_numpy_view(self):
        vec = BitVector(8)
        view = vec.as_numpy()
        view[:] = 0xAA
        vec.clear()
        assert view.sum() == 0
