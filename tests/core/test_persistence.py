"""Tests for repro.core.persistence — filter checkpoint/restore."""

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, Decision
from repro.core.persistence import (
    SnapshotCorruptionError,
    load_filter,
    restore_filter,
    save_filter,
)
from tests.conftest import make_reply, make_request


@pytest.fixture()
def warmed_filter(small_config, protected, client_addr, server_addr):
    filt = BitmapFilter(small_config, protected)
    for sport in range(1024, 1100):
        filt.process(make_request(10.0 + sport * 0.01, client_addr, server_addr,
                                  sport=sport))
    return filt


class TestRoundTrip:
    def test_bit_exact_restore(self, warmed_filter, tmp_path):
        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        restored = load_filter(path)
        for a, b in zip(warmed_filter.bitmap.vectors, restored.bitmap.vectors):
            assert a == b
        assert restored.bitmap.current_index == warmed_filter.bitmap.current_index
        assert restored.next_rotation == warmed_filter.next_rotation
        assert restored.config == warmed_filter.config
        assert restored.stats.as_dict() == warmed_filter.stats.as_dict()

    def test_restored_filter_keeps_passing_replies(
        self, warmed_filter, tmp_path, client_addr, server_addr
    ):
        """The point of checkpointing: no Te-long warm-up after restart."""
        request = make_request(10.0 + 1050 * 0.01, client_addr, server_addr,
                               sport=1050)
        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        restored = load_filter(path)
        reply = make_reply(request, request.ts + 0.5)
        assert restored.process(reply) is Decision.PASS
        # And identical verdicts to the original going forward:
        assert warmed_filter.process(reply.with_ts(reply.ts + 0.01)) is Decision.PASS

    def test_cold_filter_would_have_dropped(
        self, warmed_filter, small_config, protected, client_addr, server_addr
    ):
        request = make_request(20.0, client_addr, server_addr, sport=1050)
        cold = BitmapFilter(small_config, protected, start_time=20.0)
        assert cold.process(make_reply(request, 21.0)) is Decision.DROP

    def test_protected_space_restored(self, warmed_filter, tmp_path):
        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        restored = load_filter(path)
        assert [str(n) for n in restored.protected.networks] == [
            str(n) for n in warmed_filter.protected.networks
        ]

    def test_rotation_schedule_continues(self, warmed_filter, tmp_path):
        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        restored = load_filter(path)
        a = warmed_filter.advance_to(100.0)
        b = restored.advance_to(100.0)
        assert a == b
        assert restored.bitmap.current_index == warmed_filter.bitmap.current_index


class TestEdgeCases:
    def test_snapshot_exactly_at_rotation_boundary(self, small_config, protected,
                                                   client_addr, server_addr,
                                                   tmp_path):
        """Checkpoint at the instant a rotation fires: schedule must survive."""
        filt = BitmapFilter(small_config, protected)
        dt = small_config.rotation_interval
        filt.process(make_request(dt, client_addr, server_addr))  # rotates at dt
        assert filt.next_rotation == 2 * dt
        path = tmp_path / "boundary.npz"
        save_filter(filt, path)
        restored = load_filter(path)
        assert restored.next_rotation == 2 * dt
        assert restored.advance_to(2 * dt) == 1
        assert filt.advance_to(2 * dt) == 1
        assert restored.bitmap.current_index == filt.bitmap.current_index

    def test_nonzero_stats_and_rotations_round_trip(self, warmed_filter,
                                                    tmp_path):
        warmed_filter.advance_to(200.0)  # push the rotation counter well up
        assert warmed_filter.stats.rotations > 0
        path = tmp_path / "stats.npz"
        save_filter(warmed_filter, path)
        restored = load_filter(path)
        assert restored.stats.as_dict() == warmed_filter.stats.as_dict()
        assert restored.bitmap.rotations == warmed_filter.bitmap.rotations

    def test_in_memory_snapshot_round_trip(self, warmed_filter):
        import io

        buffer = io.BytesIO()
        save_filter(warmed_filter, buffer)
        buffer.seek(0)
        restored = load_filter(buffer)
        for a, b in zip(warmed_filter.bitmap.vectors, restored.bitmap.vectors):
            assert a == b

    def test_down_filter_refused(self, warmed_filter, tmp_path):
        warmed_filter.fail()
        with pytest.raises(ValueError):
            save_filter(warmed_filter, tmp_path / "down.npz")


class TestRestoreFilter:
    def test_catches_up_missed_rotations_and_warms_up(self, warmed_filter,
                                                      tmp_path):
        path = tmp_path / "restore.npz"
        save_filter(warmed_filter, path)
        dt = warmed_filter.config.rotation_interval
        te = warmed_filter.config.expiry_timer
        now = warmed_filter.next_rotation + 3 * dt  # 4 rotations overdue
        restored = restore_filter(path, now)
        twin = load_filter(path)
        assert twin.advance_to(now) == 4
        assert restored.bitmap.current_index == twin.bitmap.current_index
        assert restored.stats.rotations == twin.stats.rotations
        # Stale snapshot -> Te of warm-up grace by default.
        assert restored.in_warmup(now + te - 0.1)
        assert not restored.in_warmup(now + te)

    def test_fresh_snapshot_needs_no_warmup(self, warmed_filter, tmp_path):
        path = tmp_path / "fresh.npz"
        save_filter(warmed_filter, path)
        now = warmed_filter.next_rotation - 0.1  # nothing missed yet
        restored = restore_filter(path, now)
        assert not restored.in_warmup(now)

    def test_explicit_grace_overrides_default(self, warmed_filter, tmp_path):
        path = tmp_path / "grace.npz"
        save_filter(warmed_filter, path)
        now = warmed_filter.next_rotation + 100.0
        restored = restore_filter(path, now, warmup_grace=3.0)
        assert restored.in_warmup(now + 2.9)
        assert not restored.in_warmup(now + 3.0)


class TestErrors:
    def test_apd_filter_rejected(self, small_config, protected, tmp_path):
        from repro.core.apd import AdaptiveDroppingPolicy, PacketRatioIndicator

        filt = BitmapFilter(small_config, protected,
                            apd=AdaptiveDroppingPolicy(PacketRatioIndicator()))
        with pytest.raises(ValueError):
            save_filter(filt, tmp_path / "x.npz")

    def test_corrupted_vectors_rejected(self, warmed_filter, tmp_path):
        import json

        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["metadata"]))
            vectors = archive["vectors"][:, :16]  # truncate
        np.savez_compressed(path, vectors=vectors, metadata=json.dumps(meta))
        with pytest.raises(ValueError):
            load_filter(path)

    def test_bit_rot_fails_checksum(self, warmed_filter, tmp_path):
        """A single flipped byte in the vectors must be detected on load."""
        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        with np.load(path, allow_pickle=False) as archive:
            meta = archive["metadata"]
            vectors = archive["vectors"].copy()
        vectors[0, 0] ^= 0x01
        np.savez_compressed(path, vectors=vectors, metadata=meta)
        with pytest.raises(SnapshotCorruptionError):
            load_filter(path)

    def test_missing_checksum_rejected_for_v2(self, warmed_filter, tmp_path):
        import json

        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["metadata"]))
            vectors = archive["vectors"]
        del meta["vectors_sha256"]
        np.savez_compressed(path, vectors=vectors, metadata=json.dumps(meta))
        with pytest.raises(SnapshotCorruptionError):
            load_filter(path)

    def test_legacy_v1_snapshot_loads_without_checksum(self, warmed_filter,
                                                       tmp_path):
        import json

        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["metadata"]))
            vectors = archive["vectors"]
        meta["format_version"] = 1
        del meta["vectors_sha256"]
        del meta["fail_policy"]
        np.savez_compressed(path, vectors=vectors, metadata=json.dumps(meta))
        restored = load_filter(path)
        for a, b in zip(warmed_filter.bitmap.vectors, restored.bitmap.vectors):
            assert a == b

    def test_unknown_version_rejected(self, warmed_filter, tmp_path):
        import json

        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["metadata"]))
            vectors = archive["vectors"]
        meta["format_version"] = 99
        np.savez_compressed(path, vectors=vectors, metadata=json.dumps(meta))
        with pytest.raises(ValueError):
            load_filter(path)


class TestMidRunEquivalence:
    def test_save_load_mid_trace_is_transparent(self, small_config, tiny_trace,
                                                tmp_path):
        """Splitting a run across a checkpoint changes nothing.

        Run the first half of a real trace, snapshot, restore, run the
        second half — the verdicts must equal an unbroken run.
        """
        import numpy as np

        packets = tiny_trace.packets
        half = len(packets) // 2

        unbroken = BitmapFilter(small_config, tiny_trace.protected)
        expected = unbroken.process_batch(packets, exact=True)

        first = BitmapFilter(small_config, tiny_trace.protected)
        v1 = first.process_batch(packets[:half], exact=True)
        path = tmp_path / "mid.npz"
        save_filter(first, path)
        second = load_filter(path)
        v2 = second.process_batch(packets[half:], exact=True)

        assert bool(np.array_equal(np.concatenate([v1, v2]), expected))
        assert second.stats.as_dict() == unbroken.stats.as_dict()
