"""Tests for repro.core.persistence — filter checkpoint/restore."""

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, Decision
from repro.core.persistence import load_filter, save_filter
from tests.conftest import make_reply, make_request


@pytest.fixture()
def warmed_filter(small_config, protected, client_addr, server_addr):
    filt = BitmapFilter(small_config, protected)
    for sport in range(1024, 1100):
        filt.process(make_request(10.0 + sport * 0.01, client_addr, server_addr,
                                  sport=sport))
    return filt


class TestRoundTrip:
    def test_bit_exact_restore(self, warmed_filter, tmp_path):
        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        restored = load_filter(path)
        for a, b in zip(warmed_filter.bitmap.vectors, restored.bitmap.vectors):
            assert a == b
        assert restored.bitmap.current_index == warmed_filter.bitmap.current_index
        assert restored.next_rotation == warmed_filter.next_rotation
        assert restored.config == warmed_filter.config
        assert restored.stats.as_dict() == warmed_filter.stats.as_dict()

    def test_restored_filter_keeps_passing_replies(
        self, warmed_filter, tmp_path, client_addr, server_addr
    ):
        """The point of checkpointing: no Te-long warm-up after restart."""
        request = make_request(10.0 + 1050 * 0.01, client_addr, server_addr,
                               sport=1050)
        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        restored = load_filter(path)
        reply = make_reply(request, request.ts + 0.5)
        assert restored.process(reply) is Decision.PASS
        # And identical verdicts to the original going forward:
        assert warmed_filter.process(reply.with_ts(reply.ts + 0.01)) is Decision.PASS

    def test_cold_filter_would_have_dropped(
        self, warmed_filter, small_config, protected, client_addr, server_addr
    ):
        request = make_request(20.0, client_addr, server_addr, sport=1050)
        cold = BitmapFilter(small_config, protected, start_time=20.0)
        assert cold.process(make_reply(request, 21.0)) is Decision.DROP

    def test_protected_space_restored(self, warmed_filter, tmp_path):
        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        restored = load_filter(path)
        assert [str(n) for n in restored.protected.networks] == [
            str(n) for n in warmed_filter.protected.networks
        ]

    def test_rotation_schedule_continues(self, warmed_filter, tmp_path):
        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        restored = load_filter(path)
        a = warmed_filter.advance_to(100.0)
        b = restored.advance_to(100.0)
        assert a == b
        assert restored.bitmap.current_index == warmed_filter.bitmap.current_index


class TestErrors:
    def test_apd_filter_rejected(self, small_config, protected, tmp_path):
        from repro.core.apd import AdaptiveDroppingPolicy, PacketRatioIndicator

        filt = BitmapFilter(small_config, protected,
                            apd=AdaptiveDroppingPolicy(PacketRatioIndicator()))
        with pytest.raises(ValueError):
            save_filter(filt, tmp_path / "x.npz")

    def test_corrupted_vectors_rejected(self, warmed_filter, tmp_path):
        import json

        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["metadata"]))
            vectors = archive["vectors"][:, :16]  # truncate
        np.savez_compressed(path, vectors=vectors, metadata=json.dumps(meta))
        with pytest.raises(ValueError):
            load_filter(path)

    def test_unknown_version_rejected(self, warmed_filter, tmp_path):
        import json

        path = tmp_path / "filter.npz"
        save_filter(warmed_filter, path)
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["metadata"]))
            vectors = archive["vectors"]
        meta["format_version"] = 99
        np.savez_compressed(path, vectors=vectors, metadata=json.dumps(meta))
        with pytest.raises(ValueError):
            load_filter(path)


class TestMidRunEquivalence:
    def test_save_load_mid_trace_is_transparent(self, small_config, tiny_trace,
                                                tmp_path):
        """Splitting a run across a checkpoint changes nothing.

        Run the first half of a real trace, snapshot, restore, run the
        second half — the verdicts must equal an unbroken run.
        """
        import numpy as np

        packets = tiny_trace.packets
        half = len(packets) // 2

        unbroken = BitmapFilter(small_config, tiny_trace.protected)
        expected = unbroken.process_batch(packets, exact=True)

        first = BitmapFilter(small_config, tiny_trace.protected)
        v1 = first.process_batch(packets[:half], exact=True)
        path = tmp_path / "mid.npz"
        save_filter(first, path)
        second = load_filter(path)
        v2 = second.process_batch(packets[half:], exact=True)

        assert bool(np.array_equal(np.concatenate([v1, v2]), expected))
        assert second.stats.as_dict() == unbroken.stats.as_dict()
