"""Tests for repro.core.hashing."""

import numpy as np
import pytest

from repro.core.hashing import (
    HashFamily,
    fnv1a64,
    pack_key,
    splitmix64,
    splitmix64_vec,
    uniformity_chi2,
)


class TestMixers:
    def test_splitmix64_deterministic(self):
        assert splitmix64(0) == splitmix64(0)
        assert splitmix64(1) != splitmix64(2)

    def test_splitmix64_stays_64bit(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64

    def test_splitmix64_vec_matches_scalar(self):
        values = np.array([0, 1, 12345, 2**63, 2**64 - 1], dtype=np.uint64)
        vec = splitmix64_vec(values)
        for x, y in zip(values.tolist(), vec.tolist()):
            assert splitmix64(x) == y

    def test_fnv1a64_known_vector(self):
        # FNV-1a 64-bit of empty input is the offset basis.
        assert fnv1a64(b"") == 0xCBF29CE484222325
        assert fnv1a64(b"a") != fnv1a64(b"b")


class TestPackKey:
    def test_fields_disjoint(self):
        lo, hi = pack_key((6, 0xAABBCCDD, 0x1234, 0x01020304))
        assert lo == (0xAABBCCDD << 32) | (0x1234 << 16) | 6
        assert hi == 0x01020304

    def test_different_keys_pack_differently(self):
        assert pack_key((6, 1, 2, 3)) != pack_key((6, 1, 2, 4))
        assert pack_key((6, 1, 2, 3)) != pack_key((17, 1, 2, 3))


class TestHashFamily:
    def test_deterministic(self):
        fam = HashFamily(3, 16, seed=42)
        key = (6, 0xC0A80101, 1234, 0x08080808)
        assert fam.indices(key) == fam.indices(key)

    def test_output_range(self):
        fam = HashFamily(5, 10)
        for i in range(100):
            for index in fam.indices((6, i, i, i)):
                assert 0 <= index < 1024

    def test_num_indices(self):
        assert len(HashFamily(7, 12).indices((6, 1, 2, 3))) == 7

    def test_seed_changes_indices(self):
        key = (6, 1, 2, 3)
        a = HashFamily(3, 16, seed=1).indices(key)
        b = HashFamily(3, 16, seed=2).indices(key)
        assert a != b

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            HashFamily(0, 16)
        with pytest.raises(ValueError):
            HashFamily(3, 2)
        with pytest.raises(ValueError):
            HashFamily(3, 40)

    def test_h2_odd_covers_ring(self):
        # h2 is forced odd, so the m probes of one key never collide for
        # m <= 2**n (the double-hash step is invertible mod 2**n).
        fam = HashFamily(8, 6)  # 64-bit ring, 8 probes
        for i in range(50):
            indices = fam.indices((6, i, 1, 2))
            assert len(set(indices)) == len(indices)

    def test_vectorized_matches_scalar(self):
        fam = HashFamily(4, 14, seed=9)
        rng = np.random.default_rng(2)
        n = 200
        proto = rng.integers(0, 255, n).astype(np.uint8)
        local = rng.integers(0, 2**32, n, dtype=np.uint64).astype(np.uint32)
        port = rng.integers(0, 2**16, n).astype(np.uint16)
        remote = rng.integers(0, 2**32, n, dtype=np.uint64).astype(np.uint32)
        matrix = fam.indices_vec(proto, local, port, remote)
        assert matrix.shape == (4, n)
        for i in range(n):
            key = (int(proto[i]), int(local[i]), int(port[i]), int(remote[i]))
            assert tuple(matrix[:, i].tolist()) == fam.indices(key)

    def test_uniformity(self):
        """Hash outputs should pass a loose chi-square uniformity check."""
        fam = HashFamily(1, 8)  # 256 bins
        samples = [fam.indices((6, i, i >> 8, i * 31))[0] for i in range(25600)]
        stat = uniformity_chi2(samples, 256)
        # Expected value is 255; a catastrically non-uniform hash gives
        # thousands.  99.9th percentile of chi2(255) is ~330.
        assert stat < 400

    def test_with_order_preserves_family(self):
        fam = HashFamily(3, 20, seed=7)
        small = fam.with_order(10)
        assert small.num_hashes == 3
        assert small.seed == fam.seed
        assert small.order == 10

    def test_repr(self):
        assert "m=3" in repr(HashFamily(3, 16))


class TestUniformityChi2:
    def test_uniform_sample_low_stat(self):
        samples = list(range(1000)) * 4
        assert uniformity_chi2(samples, 100) == pytest.approx(0.0)

    def test_skewed_sample_high_stat(self):
        samples = [0] * 1000
        assert uniformity_chi2(samples, 100) > 1000


class TestAvalanche:
    """Flipping any single input bit should flip ~half the output bits."""

    def _avalanche(self, flip_field, flip_bit, samples=400):
        import random as _random

        fam = HashFamily(1, 32, seed=77)
        rng = _random.Random(9)
        total_flipped = 0
        for _ in range(samples):
            key = [6, rng.getrandbits(32), rng.getrandbits(16),
                   rng.getrandbits(32)]
            base = fam.indices(tuple(key))[0]
            key[flip_field] ^= 1 << flip_bit
            flipped = fam.indices(tuple(key))[0]
            total_flipped += bin(base ^ flipped).count("1")
        return total_flipped / samples / 32.0  # fraction of output bits

    @pytest.mark.parametrize("field,bit", [
        (1, 0), (1, 31),   # local address low/high bit
        (2, 0), (2, 15),   # local port
        (3, 0), (3, 31),   # remote address
    ])
    def test_single_bit_flip_avalanches(self, field, bit):
        fraction = self._avalanche(field, bit)
        assert 0.42 < fraction < 0.58

    def test_protocol_bit_avalanches(self):
        assert 0.42 < self._avalanche(0, 0) < 0.58
