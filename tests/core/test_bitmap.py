"""Tests for repro.core.bitmap — the {k x n}-bitmap and Algorithm 1."""

import numpy as np
import pytest

from repro.core.bitmap import Bitmap


class TestConstruction:
    def test_dimensions(self):
        bitmap = Bitmap(4, 10)
        assert bitmap.num_vectors == 4
        assert bitmap.order == 10
        assert bitmap.num_bits_per_vector == 1024
        assert bitmap.memory_bytes == 4 * 1024 // 8

    def test_paper_memory_footprint(self):
        """Section 4.3: a {4 x 20}-bitmap occupies 512K bytes."""
        assert Bitmap(4, 20).memory_bytes == 512 * 1024

    def test_table1_memory_footprint(self):
        """Table 1 footnote (c): {4 x 24} handles 2.56M connections in 8MB."""
        assert Bitmap(4, 24).memory_bytes == 8 * 1024 * 1024

    def test_starts_empty_at_index_zero(self):
        bitmap = Bitmap(3, 8)
        assert bitmap.current_index == 0
        assert bitmap.is_empty()
        assert bitmap.utilization() == 0.0

    def test_rejects_too_few_vectors(self):
        with pytest.raises(ValueError):
            Bitmap(1, 8)


class TestRotate:
    def test_index_cycles(self):
        bitmap = Bitmap(4, 8)
        seen = [bitmap.rotate() for _ in range(8)]
        assert seen == [1, 2, 3, 0, 1, 2, 3, 0]
        assert bitmap.rotations == 8

    def test_rotate_clears_previous_current(self):
        """Algorithm 1: 'last = idx; idx = (idx+1) mod k; clear last'."""
        bitmap = Bitmap(3, 8)
        bitmap.mark([5])
        assert all(vec.test(5) for vec in bitmap.vectors)
        bitmap.rotate()
        assert not bitmap.vector(0).test(5)   # cleared
        assert bitmap.vector(1).test(5)       # preserved
        assert bitmap.vector(2).test(5)       # preserved

    def test_rotate_preserves_other_vectors(self):
        bitmap = Bitmap(4, 8)
        bitmap.mark([1, 2, 3])
        before = [vec.copy() for vec in bitmap.vectors]
        bitmap.rotate()
        for i in (1, 2, 3):
            assert bitmap.vector(i) == before[i]

    def test_mark_visible_for_k_minus_1_rotations(self):
        """A mark survives lookups for k-1 rotations, gone after k."""
        k = 4
        bitmap = Bitmap(k, 8)
        bitmap.mark([99])
        for _ in range(k - 1):
            bitmap.rotate()
            assert bitmap.test_current([99])
        bitmap.rotate()
        assert not bitmap.test_current([99])

    def test_empty_after_k_rotations_without_marking(self):
        bitmap = Bitmap(4, 8)
        bitmap.mark([1, 50, 200])
        for _ in range(4):
            bitmap.rotate()
        assert bitmap.is_empty()


class TestMarkAndTest:
    def test_mark_sets_all_vectors(self):
        bitmap = Bitmap(3, 8)
        bitmap.mark([10, 20])
        for vec in bitmap.vectors:
            assert vec.test(10) and vec.test(20)

    def test_test_current_requires_all_bits(self):
        bitmap = Bitmap(2, 8)
        bitmap.mark([10])
        assert bitmap.test_current([10])
        assert not bitmap.test_current([10, 11])

    def test_mark_idempotent(self):
        bitmap = Bitmap(2, 8)
        bitmap.mark([10])
        bitmap.mark([10])
        assert bitmap.vector(0).count() == 1

    def test_utilization_reads_current_vector(self):
        bitmap = Bitmap(2, 8)  # 256 bits per vector
        bitmap.mark(range(64))
        assert bitmap.utilization() == pytest.approx(0.25)
        assert bitmap.utilizations() == [pytest.approx(0.25)] * 2

    def test_clear_all(self):
        bitmap = Bitmap(3, 8)
        bitmap.mark([1, 2, 3])
        bitmap.rotate()
        bitmap.clear_all()
        assert bitmap.is_empty()
        assert bitmap.current_index == 0


class TestVectorizedOps:
    def test_mark_vec_matches_scalar(self):
        scalar, vectorized = Bitmap(3, 10), Bitmap(3, 10)
        rng = np.random.default_rng(0)
        matrix = rng.integers(0, 1024, size=(3, 50), dtype=np.uint64)
        for column in matrix.T:
            scalar.mark(column.tolist())
        vectorized.mark_vec(matrix)
        for a, b in zip(scalar.vectors, vectorized.vectors):
            assert a == b

    def test_test_current_vec_matches_scalar(self):
        bitmap = Bitmap(2, 10)
        rng = np.random.default_rng(1)
        bitmap.mark_vec(rng.integers(0, 1024, size=(3, 30), dtype=np.uint64))
        probes = rng.integers(0, 1024, size=(3, 100), dtype=np.uint64)
        results = bitmap.test_current_vec(probes)
        assert results.shape == (100,)
        for i in range(100):
            assert results[i] == bitmap.test_current(probes[:, i].tolist())

    def test_repr_mentions_shape(self):
        assert "k=4" in repr(Bitmap(4, 8))


class TestMemoryExactness:
    def test_backing_storage_matches_reported_bytes(self):
        """memory_bytes is not an estimate: it equals the bytearray sizes."""
        bitmap = Bitmap(4, 12)
        actual = sum(vec.num_bytes for vec in bitmap.vectors)
        assert bitmap.memory_bytes == actual

    def test_peak_utilization_tracks_pre_rotation_high_water(self):
        bitmap = Bitmap(2, 8)
        bitmap.mark(range(64))  # U = 0.25
        bitmap.rotate()
        bitmap.rotate()  # everything cleared
        assert bitmap.utilization() == 0.0
        assert bitmap.peak_utilization == pytest.approx(0.25)

    def test_peak_utilization_includes_live_current(self):
        bitmap = Bitmap(2, 8)
        bitmap.mark(range(128))  # U = 0.5, no rotation yet
        assert bitmap.peak_utilization == pytest.approx(0.5)

    def test_clear_all_resets_peak(self):
        bitmap = Bitmap(2, 8)
        bitmap.mark(range(64))
        bitmap.rotate()
        bitmap.clear_all()
        assert bitmap.peak_utilization == 0.0
