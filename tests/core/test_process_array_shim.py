"""Regression coverage for the ``process_array`` deprecation shims.

Five classes still carry the pre-unification batch entry point:
the three SPI backends (via ``StatefulFilter``), the close-aware bitmap
filter, and the aggregate rate limiter.  Each shim must (a) return exactly
what ``process_batch`` returns, and (b) emit a ``DeprecationWarning`` naming
its own class — which, under Python's default once-per-message dedup, means
exactly one warning per class no matter how many instances call it.
"""

import warnings

import pytest

from repro.baselines.throttle import AggregateRateLimiter
from repro.core.bitmap_filter import BitmapFilterConfig
from repro.core.close_aware import CloseAwareBitmapFilter
from repro.net.packet import Packet, PacketArray, TcpFlags
from repro.net.protocols import IPPROTO_TCP
from repro.spi.avltree import AvlTreeFilter
from repro.spi.hashlist import HashListFilter
from repro.spi.naive import NaiveExactFilter
from tests.strategies import PROTECTED, flow_endpoints

CONFIG = BitmapFilterConfig(order=10, num_vectors=4, num_hashes=3,
                            rotation_interval=5.0)

SHIM_FACTORIES = {
    "NaiveExactFilter": lambda: NaiveExactFilter(PROTECTED),
    "HashListFilter": lambda: HashListFilter(PROTECTED),
    "AvlTreeFilter": lambda: AvlTreeFilter(PROTECTED),
    "CloseAwareBitmapFilter": lambda: CloseAwareBitmapFilter(CONFIG, PROTECTED),
    "AggregateRateLimiter": lambda: AggregateRateLimiter(
        PROTECTED, trigger_pps=5.0, limit_pps=2.0),
}


def _sample_batch():
    packets = []
    ts = 0.0
    for i in range(12):
        ts += 0.5
        client, server, sport = flow_endpoints(i % 4)
        if i % 3 != 2:
            packets.append(Packet(ts, IPPROTO_TCP, client, sport, server, 80,
                                  TcpFlags.ACK))
        else:
            packets.append(Packet(ts, IPPROTO_TCP, server, 80, client, sport,
                                  TcpFlags.ACK))
    return PacketArray.from_packets(packets)


@pytest.mark.parametrize("name", sorted(SHIM_FACTORIES))
def test_shim_returns_process_batch_results(name):
    make = SHIM_FACTORIES[name]
    batch = _sample_batch()
    expected = make().process_batch(batch)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        got = make().process_array(batch)
    assert got.tolist() == expected.tolist()


@pytest.mark.parametrize("name", sorted(SHIM_FACTORIES))
def test_shim_warning_names_the_concrete_class(name):
    make = SHIM_FACTORIES[name]
    batch = _sample_batch()
    with pytest.warns(DeprecationWarning,
                      match=rf"{name}\.process_array is deprecated"):
        make().process_array(batch)


def test_shim_warns_exactly_once_per_class():
    """Under the stock 'default' warning filter, repeated calls — even from
    fresh instances — surface one warning per class, because each shim's
    message carries the concrete class name."""
    batch = _sample_batch()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(2):  # two instances per class, same call site
            for name in sorted(SHIM_FACTORIES):
                SHIM_FACTORIES[name]().process_array(batch)
    dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    messages = [str(w.message) for w in dep]
    assert len(dep) == len(SHIM_FACTORIES), messages
    for name in SHIM_FACTORIES:
        assert sum(name in m for m in messages) == 1, messages


def test_spi_backends_warn_under_their_own_names():
    """The shared StatefulFilter shim must not collapse the three SPI
    backends into one warning (regression: it used to warn as
    'StatefulFilter.process_array' for all of them)."""
    batch = _sample_batch()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for cls in (NaiveExactFilter, HashListFilter, AvlTreeFilter):
            cls(PROTECTED).process_array(batch)
    messages = [str(w.message) for w in caught
                if issubclass(w.category, DeprecationWarning)]
    assert len(messages) == 3, messages
    assert not any("StatefulFilter" in m for m in messages)
