"""Tests for repro.core.bitmap_filter — Algorithm 2 and the batch paths."""

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, Decision
from repro.net.packet import Packet, PacketArray, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP
from tests.conftest import make_reply, make_request


class TestConfig:
    def test_paper_default(self):
        config = BitmapFilterConfig.paper_default()
        assert config.order == 20
        assert config.num_vectors == 4
        assert config.num_hashes == 3
        assert config.rotation_interval == 5.0
        assert config.expiry_timer == 20.0
        assert config.guaranteed_window == 15.0
        assert config.memory_bytes == 512 * 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            BitmapFilterConfig(rotation_interval=0)
        with pytest.raises(ValueError):
            BitmapFilterConfig(num_hashes=0)


class TestAlgorithm2:
    def test_outgoing_always_passes(self, bitmap_filter, client_addr, server_addr):
        pkt = make_request(1.0, client_addr, server_addr)
        assert bitmap_filter.process(pkt) is Decision.PASS
        assert bitmap_filter.stats.outgoing == 1

    def test_reply_passes(self, bitmap_filter, client_addr, server_addr):
        request = make_request(1.0, client_addr, server_addr)
        bitmap_filter.process(request)
        assert bitmap_filter.process(make_reply(request, 1.1)) is Decision.PASS

    def test_unsolicited_incoming_dropped(self, bitmap_filter, client_addr, server_addr):
        stray = Packet(1.0, IPPROTO_TCP, server_addr, 9999, client_addr, 1234)
        assert bitmap_filter.process(stray) is Decision.DROP
        assert bitmap_filter.stats.incoming_dropped == 1

    def test_transit_and_internal_pass(self, bitmap_filter, protected):
        transit = make_request(0.0, 0x01010101, 0x02020202)
        assert bitmap_filter.process(transit) is Decision.PASS
        internal = make_request(
            0.0, protected.networks[0].host(1), protected.networks[1].host(1)
        )
        assert bitmap_filter.process(internal) is Decision.PASS
        assert bitmap_filter.stats.transit == 1
        assert bitmap_filter.stats.internal == 1

    def test_reply_from_different_server_port_passes(
        self, bitmap_filter, client_addr, server_addr
    ):
        """The remote port is not hashed (Sec. 3.3 / hole punching)."""
        request = make_request(1.0, client_addr, server_addr, dport=21)
        bitmap_filter.process(request)
        data_channel = Packet(
            1.5, IPPROTO_TCP, server_addr, 20, client_addr, request.sport, TcpFlags.SYN
        )
        assert bitmap_filter.process(data_channel) is Decision.PASS

    def test_reply_to_wrong_client_port_dropped(
        self, bitmap_filter, client_addr, server_addr
    ):
        request = make_request(1.0, client_addr, server_addr, sport=5555)
        bitmap_filter.process(request)
        wrong = Packet(1.5, IPPROTO_TCP, server_addr, 80, client_addr, 5556)
        assert bitmap_filter.process(wrong) is Decision.DROP

    def test_udp_and_tcp_do_not_cross_match(self, bitmap_filter, client_addr, server_addr):
        request = make_request(1.0, client_addr, server_addr, proto=IPPROTO_UDP,
                               flags=TcpFlags.NONE)
        bitmap_filter.process(request)
        tcp_reply = Packet(1.1, IPPROTO_TCP, server_addr, request.dport,
                           client_addr, request.sport)
        assert bitmap_filter.process(tcp_reply) is Decision.DROP


class TestExpiry:
    def test_reply_within_guaranteed_window_passes(
        self, small_config, protected, client_addr, server_addr
    ):
        filt = BitmapFilter(small_config, protected)
        request = make_request(1.0, client_addr, server_addr)
        filt.process(request)
        late = make_reply(request, 1.0 + small_config.guaranteed_window - 0.1)
        assert filt.process(late) is Decision.PASS

    def test_reply_after_expiry_dropped(
        self, small_config, protected, client_addr, server_addr
    ):
        filt = BitmapFilter(small_config, protected)
        request = make_request(1.0, client_addr, server_addr)
        filt.process(request)
        too_late = make_reply(request, 1.0 + small_config.expiry_timer + 5.1)
        assert filt.process(too_late) is Decision.DROP

    def test_refresh_extends_lifetime(self, small_config, protected, client_addr, server_addr):
        filt = BitmapFilter(small_config, protected)
        request = make_request(1.0, client_addr, server_addr)
        filt.process(request)
        filt.process(request.with_ts(18.0))  # re-mark
        assert filt.process(make_reply(request, 30.0)) is Decision.PASS

    def test_advance_to_runs_due_rotations(self, small_config, protected):
        filt = BitmapFilter(small_config, protected)
        ran = filt.advance_to(26.0)  # dt=5 -> rotations at 5,10,15,20,25
        assert ran == 5
        assert filt.stats.rotations == 5
        assert filt.bitmap.rotations == 5

    def test_rotation_boundary_is_inclusive(self, small_config, protected):
        filt = BitmapFilter(small_config, protected)
        assert filt.advance_to(5.0) == 1

    def test_packets_drive_rotation(self, small_config, protected, client_addr, server_addr):
        filt = BitmapFilter(small_config, protected)
        filt.process(make_request(1.0, client_addr, server_addr))
        filt.process(make_request(23.0, client_addr, server_addr, sport=6000))
        assert filt.bitmap.rotations == 4


class TestBatchPaths:
    def _scenario(self, client, server):
        request = make_request(1.0, client, server)
        packets = [
            request,
            make_reply(request, 1.2),
            Packet(2.0, IPPROTO_TCP, server, 1, client, 2),      # stray: drop
            make_request(30.0, client, server, sport=7000),       # new request
            make_reply(request, 40.0),                            # expired: drop
        ]
        return PacketArray.from_packets(packets)

    def test_exact_matches_scalar(self, small_config, protected, client_addr, server_addr):
        batch = self._scenario(client_addr, server_addr)
        scalar = BitmapFilter(small_config, protected)
        expected = [scalar.process(pkt) is Decision.PASS for pkt in batch]
        batched = BitmapFilter(small_config, protected)
        verdicts = batched.process_batch(batch, exact=True)
        assert verdicts.tolist() == expected
        assert batched.stats.as_dict() == scalar.stats.as_dict()

    def test_windowed_never_stricter_than_exact(
        self, small_config, protected, client_addr, server_addr
    ):
        batch = self._scenario(client_addr, server_addr)
        exact = BitmapFilter(small_config, protected).process_batch(batch, exact=True)
        windowed = BitmapFilter(small_config, protected).process_batch(batch, exact=False)
        assert bool(np.all(windowed >= exact))

    def test_windowed_on_simple_scenario(self, small_config, protected, client_addr, server_addr):
        batch = self._scenario(client_addr, server_addr)
        verdicts = BitmapFilter(small_config, protected).process_batch(batch, exact=False)
        assert verdicts.tolist() == [True, True, False, True, False]

    def test_empty_batch(self, small_config, protected):
        filt = BitmapFilter(small_config, protected)
        assert len(filt.process_batch(PacketArray.empty())) == 0
        assert len(filt.process_batch(PacketArray.empty(), exact=False)) == 0

    def test_batch_rejects_apd(self, small_config, protected):
        from repro.core.apd import AdaptiveDroppingPolicy, PacketRatioIndicator

        filt = BitmapFilter(
            small_config, protected,
            apd=AdaptiveDroppingPolicy(PacketRatioIndicator()),
        )
        with pytest.raises(NotImplementedError):
            filt.process_batch(PacketArray.empty())

    def test_batch_counts_directions(self, small_config, protected, client_addr, server_addr):
        batch = self._scenario(client_addr, server_addr)
        filt = BitmapFilter(small_config, protected)
        filt.process_batch(batch, exact=True)
        assert filt.stats.outgoing == 2
        assert filt.stats.incoming == 3
        assert filt.stats.incoming_dropped == 2


class TestHelpers:
    def test_would_pass_incoming_is_nonmutating(
        self, bitmap_filter, client_addr, server_addr
    ):
        request = make_request(1.0, client_addr, server_addr)
        bitmap_filter.process(request)
        reply = make_reply(request, 1.1)
        before = bitmap_filter.stats.incoming
        assert bitmap_filter.would_pass_incoming(reply)
        assert bitmap_filter.stats.incoming == before

    def test_mark_key_opens_path(self, bitmap_filter, client_addr, server_addr):
        bitmap_filter.mark_key(IPPROTO_TCP, client_addr, 20, server_addr)
        inbound = Packet(0.1, IPPROTO_TCP, server_addr, 4242, client_addr, 20)
        assert bitmap_filter.process(inbound) is Decision.PASS

    def test_stats_drop_rate(self, bitmap_filter, client_addr, server_addr):
        stray = Packet(1.0, IPPROTO_TCP, server_addr, 1, client_addr, 2)
        bitmap_filter.process(stray)
        assert bitmap_filter.stats.incoming_drop_rate == 1.0

    def test_repr(self, bitmap_filter):
        assert "Te=20" in repr(bitmap_filter)
