"""Unit tests for the hybrid bitmap→cuckoo verification filter.

The composition semantics the differential suite relies on, stated
directly: outgoing traffic feeds the exact table, verified incoming
admits must be confirmed or flipped to DROP, warm-up and degraded mode
are pass-throughs, and the whole stack snapshots and restores with its
table intact.
"""

import io

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.core.cuckoo import pack_flow
from repro.core.filter_api import Decision, PacketFilter
from repro.core.hybrid import HybridVerifiedFilter, VerifySpec
from repro.core.persistence import load_filter, save_filter
from repro.net.packet import PacketArray
from repro.telemetry import MetricsRegistry, use_registry
from tests.conftest import make_reply, make_request

pytestmark = pytest.mark.core

CONFIG = BitmapFilterConfig(order=12, num_vectors=4, num_hashes=3,
                            rotation_interval=5.0)


def make_hybrid(protected, spec=None, **config_fields):
    config = (BitmapFilterConfig(order=12, num_vectors=4, num_hashes=3,
                                 rotation_interval=5.0, **config_fields)
              if config_fields else CONFIG)
    return HybridVerifiedFilter(BitmapFilter(config, protected),
                                spec or VerifySpec(initial_order=4))


def force_false_admit(filt, client, server, sport=7777):
    """Mark a never-sent flow in the *bitmap only*: the next reply is a
    bitmap PASS with no exact-table entry — a false admit by construction."""
    filt.inner.mark_key(6, client, sport, server)
    return make_reply(make_request(1.0, client, server, sport=sport), 2.0)


class TestSemantics:
    def test_satisfies_packet_filter_protocol(self, protected):
        assert isinstance(make_hybrid(protected), PacketFilter)

    def test_legitimate_flow_confirmed(self, protected, client_addr,
                                       server_addr):
        filt = make_hybrid(protected)
        request = make_request(1.0, client_addr, server_addr)
        assert filt.process(request) is Decision.PASS
        assert filt.table.occupancy == 1
        assert filt.process(make_reply(request, 1.5)) is Decision.PASS
        assert (filt.confirmed, filt.denied) == (1, 0)

    def test_false_admit_denied(self, protected, client_addr, server_addr):
        filt = make_hybrid(protected)
        reply = force_false_admit(filt, client_addr, server_addr)
        assert filt.inner.would_pass_incoming(reply)   # bitmap says PASS
        assert filt.process(reply) is Decision.DROP    # table says no
        assert (filt.confirmed, filt.denied) == (0, 1)
        assert filt.measured_fpr == 1.0

    def test_bitmap_drop_never_reaches_table(self, protected, client_addr,
                                             server_addr):
        filt = make_hybrid(protected)
        unsolicited = make_reply(
            make_request(1.0, client_addr, server_addr, sport=9321), 2.0)
        assert filt.process(unsolicited) is Decision.DROP
        assert filt.table.lookups == 0

    def test_warmup_admits_never_denied(self, protected, client_addr,
                                        server_addr):
        filt = make_hybrid(protected)
        filt.begin_warmup(10.0)
        reply = make_reply(
            make_request(1.0, client_addr, server_addr, sport=4242), 2.0)
        assert filt.process(reply) is Decision.PASS    # grace window
        assert (filt.confirmed, filt.denied) == (0, 0)

    def test_degraded_mode_is_transparent(self, protected, client_addr,
                                          server_addr):
        filt = make_hybrid(protected)
        filt.fail()
        request = make_request(1.0, client_addr, server_addr)
        assert filt.process(request) is Decision.PASS  # outgoing always
        assert filt.table.occupancy == 0               # but nothing learned
        reply = make_reply(request, 1.5)
        assert filt.process(reply) is Decision.DROP    # FAIL_CLOSED verbatim
        assert filt.table.lookups == 0

    def test_scope_limits_verification(self, protected, server_addr):
        scoped_net = protected.networks[0]
        spec = VerifySpec(initial_order=4, scope=(str(scoped_net),))
        filt = make_hybrid(protected, spec)
        in_scope = force_false_admit(filt, scoped_net.host(9), server_addr)
        out_scope = force_false_admit(filt, protected.networks[1].host(9),
                                      server_addr, sport=7778)
        assert filt.process(in_scope) is Decision.DROP
        assert filt.process(out_scope) is Decision.PASS  # not verified
        assert (filt.confirmed, filt.denied) == (0, 1)

    def test_mark_key_punches_both_tiers(self, protected, client_addr,
                                         server_addr):
        filt = make_hybrid(protected)
        filt.mark_key(6, client_addr, 5555, server_addr)
        reply = make_reply(
            make_request(1.0, client_addr, server_addr, sport=5555), 2.0)
        assert filt.process(reply) is Decision.PASS
        lo, hi = pack_flow(6, client_addr, 5555, server_addr)
        assert filt.table.contains(lo, hi, filt.next_rotation)

    def test_would_pass_incoming_consults_table(self, protected, client_addr,
                                                server_addr):
        filt = make_hybrid(protected)
        reply = force_false_admit(filt, client_addr, server_addr)
        assert filt.inner.would_pass_incoming(reply)
        assert not filt.would_pass_incoming(reply)
        assert (filt.confirmed, filt.denied) == (0, 0)  # probe, not verdict


class TestBatchPaths:
    def _mixed_packets(self, protected, server_addr, n=120):
        packets = []
        for i in range(n):
            client = protected.networks[i % 4].host(20 + i % 50)
            request = make_request(0.2 + i * 0.05, client, server_addr,
                                   sport=30_000 + i)
            packets.append(request)
            packets.append(make_reply(request, request.ts + 0.4))
        packets.sort(key=lambda pkt: pkt.ts)
        return PacketArray.from_packets(packets)

    def test_exact_batch_matches_scalar(self, protected, server_addr):
        batch = self._mixed_packets(protected, server_addr)
        scalar = make_hybrid(protected)
        exact = make_hybrid(protected)
        want = np.array([scalar.process(p) is Decision.PASS
                         for p in batch.to_packets()])
        got = exact.process_batch(batch, exact=True)
        assert np.array_equal(got, want)
        assert exact.table.state_digest() == scalar.table.state_digest()
        assert (exact.confirmed, exact.denied) == (scalar.confirmed,
                                                   scalar.denied)

    def test_windowed_is_superset_of_exact(self, protected, server_addr):
        batch = self._mixed_packets(protected, server_addr)
        exact = make_hybrid(protected).process_batch(batch, exact=True)
        windowed = make_hybrid(protected).process_batch(batch, exact=False)
        assert not (exact & ~windowed).any()

    def test_stats_move_denials_to_dropped(self, protected, client_addr,
                                           server_addr):
        filt = make_hybrid(protected)
        reply = force_false_admit(filt, client_addr, server_addr)
        filt.process(reply)
        inner_stats = filt.inner.stats
        stats = filt.stats
        assert stats.incoming_dropped == inner_stats.incoming_dropped + 1
        assert stats.incoming_passed == inner_stats.incoming_passed - 1
        # Adjusted view is a copy; the inner record stays untouched.
        assert filt.inner.stats.incoming_passed == inner_stats.incoming_passed


class TestAdaptiveResize:
    def test_measured_fpr_triggers_one_doubling(self, protected, client_addr,
                                                server_addr):
        spec = VerifySpec(initial_order=4, resize_fpr=0.05, fpr_window=8)
        filt = make_hybrid(protected, spec)
        for i in range(8):
            reply = force_false_admit(filt, client_addr, server_addr,
                                      sport=6000 + i)
            assert filt.process(reply) is Decision.DROP
        assert filt.table.grow_causes["fpr"] == 1
        assert filt.table.order == 5

    def test_lifetime_defaults_to_expiry_timer(self, protected):
        filt = make_hybrid(protected)
        assert filt.table.lifetime == CONFIG.expiry_timer  # Te = k*dt
        custom = make_hybrid(protected, VerifySpec(initial_order=4,
                                                   lifetime=3.5))
        assert custom.table.lifetime == 3.5


class TestSnapshotAndTelemetry:
    def test_snapshot_round_trip_keeps_table(self, protected, client_addr,
                                             server_addr):
        filt = make_hybrid(protected)
        for i in range(30):
            request = make_request(1.0 + i * 0.1, client_addr, server_addr,
                                   sport=20_000 + i)
            filt.process(request)
            filt.process(make_reply(request, request.ts + 0.05))
        buffer = io.BytesIO()
        save_filter(filt, buffer)
        buffer.seek(0)
        restored = load_filter(buffer)
        assert isinstance(restored, HybridVerifiedFilter)
        assert restored.layers == filt.layers
        assert restored.table.state_digest() == filt.table.state_digest()
        request = make_request(4.2, client_addr, server_addr, sport=20_005)
        assert restored.process(make_reply(request, 4.3)) is Decision.PASS

    def test_hybrid_counters_published(self, protected, client_addr,
                                       server_addr):
        with use_registry(MetricsRegistry()) as registry:
            filt = make_hybrid(protected)
            request = make_request(1.0, client_addr, server_addr)
            filt.process(request)
            filt.process(make_reply(request, 1.5))
            filt.process(force_false_admit(filt, client_addr, server_addr))
        values = {metric.name: metric.value for metric in registry.metrics()
                  if hasattr(metric, "value")}
        assert values["repro_hybrid_confirmed_total"] == 1
        assert values["repro_hybrid_denied_total"] == 1
        assert values["repro_hybrid_inserts_total"] >= 1
        assert values["repro_hybrid_occupancy"] >= 1
