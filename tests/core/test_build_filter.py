"""Unit tests for the composable filter-stack factory.

:func:`repro.core.filter_api.build_filter` is the single construction
path for every filter stack in the repository: execution backend below,
verification layers above, optional snapshot warm start.  These tests
pin the resolution rules — explicit arguments beat config fields beat
ambient context — and the deprecated-alias contract.
"""

import io
import warnings

import numpy as np
import pytest

from repro.core.bitmap_filter import (
    BitmapFilter,
    BitmapFilterConfig,
    FilterConfig,
)
from repro.core.filter_api import (
    ExecutionBackend,
    build_filter,
    get_backend,
    get_layers,
    layer_dicts,
    normalize_layers,
    use_backend,
    use_layers,
)
from repro.core.hybrid import HybridVerifiedFilter, VerifySpec
from repro.core.persistence import save_filter
from repro.core.resilience import FailPolicy
from tests.conftest import make_reply, make_request

pytestmark = pytest.mark.core

CONFIG = BitmapFilterConfig(order=12, num_vectors=4, num_hashes=3,
                            rotation_interval=5.0)


class TestNormalizeLayers:
    def test_none_and_empty(self):
        assert normalize_layers(None) == ()
        assert normalize_layers(()) == ()

    def test_kind_name_builds_default_spec(self):
        layers = normalize_layers("verify")
        assert layers == (VerifySpec(),)

    def test_dict_form_round_trips(self):
        spec = VerifySpec(initial_order=6, scope=("172.16.0.0/24",))
        rebuilt = normalize_layers(layer_dicts((spec,)))
        assert rebuilt == (spec,)

    def test_spec_objects_pass_through(self):
        spec = VerifySpec(initial_order=5)
        assert normalize_layers([spec]) == (spec,)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            normalize_layers("no-such-layer")

    def test_dict_without_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            normalize_layers([{"initial_order": 5}])

    def test_object_without_kind_rejected(self):
        with pytest.raises(TypeError, match="kind"):
            normalize_layers([object()])


class TestLayerResolution:
    def test_default_is_bare_bitmap(self, protected):
        filt = build_filter(CONFIG, protected)
        assert isinstance(filt, BitmapFilter)

    def test_explicit_layers_wrap(self, protected):
        filt = build_filter(CONFIG, protected, layers=("verify",))
        assert isinstance(filt, HybridVerifiedFilter)
        assert isinstance(filt.inner, BitmapFilter)

    def test_config_layers_honored(self, protected):
        config = FilterConfig(order=12, rotation_interval=5.0,
                              layers=("verify",))
        filt = build_filter(config, protected)
        assert isinstance(filt, HybridVerifiedFilter)

    def test_ambient_layers_honored(self, protected):
        with use_layers(("verify",)):
            assert get_layers() == (VerifySpec(),)
            filt = build_filter(CONFIG, protected)
        assert isinstance(filt, HybridVerifiedFilter)
        assert get_layers() == ()    # scope restored

    def test_explicit_overrides_ambient(self, protected):
        with use_layers(("verify",)):
            filt = build_filter(CONFIG, protected, layers=())
        assert isinstance(filt, BitmapFilter)

    def test_spec_parameters_reach_the_table(self, protected):
        spec = VerifySpec(initial_order=6, lifetime=7.0)
        filt = build_filter(CONFIG, protected, layers=(spec,))
        assert filt.table.order == 6
        assert filt.table.lifetime == 7.0


class TestBackendResolution:
    def test_serial_by_default(self, protected):
        assert get_backend() == ExecutionBackend()
        filt = build_filter(CONFIG, protected)
        assert isinstance(filt, BitmapFilter)

    def test_named_parallel_backend(self, protected):
        from repro.parallel import ShardedBitmapFilter

        with build_filter(CONFIG, protected, backend="sharded",
                          workers=2) as filt:
            assert isinstance(filt, ShardedBitmapFilter)

    def test_ambient_backend_with_layers(self, protected):
        from repro.parallel import SharedBitmapFilter

        with use_backend(name="shared", workers=2):
            filt = build_filter(CONFIG, protected, layers=("verify",))
        try:
            assert isinstance(filt, HybridVerifiedFilter)
            assert isinstance(filt.inner, SharedBitmapFilter)
        finally:
            filt.close()

    def test_unknown_backend_rejected(self, protected):
        with pytest.raises(ValueError):
            build_filter(CONFIG, protected, backend="quantum")

    def test_fail_policy_and_config_fields(self, protected):
        filt = build_filter(protected=protected, order=12,
                            rotation_interval=2.0,
                            fail_policy=FailPolicy.FAIL_OPEN,
                            layers=("verify",))
        assert filt.fail_policy is FailPolicy.FAIL_OPEN
        assert filt.config.order == 12


class TestSnapshotRestore:
    def _run_and_snapshot(self, protected, client, server):
        filt = build_filter(CONFIG, protected,
                            layers=(VerifySpec(initial_order=4),))
        for i in range(20):
            request = make_request(1.0 + 0.1 * i, client, server,
                                   sport=15_000 + i)
            filt.process(request)
            filt.process(make_reply(request, request.ts + 0.04))
        buffer = io.BytesIO()
        save_filter(filt, buffer)
        buffer.seek(0)
        return filt, buffer

    def test_snapshot_rebuilds_recorded_stack(self, protected, client_addr,
                                              server_addr):
        filt, snap = self._run_and_snapshot(protected, client_addr,
                                            server_addr)
        restored = build_filter(snapshot=snap)
        assert isinstance(restored, HybridVerifiedFilter)
        assert restored.layers == filt.layers
        assert restored.table.state_digest() == filt.table.state_digest()
        assert restored.next_rotation == filt.next_rotation
        assert np.array_equal(
            np.stack([v.as_numpy() for v in restored.bitmap.vectors]),
            np.stack([v.as_numpy() for v in filt.bitmap.vectors]))

    def test_snapshot_layers_override_drops_table(self, protected,
                                                  client_addr, server_addr):
        _, snap = self._run_and_snapshot(protected, client_addr, server_addr)
        restored = build_filter(snapshot=snap, layers=())
        assert isinstance(restored, BitmapFilter)

    def test_snapshot_rejects_conflicting_arguments(self, protected):
        with pytest.raises(TypeError, match="snapshot"):
            build_filter(CONFIG, protected, snapshot=io.BytesIO())


class TestDeprecatedAliases:
    def test_parallel_create_filter_warns_and_delegates(self, protected):
        from repro.parallel import create_filter

        with pytest.warns(DeprecationWarning, match="build_filter"):
            filt = create_filter(CONFIG, protected)
        assert isinstance(filt, BitmapFilter)

    def test_create_filter_never_wraps_ambient_layers(self, protected):
        """The legacy factory predates layers; code written against it
        must keep getting bare filters even inside use_layers()."""
        from repro.parallel import create_filter

        with use_layers(("verify",)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                filt = create_filter(CONFIG, protected)
        assert isinstance(filt, BitmapFilter)

    def test_parallel_use_backend_warns(self):
        from repro.parallel import use_backend as legacy_use_backend

        with pytest.warns(DeprecationWarning, match="filter_api"):
            with legacy_use_backend(name="serial"):
                pass

    def test_build_filter_does_not_warn(self, protected):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_filter(CONFIG, protected)
