"""Tests for the close-aware bitmap filter extension."""

import pytest

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, Decision
from repro.core.close_aware import (
    CloseAwareBitmapFilter,
    CloseAwareConfig,
    TombstoneBitmap,
)
from repro.net.packet import TcpFlags
from tests.conftest import make_reply, make_request

CFG = BitmapFilterConfig(order=12, num_vectors=4, num_hashes=3,
                         rotation_interval=5.0)


@pytest.fixture()
def filt(protected):
    return CloseAwareBitmapFilter(CFG, protected,
                                  CloseAwareConfig(grace=2.5, lifetime=20.0))


class TestCloseAwareConfig:
    def test_vector_count(self):
        assert CloseAwareConfig(grace=2.5, lifetime=20.0).num_vectors == 9
        assert CloseAwareConfig(grace=2.0, lifetime=20.0).num_vectors == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            CloseAwareConfig(grace=0)
        with pytest.raises(ValueError):
            CloseAwareConfig(grace=5.0, lifetime=6.0)


class TestTombstoneBitmap:
    def test_marks_invisible_until_rotation(self):
        tomb = TombstoneBitmap(4, 8)
        tomb.mark([5, 6])
        assert not tomb.test([5, 6])   # current vector untouched
        tomb.rotate()
        assert tomb.test([5, 6])       # matured

    def test_marks_expire(self):
        tomb = TombstoneBitmap(4, 8)
        tomb.mark([9])
        for _ in range(4):
            tomb.rotate()
        assert not tomb.test([9])

    def test_marks_persist_between_maturity_and_expiry(self):
        tomb = TombstoneBitmap(5, 8)
        tomb.mark([3])
        hits = []
        for _ in range(6):
            tomb.rotate()
            hits.append(tomb.test([3]))
        assert hits == [True, True, True, True, False, False]


class TestCloseAwareSemantics:
    def test_ordinary_replies_pass(self, filt, client_addr, server_addr):
        request = make_request(1.0, client_addr, server_addr)
        assert filt.process(request) is Decision.PASS
        assert filt.process(make_reply(request, 1.2)) is Decision.PASS

    def test_close_handshake_passes(self, filt, client_addr, server_addr):
        request = make_request(1.0, client_addr, server_addr)
        filt.process(request)
        fin = make_request(2.0, client_addr, server_addr,
                           flags=TcpFlags.FIN | TcpFlags.ACK)
        filt.process(fin)
        # Reply FIN/ACK arrives before the tombstone matures: passes.
        assert filt.process(
            make_reply(request, 2.1, flags=TcpFlags.FIN | TcpFlags.ACK)
        ) is Decision.PASS

    def test_post_close_straggler_dropped(self, filt, client_addr, server_addr):
        """The headline: stragglers inside Te are now dropped (SPI-style)."""
        request = make_request(1.0, client_addr, server_addr)
        filt.process(request)
        fin = make_request(2.0, client_addr, server_addr,
                           flags=TcpFlags.FIN | TcpFlags.ACK)
        filt.process(fin)
        straggler = make_reply(request, 9.0)   # 7s post-close, inside Te
        assert filt.process(straggler) is Decision.DROP
        assert filt.dropped_after_close == 1

    def test_plain_bitmap_passes_the_same_straggler(self, protected,
                                                    client_addr, server_addr):
        plain = BitmapFilter(CFG, protected)
        request = make_request(1.0, client_addr, server_addr)
        plain.process(request)
        plain.process(make_request(2.0, client_addr, server_addr,
                                   flags=TcpFlags.FIN | TcpFlags.ACK))
        assert plain.process(make_reply(request, 9.0)) is Decision.PASS

    def test_incoming_fin_also_tombstones(self, filt, client_addr, server_addr):
        request = make_request(1.0, client_addr, server_addr)
        filt.process(request)
        fin = make_reply(request, 2.0, flags=TcpFlags.FIN | TcpFlags.ACK)
        assert filt.process(fin) is Decision.PASS
        straggler = make_reply(request, 9.0)
        assert filt.process(straggler) is Decision.DROP

    def test_tombstone_expires(self, protected, client_addr, server_addr):
        filt = CloseAwareBitmapFilter(
            CFG, protected, CloseAwareConfig(grace=2.5, lifetime=10.0))
        request = make_request(1.0, client_addr, server_addr)
        filt.process(request)
        filt.process(make_request(2.0, client_addr, server_addr,
                                  flags=TcpFlags.FIN | TcpFlags.ACK))
        # Refresh the data mark so only the tombstone can block.
        filt.process(make_request(14.0, client_addr, server_addr))
        late = make_reply(request, 15.5)   # tombstone (lifetime 10s) expired
        assert filt.process(late) is Decision.PASS

    def test_unsolicited_still_dropped(self, filt, client_addr, server_addr):
        from repro.net.packet import Packet
        from repro.net.protocols import IPPROTO_TCP

        stray = Packet(1.0, IPPROTO_TCP, server_addr, 1, client_addr, 2)
        assert filt.process(stray) is Decision.DROP

    def test_memory_accounting(self, filt):
        expected = CFG.memory_bytes + 9 * (1 << CFG.order) // 8
        assert filt.memory_bytes == expected

    def test_udp_never_tombstoned(self, filt, client_addr, server_addr):
        from repro.net.protocols import IPPROTO_UDP

        request = make_request(1.0, client_addr, server_addr,
                               proto=IPPROTO_UDP, flags=TcpFlags.NONE)
        filt.process(request)
        assert filt.closes_recorded == 0


class TestPrecisionComparison:
    def test_lands_between_bitmap_and_spi(self, protected):
        """On the real workload, post-close drops: bitmap < close-aware ~ SPI."""
        from repro.spi.naive import NaiveExactFilter
        from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig

        config = WorkloadConfig(duration=90.0, target_pps=300.0, seed=44,
                                background_noise_fraction=0.0)
        trace = ClientNetworkWorkload(config).generate()

        plain = BitmapFilter(CFG, trace.protected)
        plain_verdicts = plain.process_batch(trace.packets, exact=True)

        aware = CloseAwareBitmapFilter(CFG, trace.protected)
        aware_verdicts = aware.process_batch(trace.packets)

        spi = NaiveExactFilter(trace.protected, idle_timeout=240.0)
        spi_verdicts = spi.process_batch(trace.packets)

        incoming = trace.packets.directions(trace.protected) == 1
        plain_drops = int((~plain_verdicts[incoming]).sum())
        aware_drops = int((~aware_verdicts[incoming]).sum())
        spi_drops = int((~spi_verdicts[incoming]).sum())

        # Close-aware drops strictly more than the plain bitmap (the
        # stragglers), approaching the close-tracking SPI's count.
        assert aware_drops > plain_drops
        assert aware.dropped_after_close > 0
        assert aware_drops >= 0.5 * spi_drops
