"""Tests for repro.core.hole_punch — Section 5.1."""

from repro.core.bitmap_filter import BitmapFilter, Decision
from repro.core.hole_punch import HolePuncher, hole_punch_packet
from repro.net.packet import Packet, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP


class TestHolePunchPacket:
    def test_fields(self, client_addr, server_addr):
        pkt = hole_punch_packet(1.0, IPPROTO_TCP, client_addr, 20, server_addr,
                                random_port=9999)
        assert pkt.src == client_addr
        assert pkt.sport == 20
        assert pkt.dst == server_addr
        assert pkt.dport == 9999
        assert pkt.is_tcp

    def test_random_port_generated(self, client_addr, server_addr):
        import random

        pkt = hole_punch_packet(1.0, IPPROTO_TCP, client_addr, 20, server_addr,
                                rng=random.Random(1))
        assert 1024 <= pkt.dport <= 65535

    def test_udp_has_no_flags(self, client_addr, server_addr):
        pkt = hole_punch_packet(1.0, IPPROTO_UDP, client_addr, 20, server_addr,
                                random_port=1)
        assert pkt.flags == TcpFlags.NONE


class TestActiveFtpScenario:
    """The paper's worked example: active-mode FTP through the filter."""

    def test_hole_punch_admits_server_initiated_channel(
        self, bitmap_filter, client_addr, server_addr
    ):
        # Without a punch, the server's active connection is dropped.
        inbound = Packet(1.0, IPPROTO_TCP, server_addr, 20, client_addr, 5001,
                         TcpFlags.SYN)
        assert bitmap_filter.process(inbound) is Decision.DROP

        # Punch a hole for local port 5001, then the same inbound passes.
        puncher = HolePuncher(client_addr, seed=7)
        punch = puncher.punch(ts=2.0, local_port=5001, server_addr=server_addr)
        assert bitmap_filter.process(punch) is Decision.PASS
        retry = Packet(2.5, IPPROTO_TCP, server_addr, 20, client_addr, 5001,
                       TcpFlags.SYN)
        assert bitmap_filter.process(retry) is Decision.PASS

    def test_hole_is_port_specific(self, bitmap_filter, client_addr, server_addr):
        puncher = HolePuncher(client_addr)
        bitmap_filter.process(puncher.punch(ts=1.0, local_port=5001,
                                            server_addr=server_addr))
        other_port = Packet(1.5, IPPROTO_TCP, server_addr, 20, client_addr, 5002,
                            TcpFlags.SYN)
        assert bitmap_filter.process(other_port) is Decision.DROP

    def test_hole_is_server_specific(self, bitmap_filter, client_addr, server_addr):
        puncher = HolePuncher(client_addr)
        bitmap_filter.process(puncher.punch(ts=1.0, local_port=5001,
                                            server_addr=server_addr))
        other_server = Packet(1.5, IPPROTO_TCP, 0x01020304, 20, client_addr, 5001,
                              TcpFlags.SYN)
        assert bitmap_filter.process(other_server) is Decision.DROP

    def test_hole_accepts_any_remote_source_port(
        self, bitmap_filter, client_addr, server_addr
    ):
        """The remote port was unknown at punch time — any port must work."""
        puncher = HolePuncher(client_addr)
        bitmap_filter.process(puncher.punch(ts=1.0, local_port=5001,
                                            server_addr=server_addr))
        for sport in (20, 2020, 54321):
            inbound = Packet(1.5, IPPROTO_TCP, server_addr, sport, client_addr,
                             5001, TcpFlags.SYN)
            assert bitmap_filter.process(inbound) is Decision.PASS

    def test_hole_expires(self, small_config, protected, client_addr, server_addr):
        from repro.core.bitmap_filter import BitmapFilter

        filt = BitmapFilter(small_config, protected)
        puncher = HolePuncher(client_addr)
        filt.process(puncher.punch(ts=1.0, local_port=5001, server_addr=server_addr))
        late = Packet(1.0 + small_config.expiry_timer + 5.1, IPPROTO_TCP,
                      server_addr, 20, client_addr, 5001, TcpFlags.SYN)
        assert filt.process(late) is Decision.DROP
