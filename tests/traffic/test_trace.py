"""Tests for repro.traffic.trace — persistence, merging, summaries."""

import numpy as np
import pytest

from repro.net.address import AddressSpace
from repro.net.packet import PacketArray, PacketLabel
from repro.traffic.trace import Trace
from tests.conftest import make_reply, make_request


@pytest.fixture()
def small_trace(protected, client_addr, server_addr):
    request = make_request(1.0, client_addr, server_addr)
    packets = PacketArray.from_packets(
        [request, make_reply(request, 1.5), make_request(3.0, client_addr, server_addr)]
    )
    return Trace(packets, protected, {"duration": 10.0, "kind": "test"})


class TestSummary:
    def test_fields(self, small_trace):
        summary = small_trace.summary()
        assert summary.num_packets == 3
        assert summary.duration == 10.0
        assert summary.packets_per_second == pytest.approx(0.3)
        assert summary.tcp_fraction == 1.0
        assert summary.udp_fraction == 0.0
        assert summary.attack_fraction == 0.0

    def test_bandwidth(self, small_trace):
        summary = small_trace.summary()
        total_bits = float(small_trace.packets.size.sum()) * 8
        assert summary.bandwidth_mbps == pytest.approx(total_bits / 10.0 / 1e6)

    def test_empty_trace(self, protected):
        trace = Trace(PacketArray.empty(), protected)
        summary = trace.summary()
        assert summary.num_packets == 0
        assert summary.packets_per_second == 0.0

    def test_describe_readable(self, small_trace):
        text = small_trace.summary().describe()
        assert "packets" in text and "TCP" in text

    def test_duration_falls_back_to_span(self, protected, client_addr, server_addr):
        packets = PacketArray.from_packets(
            [make_request(2.0, client_addr, server_addr),
             make_request(7.0, client_addr, server_addr)]
        )
        trace = Trace(packets, protected)
        assert trace.duration == pytest.approx(5.0)


class TestMerge:
    def test_merged_sorted(self, small_trace, protected, client_addr, server_addr):
        other = Trace(
            PacketArray.from_packets([make_request(0.5, client_addr, server_addr),
                                      make_request(2.0, client_addr, server_addr)]),
            protected,
            {"duration": 4.0},
        )
        merged = small_trace.merged_with(other)
        assert len(merged) == 5
        assert bool(np.all(np.diff(merged.packets.ts) >= 0))
        assert merged.duration == 10.0
        assert merged.metadata["merged_from"] == 2

    def test_time_slice(self, small_trace):
        sliced = small_trace.time_slice(1.2, 3.5)
        assert len(sliced) == 2
        assert sliced.duration == pytest.approx(2.3)


class TestPersistence:
    def test_npz_round_trip(self, small_trace, tmp_path):
        path = tmp_path / "trace.npz"
        small_trace.save_npz(path)
        loaded = Trace.load_npz(path)
        assert len(loaded) == len(small_trace)
        assert bool(np.array_equal(loaded.packets.data, small_trace.packets.data))
        assert loaded.metadata["kind"] == "test"
        assert [str(n) for n in loaded.protected.networks] == [
            str(n) for n in small_trace.protected.networks
        ]

    def test_csv_round_trip(self, small_trace, tmp_path, protected):
        path = tmp_path / "trace.csv"
        small_trace.save_csv(path)
        loaded = Trace.load_csv(path, protected)
        assert len(loaded) == len(small_trace)
        assert bool(np.array_equal(loaded.packets.src, small_trace.packets.src))
        assert loaded.packets.ts == pytest.approx(small_trace.packets.ts)

    def test_csv_is_human_readable(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        small_trace.save_csv(path)
        header = path.read_text().splitlines()[0]
        assert header == "ts,proto,src,sport,dst,dport,flags,size,label"

    def test_labels_survive_round_trip(self, protected, client_addr, server_addr, tmp_path):
        from dataclasses import replace

        pkt = replace(make_request(1.0, client_addr, server_addr),
                      label=PacketLabel.ATTACK)
        trace = Trace(PacketArray.from_packets([pkt]), protected)
        path = tmp_path / "t.npz"
        trace.save_npz(path)
        assert Trace.load_npz(path).packets.packet(0).label == PacketLabel.ATTACK
