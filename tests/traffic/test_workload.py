"""Tests for repro.traffic.workload — the session model."""

import random

import pytest

from repro.net.packet import TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP
from repro.traffic.applications import profile_by_name
from repro.traffic.workload import SessionFactory, SessionSpec

CLIENT = 0xAC100A0A
SERVER = 0x08080808

_SYN = int(TcpFlags.SYN)
_ACK = int(TcpFlags.ACK)
_FIN = int(TcpFlags.FIN)
_RST = int(TcpFlags.RST)


def _spec(profile_name="http", start=100.0, sport=30000, dport=None):
    profile = profile_by_name(profile_name)
    return SessionSpec(
        profile=profile,
        client_addr=CLIENT,
        client_port=sport,
        server_addr=SERVER,
        server_port=dport or profile.server_ports[0],
        start_ts=start,
    )


def _build(seed=0, **kwargs):
    factory = SessionFactory(random.Random(seed))
    return factory.build(_spec(**kwargs))


class TestTcpSessions:
    def test_starts_with_syn_handshake(self):
        pkts = _build()
        ts0, proto, src, sport, dst, dport, flags, _ = pkts[0]
        assert proto == IPPROTO_TCP
        assert src == CLIENT and dst == SERVER
        assert flags == _SYN
        # SYN+ACK back, then client ACK.
        assert pkts[1][2] == SERVER and pkts[1][6] == (_SYN | _ACK)
        assert pkts[2][2] == CLIENT and pkts[2][6] == _ACK

    def test_timestamps_monotonic_nondecreasing(self):
        for seed in range(10):
            pkts = _build(seed=seed)
            times = [p[0] for p in pkts]
            assert times == sorted(times)

    def test_session_contains_close(self):
        pkts = _build(seed=1)
        assert any(p[6] & (_FIN | _RST) for p in pkts)

    def test_endpoints_never_change(self):
        for p in _build(seed=2):
            endpoints = {(p[2], p[3]), (p[4], p[5])}
            assert endpoints == {(CLIENT, 30000), (SERVER, 80)}

    def test_starts_at_requested_time(self):
        pkts = _build(start=777.0)
        assert pkts[0][0] == 777.0

    def test_bidirectional(self):
        pkts = _build(seed=3)
        out = sum(1 for p in pkts if p[2] == CLIENT)
        inc = sum(1 for p in pkts if p[2] == SERVER)
        assert out > 0 and inc > 0

    def test_deterministic_given_seed(self):
        assert _build(seed=7) == _build(seed=7)
        assert _build(seed=7) != _build(seed=8)


class TestServerIdleClose:
    def test_some_sessions_close_via_late_incoming_fin(self):
        """The Figure 2b mechanism: server FIN after a keep-alive timeout."""
        factory = SessionFactory(random.Random(5))
        late_fin_gaps = []
        for i in range(300):
            pkts = factory.build(_spec(sport=20000 + i))
            # Find incoming FINs and the latest prior outgoing packet.
            for idx, p in enumerate(pkts):
                if p[2] == SERVER and p[6] & _FIN:
                    prior_out = [q[0] for q in pkts[:idx] if q[2] == CLIENT]
                    if prior_out:
                        late_fin_gaps.append(p[0] - max(prior_out))
                    break
        long_gaps = [g for g in late_fin_gaps if g > 10.0]
        assert long_gaps, "no server idle-closes generated"
        # Gaps cluster near the configured keep-alive choices (15/30/60 +-8%).
        for gap in long_gaps:
            assert any(abs(gap - base) <= base * 0.12 for base in (15.0, 30.0, 60.0))


class TestStragglers:
    def test_straggler_rate_matches_probability(self):
        factory = SessionFactory(random.Random(6))
        factory.straggler_probability = 1.0
        pkts = factory.build(_spec())
        # With probability 1 the last packet is an incoming straggler.
        last = pkts[-1]
        assert last[2] == SERVER
        close_times = [p[0] for p in pkts if p[6] & (_FIN | _RST)]
        assert last[0] > max(close_times) + 2.9

    def test_no_stragglers_when_disabled(self):
        factory = SessionFactory(random.Random(6))
        factory.straggler_probability = 0.0
        factory.rst_close_probability = 0.0
        pkts = factory.build(_spec())
        # Session ends with the close handshake (an ACK within ~seconds).
        tail_gap = pkts[-1][0] - pkts[-2][0]
        assert tail_gap < 10.0


class TestUdpSessions:
    def test_no_flags_and_alternating_directions(self):
        factory = SessionFactory(random.Random(9))
        pkts = factory.build(_spec(profile_name="dns", dport=53))
        assert all(p[1] == IPPROTO_UDP for p in pkts)
        assert all(p[6] == 0 for p in pkts)
        assert pkts[0][2] == CLIENT  # client initiates

    def test_short(self):
        factory = SessionFactory(random.Random(10))
        pkts = factory.build(_spec(profile_name="dns", dport=53))
        assert 2 <= len(pkts) <= 20


class TestLifetimeScaling:
    def test_ssh_sessions_longer_on_average(self):
        factory = SessionFactory(random.Random(11))
        ssh = [factory.sample_lifetime(profile_by_name("ssh")) for _ in range(500)]
        http = [factory.sample_lifetime(profile_by_name("http")) for _ in range(500)]
        assert sum(ssh) / len(ssh) > 2.0 * sum(http) / len(http)
