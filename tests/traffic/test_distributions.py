"""Calibration tests: samplers must match the paper's Figure 2 statistics."""

import random

import pytest

from repro.traffic.distributions import (
    LifetimeDistribution,
    PacketSizeDistribution,
    ReplyDelayDistribution,
    percentile,
)


@pytest.fixture(scope="module")
def lifetime_samples():
    rng = random.Random(1)
    return sorted(LifetimeDistribution().sample_many(rng, 50_000))


@pytest.fixture(scope="module")
def delay_samples():
    rng = random.Random(2)
    return sorted(ReplyDelayDistribution().sample_many(rng, 50_000))


class TestLifetimeCalibration:
    """Fig. 2a: 90% < 76 s, 95% < 6 min, <1% > 515 s."""

    def test_p90_near_paper(self, lifetime_samples):
        p90 = percentile(lifetime_samples, 90)
        assert 40 < p90 < 90

    def test_p95_under_six_minutes(self, lifetime_samples):
        assert percentile(lifetime_samples, 95) < 360

    def test_tail_fraction_over_515s(self, lifetime_samples):
        frac = sum(1 for v in lifetime_samples if v > 515) / len(lifetime_samples)
        assert frac < 0.01
        assert frac > 0.0005  # the tail exists (the trace max was 6 hours)

    def test_capped_at_six_hours(self, lifetime_samples):
        assert lifetime_samples[-1] <= 6 * 3600.0

    def test_positive(self, lifetime_samples):
        assert lifetime_samples[0] > 0

    def test_wide_dynamic_range(self, lifetime_samples):
        """Milliseconds to hours, as in the paper's Fig. 2a."""
        assert percentile(lifetime_samples, 1) < 0.5
        assert lifetime_samples[-1] > 1000


class TestDelayCalibration:
    """Fig. 2c: 95% < 0.8 s, 99% < 2.8 s."""

    def test_p95_under_0_8(self, delay_samples):
        assert percentile(delay_samples, 95) < 0.8

    def test_p99_under_2_8(self, delay_samples):
        assert percentile(delay_samples, 99) < 2.8

    def test_bulk_is_fast(self, delay_samples):
        assert percentile(delay_samples, 50) < 0.1

    def test_capped(self, delay_samples):
        assert delay_samples[-1] <= ReplyDelayDistribution.MAX_DELAY


class TestPacketSizes:
    def test_data_sizes_bimodal(self):
        rng = random.Random(3)
        dist = PacketSizeDistribution()
        sizes = [dist.sample_data(rng) for _ in range(20_000)]
        small = sum(1 for s in sizes if s <= 120)
        large = sum(1 for s in sizes if s >= 1200)
        assert small + large == len(sizes)
        assert 0.2 < small / len(sizes) < 0.35

    def test_control_sizes(self):
        rng = random.Random(4)
        dist = PacketSizeDistribution()
        for _ in range(100):
            assert 40 <= dist.sample_control(rng) <= 60


class TestPercentileHelper:
    def test_nearest_rank(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 50) == 2.0
        assert percentile(data, 100) == 4.0
        assert percentile(data, 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestMixtureValidation:
    def test_weights_must_sum_to_one(self):
        from repro.traffic.distributions import _LogNormalComponent, _LogNormalMixture

        with pytest.raises(ValueError):
            _LogNormalMixture([_LogNormalComponent(0.5, 1.0, 1.0)], cap=10.0)
