"""Seed stability: a fixed workload seed reproduces the same trace, always.

The generators draw only from ``random.Random(seed)`` and seeded numpy
generators — never from ``hash()``, set/dict iteration order of unordered
inputs, or wall-clock time — so a fixed seed must yield a byte-identical
packet table (a) across repeated in-process runs and (b) across interpreter
launches with different ``PYTHONHASHSEED`` values.  ``Trace.digest()`` is
the fingerprint the assertions compare.
"""

import os
import subprocess
import sys

import pytest

from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig
from repro.traffic.trace import Trace

CONFIG = WorkloadConfig(duration=20.0, target_pps=150.0, seed=1234)

_DIGEST_SCRIPT = """
from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig
trace = ClientNetworkWorkload(
    WorkloadConfig(duration=20.0, target_pps=150.0, seed=1234)).generate()
print(trace.digest())
"""


def _generate():
    return ClientNetworkWorkload(CONFIG).generate()


def test_digest_is_a_sha256_hex_string():
    digest = _generate().digest()
    assert len(digest) == 64
    int(digest, 16)  # raises if not hex


def test_digest_detects_any_field_change():
    trace = _generate()
    before = trace.digest()
    trace.packets.data["sport"][0] += 1
    assert trace.digest() != before


def test_same_seed_same_digest_in_process():
    assert _generate().digest() == _generate().digest()


def test_different_seeds_differ():
    from dataclasses import replace

    other = ClientNetworkWorkload(replace(CONFIG, seed=4321)).generate()
    assert other.digest() != _generate().digest()


def test_digest_survives_npz_round_trip(tmp_path):
    trace = _generate()
    path = tmp_path / "trace.npz"
    trace.save_npz(path)
    assert Trace.load_npz(path).digest() == trace.digest()


@pytest.mark.slow
def test_same_seed_same_digest_across_hash_seeds():
    """Fresh interpreters with adversarial PYTHONHASHSEED values must all
    reproduce the in-process digest — generation cannot depend on str/bytes
    hash randomization."""
    expected = _generate().digest()
    digests = {}
    for hash_seed in ("0", "1", "42"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), *sys.path) if p)
        out = subprocess.run(
            [sys.executable, "-c", _DIGEST_SCRIPT],
            capture_output=True, text=True, env=env, check=True, timeout=300)
        digests[hash_seed] = out.stdout.strip()
    assert set(digests.values()) == {expected}, digests
