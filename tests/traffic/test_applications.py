"""Tests for repro.traffic.applications."""

import random

import pytest

from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP
from repro.traffic.applications import (
    ApplicationProfile,
    default_application_mix,
    profile_by_name,
)


class TestDefaultMix:
    def test_has_both_transports(self):
        mix = default_application_mix()
        protos = {p.protocol for p in mix}
        assert protos == {IPPROTO_TCP, IPPROTO_UDP}

    def test_udp_session_share_sized_for_packet_target(self):
        """UDP needs a big session share to reach 3.75% of *packets*."""
        mix = default_application_mix()
        total = sum(p.weight for p in mix)
        udp = sum(p.weight for p in mix if p.protocol == IPPROTO_UDP)
        assert 0.25 < udp / total < 0.5

    def test_http_like_profiles_have_idle_close(self):
        http = profile_by_name("http")
        assert http.server_close_probability > 0
        assert all(t in (15.0, 30.0, 60.0) for t in http.server_idle_close_choices)

    def test_names_unique(self):
        mix = default_application_mix()
        names = [p.name for p in mix]
        assert len(names) == len(set(names))

    def test_well_known_ports(self):
        assert 80 in profile_by_name("http").server_ports
        assert profile_by_name("dns").server_ports == (53,)
        assert profile_by_name("ssh").lifetime_scale > 1.0


class TestProfileBehaviour:
    def test_pick_port(self):
        rng = random.Random(0)
        profile = profile_by_name("http")
        for _ in range(20):
            assert profile.pick_port(rng) in profile.server_ports

    def test_pick_idle_close_jitters(self):
        rng = random.Random(0)
        profile = profile_by_name("http")
        values = {profile.pick_idle_close(rng) for _ in range(50)}
        assert len(values) > 10
        assert all(13.0 < v < 66.0 for v in values)

    def test_is_tcp(self):
        assert profile_by_name("http").is_tcp
        assert not profile_by_name("dns").is_tcp


class TestValidation:
    def test_bad_protocol(self):
        with pytest.raises(ValueError):
            ApplicationProfile("x", 99, (1,), 0.1)

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            ApplicationProfile("x", IPPROTO_TCP, (1,), -0.1)

    def test_server_close_needs_choices(self):
        with pytest.raises(ValueError):
            ApplicationProfile("x", IPPROTO_TCP, (1,), 0.1,
                               server_close_probability=0.5)

    def test_unknown_profile_name(self):
        with pytest.raises(KeyError):
            profile_by_name("gopher")
