"""Tests for non-homogeneous session arrivals (diurnal/burst profiles)."""

import numpy as np
import pytest

from repro.traffic.generator import (
    ClientNetworkWorkload,
    WorkloadConfig,
    burst_profile,
    diurnal_profile,
)


def _packet_rate(trace, start, end):
    ts = trace.packets.ts
    count = int(((ts >= start) & (ts < end)).sum())
    return count / (end - start)


class TestBurstProfile:
    def test_multiplier_values(self):
        profile = burst_profile([(10.0, 20.0, 5.0)], base=1.0)
        assert profile(5.0) == 1.0
        assert profile(10.0) == 5.0
        assert profile(19.999) == 5.0
        assert profile(20.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            burst_profile([(10.0, 5.0, 2.0)])
        with pytest.raises(ValueError):
            burst_profile([(0.0, 1.0, 0.0)])

    def test_flash_crowd_in_generated_trace(self):
        config = WorkloadConfig(duration=60.0, session_rate=15.0, seed=9)
        workload = ClientNetworkWorkload(
            config, rate_profile=burst_profile([(20.0, 40.0, 4.0)]))
        trace = workload.generate()
        quiet = _packet_rate(trace, 0.0, 20.0)
        burst = _packet_rate(trace, 20.0, 40.0)
        assert burst > 2.5 * quiet

    def test_flash_crowd_is_not_dropped_by_the_filter(self):
        """Section 2's point: a volume surge of *legitimate* traffic must
        not hurt a symmetry-based filter (unlike a volume trigger)."""
        from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig

        config = WorkloadConfig(duration=60.0, session_rate=15.0, seed=9,
                                background_noise_fraction=0.0)
        workload = ClientNetworkWorkload(
            config, rate_profile=burst_profile([(20.0, 40.0, 4.0)]))
        trace = workload.generate()
        filt = BitmapFilter(
            BitmapFilterConfig(order=14, num_vectors=4, num_hashes=3,
                               rotation_interval=5.0),
            trace.protected,
        )
        verdicts = filt.process_batch(trace.packets, exact=True)
        incoming = trace.packets.directions(trace.protected) == 1
        in_burst = incoming & (trace.packets.ts >= 20) & (trace.packets.ts < 40)
        drop_rate = float((~verdicts[in_burst]).mean())
        assert drop_rate < 0.05


class TestDiurnalProfile:
    def test_range_and_peak_location(self):
        profile = diurnal_profile(peak_factor=3.0, period=100.0, peak_at=0.5)
        values = [profile(t) for t in np.linspace(0, 100, 201)]
        assert min(values) == pytest.approx(1.0, abs=1e-6)
        assert max(values) == pytest.approx(3.0, abs=1e-6)
        assert profile(50.0) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_profile(peak_factor=0.5)
        with pytest.raises(ValueError):
            diurnal_profile(period=0)

    def test_generated_trace_follows_the_cycle(self):
        config = WorkloadConfig(duration=120.0, session_rate=15.0, seed=3)
        workload = ClientNetworkWorkload(
            config,
            rate_profile=diurnal_profile(peak_factor=3.0, period=120.0,
                                         peak_at=0.5),
        )
        trace = workload.generate()
        trough = _packet_rate(trace, 0.0, 20.0)
        peak = _packet_rate(trace, 50.0, 70.0)
        assert peak > 1.5 * trough


class TestDeterminism:
    def test_profiled_generation_is_seeded(self):
        config = WorkloadConfig(duration=30.0, session_rate=10.0, seed=4)
        profile = burst_profile([(10.0, 20.0, 2.0)])
        a = ClientNetworkWorkload(config, rate_profile=profile).generate()
        b = ClientNetworkWorkload(config, rate_profile=profile).generate()
        assert len(a) == len(b)
        assert bool(np.array_equal(a.packets.data, b.packets.data))

    def test_no_profile_path_unchanged(self, tiny_trace):
        """Adding the feature must not disturb existing seeded traces."""
        from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig

        config = WorkloadConfig(duration=60.0, target_pps=300.0, seed=99,
                                hosts_per_network=20)
        regenerated = ClientNetworkWorkload(config).generate()
        assert len(regenerated) == len(tiny_trace)
        assert bool(np.array_equal(regenerated.packets.data,
                                   tiny_trace.packets.data))
