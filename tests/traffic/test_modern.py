"""Modern traffic models: CDF sampling, NAT, IPv6 folding, seed stability.

The modern workload (:mod:`repro.traffic.modern`) feeds the multi-site
scenario engine, so its determinism contract is the same one the campus
generator honors: draws come only from ``random.Random(seed)`` and seeded
numpy generators, never ``hash()`` — a fixed seed yields a byte-identical
packet table in-process, across interpreter launches with adversarial
``PYTHONHASHSEED`` values, and across releases (the pinned digests below).
"""

import os
import subprocess
import sys
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.net.address import AddressSpace
from repro.traffic.modern import (
    DATA_MINING,
    WEB_SEARCH,
    FlowSizeCDF,
    Ipv6Folding,
    ModernWorkload,
    ModernWorkloadConfig,
    NatPool,
    asymmetric_route,
    generate_modern_trace,
    mix_cdf,
)
from tests.strategies import flow_size_cdfs

import random

SPACE = AddressSpace.class_c_block("172.16.0.0", 2)

#: Release-pinned digests: regenerating these traces on any interpreter must
#: reproduce these exact SHA-256 fingerprints.  A change here is a
#: generator-behavior change and must be deliberate.
PINNED = {
    "web-search": "a7b4906f3ea870e9e5d05aa4fe375907c13dd6b0d282daf409be58a029f0f9ef",
    "data-mining-nat-v6-asym":
        "a9ddb9686a5a3f20a0f6f3c96f5930f84ffd5d6766f87e3db9c23728cc6983b8",
}

_DIGEST_SCRIPT = """
from repro.traffic.modern import generate_modern_trace
print(generate_modern_trace(
    "web-search", duration=12.0, target_pps=200.0, seed=1234).digest())
print(generate_modern_trace(
    "data-mining", duration=12.0, target_pps=200.0, seed=1234,
    nat_pool=4, ipv6=True, asymmetry=0.3).digest())
"""


def _web():
    return generate_modern_trace(
        "web-search", duration=12.0, target_pps=200.0, seed=1234)


def _dm():
    return generate_modern_trace(
        "data-mining", duration=12.0, target_pps=200.0, seed=1234,
        nat_pool=4, ipv6=True, asymmetry=0.3)


# ---------------------------------------------------------------- CDF model

def test_canonical_mixes_are_valid_and_distinct():
    assert mix_cdf("web-search") is WEB_SEARCH
    assert mix_cdf("data-mining") is DATA_MINING
    # Data-mining is the elephant-heavy mix of the pair.
    assert DATA_MINING.mean_kbytes() > WEB_SEARCH.mean_kbytes()


def test_cdf_rejects_malformed_points():
    with pytest.raises(ValueError):
        FlowSizeCDF("bad", ((0.5, 10.0),))            # does not end at 1.0
    with pytest.raises(ValueError):
        FlowSizeCDF("bad", ((0.9, 10.0), (1.0, 5.0)))  # sizes decrease
    with pytest.raises(ValueError):
        FlowSizeCDF("bad", ((1.0, 10.0), (1.0, 20.0)))  # probs not increasing
    with pytest.raises(ValueError):
        FlowSizeCDF("bad", ((1.0, -3.0),))             # non-positive size


@settings(max_examples=60, deadline=None)
@given(cdf=flow_size_cdfs(), seed=st.integers(0, 2**31 - 1))
def test_samples_stay_within_the_cdf_support(cdf, seed):
    rng = random.Random(seed)
    largest = cdf.points[-1][1]
    for _ in range(32):
        sample = cdf.sample_kbytes(rng)
        assert 0 < sample <= largest + 1e-9


@settings(max_examples=40, deadline=None)
@given(cdf=flow_size_cdfs(), seed=st.integers(0, 2**31 - 1))
def test_sampling_is_seed_deterministic(cdf, seed):
    a = [cdf.sample_kbytes(random.Random(seed)) for _ in range(4)]
    b = [cdf.sample_kbytes(random.Random(seed)) for _ in range(4)]
    assert a == b


def test_unknown_mix_name_raises():
    with pytest.raises(KeyError):
        mix_cdf("carrier-pigeon")


# ------------------------------------------------------------ NAT and IPv6

def test_nat_pool_bounds_unique_public_sources():
    pool = NatPool(SPACE, pool_size=4)
    rng = random.Random(99)
    addrs = {pool.translate(rng)[0] for _ in range(256)}
    assert 1 <= len(addrs) <= 4
    assert all(SPACE.contains_int(addr) for addr in addrs)


def test_nat_trace_uses_at_most_pool_size_outgoing_sources():
    trace = generate_modern_trace(
        "web-search", duration=8.0, target_pps=150.0, seed=7, nat_pool=3)
    packets = trace.packets
    outgoing = packets.directions(trace.protected) == 0
    assert len(np.unique(packets.src[outgoing])) <= 3


def test_ipv6_folding_is_stable_and_respects_direction():
    fold = Ipv6Folding(SPACE)
    client_v6 = int.from_bytes(b"\x20\x01" + b"\xab" * 14, "big")
    server_v6 = int.from_bytes(b"\x26\x06" + b"\xcd" * 14, "big")
    client = fold.fold_client(client_v6)
    server = fold.fold_server(server_v6)
    assert client == fold.fold_client(client_v6)
    assert server == fold.fold_server(server_v6)
    assert SPACE.contains_int(client)
    assert not SPACE.contains_int(server)


# ------------------------------------------------------- asymmetric routing

def test_asymmetric_route_drops_only_outgoing_packets():
    trace = _web()
    routed = asymmetric_route(trace, 0.4, seed=5)
    directions = trace.packets.directions(trace.protected)
    incoming_before = int(np.count_nonzero(directions == 1))
    routed_dirs = routed.packets.directions(routed.protected)
    assert int(np.count_nonzero(routed_dirs == 1)) == incoming_before
    assert len(routed.packets) < len(trace.packets)
    assert routed.metadata["asymmetric_fraction"] == 0.4


def test_asymmetric_route_is_deterministic():
    trace = _web()
    assert (asymmetric_route(trace, 0.4, seed=5).digest()
            == asymmetric_route(trace, 0.4, seed=5).digest())
    assert (asymmetric_route(trace, 0.4, seed=5).digest()
            != asymmetric_route(trace, 0.4, seed=6).digest())


def test_asymmetric_fraction_zero_is_identity():
    trace = _web()
    assert len(asymmetric_route(trace, 0.0, seed=5).packets) == len(
        trace.packets)


# ------------------------------------------------------------ seed stability

def test_config_requires_exactly_one_rate():
    with pytest.raises(ValueError):
        ModernWorkloadConfig(mix="web-search")
    with pytest.raises(ValueError):
        ModernWorkloadConfig(mix="web-search", flow_rate=1.0, target_pps=10.0)


def test_same_seed_same_digest_in_process():
    assert _web().digest() == _web().digest()
    assert _dm().digest() == _dm().digest()


def test_different_seeds_differ():
    other = generate_modern_trace(
        "web-search", duration=12.0, target_pps=200.0, seed=4321)
    assert other.digest() != _web().digest()


def test_digests_match_release_pins():
    assert _web().digest() == PINNED["web-search"]
    assert _dm().digest() == PINNED["data-mining-nat-v6-asym"]


def test_trace_metadata_names_the_mix():
    assert _web().metadata["kind"] == "modern-web-search"
    assert _dm().metadata["kind"] == "modern-data-mining"


@pytest.mark.slow
def test_same_seed_same_digest_across_hash_seeds():
    """Fresh interpreters with adversarial PYTHONHASHSEED values must all
    reproduce the pinned digests — the NAT pool, IPv6 folding, and CDF
    sampling paths cannot depend on str/bytes hash randomization."""
    expected = [PINNED["web-search"], PINNED["data-mining-nat-v6-asym"]]
    for hash_seed in ("0", "1", "42"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), *sys.path) if p)
        out = subprocess.run(
            [sys.executable, "-c", _DIGEST_SCRIPT],
            capture_output=True, text=True, env=env, check=True, timeout=300)
        assert out.stdout.split() == expected, hash_seed


def test_resolved_flow_rate_matches_target_pps_calibration():
    config = ModernWorkloadConfig(
        mix="web-search", duration=12.0, target_pps=200.0, seed=1234)
    workload = ModernWorkload(config)
    per_flow = workload.estimate_packets_per_flow()
    assert per_flow > 0
    assert workload.resolved_flow_rate() == pytest.approx(
        200.0 / per_flow)


def test_explicit_flow_rate_round_trips():
    config = ModernWorkloadConfig(
        mix="data-mining", duration=6.0, flow_rate=2.5, seed=3)
    assert ModernWorkload(config).resolved_flow_rate() == 2.5
