"""Tests for active-mode (server-initiated) sessions in the workload."""

import random

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.net.packet import TcpFlags
from repro.traffic.applications import (
    active_ftp_profile,
    default_application_mix,
    p2p_profile,
)
from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig
from repro.traffic.workload import SessionFactory, SessionSpec

CLIENT = 0xAC100A0A
SERVER = 0x08080808

_SYN = int(TcpFlags.SYN)


def _build(profile, seed=0):
    factory = SessionFactory(random.Random(seed))
    spec = SessionSpec(profile=profile, client_addr=CLIENT, client_port=30000,
                       server_addr=SERVER, server_port=profile.server_ports[0],
                       start_ts=10.0)
    return factory.build(spec)


class TestInboundChannelGeneration:
    def test_active_ftp_has_inbound_syn(self):
        pkts = _build(active_ftp_profile())
        inbound_syns = [p for p in pkts
                        if p[2] == SERVER and p[6] == _SYN]
        assert len(inbound_syns) == 1

    def test_p2p_has_one_to_three_channels(self):
        counts = set()
        for seed in range(12):
            pkts = _build(p2p_profile(), seed=seed)
            inbound_syns = [p for p in pkts if p[2] == SERVER and p[6] == _SYN]
            counts.add(len(inbound_syns))
        assert counts <= {1, 2, 3}
        assert len(counts) > 1

    def test_punch_precedes_inbound_syn(self):
        """With punch probability 1, an outgoing packet from the announced
        local port appears just before each inbound SYN."""
        pkts = _build(active_ftp_profile(hole_punch_probability=1.0), seed=3)
        for i, p in enumerate(pkts):
            if p[2] == SERVER and p[6] == _SYN:
                local_port = p[5]
                earlier_out = [q for q in pkts[:i]
                               if q[2] == CLIENT and q[3] == local_port]
                assert earlier_out, "no punch packet before the inbound SYN"

    def test_no_punch_when_disabled(self):
        pkts = _build(active_ftp_profile(hole_punch_probability=0.0), seed=3)
        for i, p in enumerate(pkts):
            if p[2] == SERVER and p[6] == _SYN:
                local_port = p[5]
                earlier_out = [q for q in pkts[:i]
                               if q[2] == CLIENT and q[3] == local_port]
                assert not earlier_out

    def test_timestamps_sorted(self):
        pkts = _build(p2p_profile(), seed=5)
        times = [p[0] for p in pkts]
        assert times == sorted(times)

    def test_default_mix_has_no_inbound_channels(self):
        for profile in default_application_mix():
            assert profile.inbound_channels == (0, 0)


class TestFilterCompatibilityInWorkload:
    def _run(self, punch_probability):
        mix = list(default_application_mix()) + [
            p2p_profile(weight=0.15, hole_punch_probability=punch_probability)
        ]
        config = WorkloadConfig(duration=60.0, target_pps=250.0, seed=31,
                                background_noise_fraction=0.0)
        trace = ClientNetworkWorkload(config, mix=mix).generate()
        filt = BitmapFilter(
            BitmapFilterConfig(order=14, num_vectors=4, num_hashes=3,
                               rotation_interval=5.0),
            trace.protected,
        )
        verdicts = filt.process_batch(trace.packets, exact=True)
        # Inbound channel SYNs: incoming TCP pure-SYN packets.
        pkts = trace.packets
        incoming = pkts.directions(trace.protected) == 1
        inbound_syn = incoming & (pkts.flags == _SYN)
        if not inbound_syn.any():
            pytest.skip("no inbound channels generated")
        return float(verdicts[inbound_syn].mean())

    def test_punching_saves_p2p_channels(self):
        assert self._run(punch_probability=1.0) > 0.95

    def test_legacy_clients_lose_channels(self):
        assert self._run(punch_probability=0.0) < 0.05
