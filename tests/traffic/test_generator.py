"""Tests for repro.traffic.generator — the full workload generator."""

import numpy as np
import pytest

from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP
from repro.traffic.generator import (
    ClientNetworkWorkload,
    WorkloadConfig,
    generate_client_trace,
)


class TestConfigValidation:
    def test_requires_exactly_one_rate(self):
        with pytest.raises(ValueError):
            WorkloadConfig(duration=10.0)
        with pytest.raises(ValueError):
            WorkloadConfig(duration=10.0, session_rate=1.0, target_pps=100.0)

    def test_duration_positive(self):
        with pytest.raises(ValueError):
            WorkloadConfig(duration=0, session_rate=1.0)

    def test_networks_positive(self):
        with pytest.raises(ValueError):
            WorkloadConfig(duration=1.0, session_rate=1.0, num_networks=0)


class TestGeneratedTrace:
    def test_trace_sorted(self, tiny_trace):
        ts = tiny_trace.packets.ts
        assert bool(np.all(np.diff(ts) >= 0))

    def test_paper_trace_shape(self, tiny_trace):
        """TCP/UDP mix and mean size track the paper's capture."""
        summary = tiny_trace.summary()
        assert 0.93 < summary.tcp_fraction < 0.985
        assert 0.015 < summary.udp_fraction < 0.07
        assert 600 < summary.mean_packet_size < 850

    def test_target_pps_calibration(self, tiny_trace):
        summary = tiny_trace.summary()
        # Heavy-tailed sessions make pps noisy; 2x band is the contract.
        assert 150 < summary.packets_per_second < 600

    def test_sessions_metadata(self, tiny_trace):
        assert tiny_trace.metadata["sessions"] > 100
        assert tiny_trace.metadata["kind"] == "client-workload"

    def test_addresses_respect_protected_space(self, tiny_trace):
        pkts = tiny_trace.packets
        directions = pkts.directions(tiny_trace.protected)
        # No transit traffic: everything touches the client networks.
        assert int((directions == 2).sum()) == 0

    def test_background_noise_present_and_labelled(self, tiny_trace):
        labels = tiny_trace.packets.label
        background = int((labels == 2).sum())
        assert background > 0
        assert background < 0.05 * len(labels)
        assert int((labels == 1).sum()) == 0  # no attack traffic in clean trace

    def test_deterministic_given_seed(self):
        config = WorkloadConfig(duration=20.0, target_pps=200.0, seed=5)
        a = ClientNetworkWorkload(config).generate()
        b = ClientNetworkWorkload(config).generate()
        assert len(a) == len(b)
        assert bool(np.array_equal(a.packets.data, b.packets.data))

    def test_different_seeds_differ(self):
        a = generate_client_trace(duration=20.0, target_pps=200.0, seed=1)
        b = generate_client_trace(duration=20.0, target_pps=200.0, seed=2)
        assert not np.array_equal(a.packets.data[:100], b.packets.data[:100])

    def test_noise_can_be_disabled(self):
        config = WorkloadConfig(duration=20.0, target_pps=200.0, seed=5,
                                background_noise_fraction=0.0)
        trace = ClientNetworkWorkload(config).generate()
        assert int((trace.packets.label != 0).sum()) == 0


class TestEphemeralPorts:
    def test_ports_cycle_within_range(self):
        config = WorkloadConfig(duration=5.0, session_rate=20.0, seed=8,
                                hosts_per_network=2, num_networks=1)
        workload = ClientNetworkWorkload(config)
        client = workload._clients[0]
        ports = [workload._next_port(client) for _ in range(100)]
        assert all(1024 <= p <= 65535 for p in ports)
        # Sequential allocation: consecutive values differ by 1 (mod span).
        assert ports[1] == 1024 + (ports[0] - 1024 + 1) % (65535 - 1024 + 1)


class TestCalibration:
    def test_estimate_packets_per_session_stable(self):
        config = WorkloadConfig(duration=10.0, target_pps=100.0, seed=3)
        workload = ClientNetworkWorkload(config)
        estimate = workload.estimate_packets_per_session()
        assert 5 < estimate < 200

    def test_estimate_does_not_disturb_generation(self):
        config = WorkloadConfig(duration=20.0, target_pps=200.0, seed=5)
        a = ClientNetworkWorkload(config)
        a.estimate_packets_per_session()
        trace_a = a.generate()
        trace_b = ClientNetworkWorkload(config).generate()
        assert len(trace_a) == len(trace_b)

    def test_explicit_session_rate(self):
        config = WorkloadConfig(duration=30.0, session_rate=10.0, seed=4)
        trace = ClientNetworkWorkload(config).generate()
        assert 150 < trace.metadata["sessions"] < 450


class TestServerPool:
    def test_servers_outside_protected(self):
        config = WorkloadConfig(duration=5.0, session_rate=5.0, seed=6)
        workload = ClientNetworkWorkload(config)
        assert not any(workload.protected.contains_int(s) for s in workload._servers)

    def test_zipf_popularity_concentrates(self):
        """The most popular servers should carry a visible share of sessions."""
        config = WorkloadConfig(duration=60.0, session_rate=30.0, seed=7)
        workload = ClientNetworkWorkload(config)
        trace = workload.generate()
        pkts = trace.packets
        outgoing = pkts[pkts.directions(trace.protected) == 0]
        counts = np.unique(outgoing.dst, return_counts=True)[1]
        counts.sort()
        top_share = counts[-10:].sum() / counts.sum()
        assert top_share > 0.15
