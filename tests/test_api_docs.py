"""The API reference stays regenerable and in sync with the package."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_generator_runs_and_matches_committed_doc():
    result = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "gen_api_docs.py")],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    generated = result.stdout
    committed = (REPO / "docs" / "api_reference.md").read_text()
    assert generated == committed, (
        "docs/api_reference.md is stale; regenerate with "
        "`python scripts/gen_api_docs.py > docs/api_reference.md`"
    )


def test_reference_covers_core_api():
    text = (REPO / "docs" / "api_reference.md").read_text()
    for symbol in ("BitmapFilter", "Bitmap", "HashFamily", "StatefulFilter",
                   "ClientNetworkWorkload", "RandomScanAttack", "IspTopology",
                   "AggregateRateLimiter", "CloseAwareBitmapFilter"):
        assert symbol in text, symbol
