"""Tests for repro.analysis.report."""

from repro.analysis.report import render_comparison, render_series, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows have equal width.
        assert len(set(len(line) for line in lines)) == 1

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456], [1.23e-7], [2.5e8]])
        assert "0.1235" in text
        assert "e-07" in text
        assert "e+08" in text


class TestRenderSeries:
    def test_downsamples(self):
        pairs = [(float(i), float(i * 2)) for i in range(100)]
        text = render_series("s", pairs, max_rows=10)
        assert len(text.splitlines()) <= 12

    def test_header(self):
        text = render_series("name", [(1.0, 2.0)], x_label="t", y_label="v")
        assert "name" in text and "t -> v" in text


class TestRenderComparison:
    def test_merges_keys(self):
        text = render_comparison("cmp", {"a": 1}, {"a": 2, "b": 3})
        assert "metric" in text
        assert "paper" in text and "measured" in text
        lines = text.splitlines()
        assert any("a" in line and "1" in line and "2" in line for line in lines)
        assert any("b" in line and "-" in line for line in lines)
