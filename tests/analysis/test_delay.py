"""Tests for repro.analysis.delay — the Section 3.2 measurement procedure."""

import pytest

from repro.analysis.delay import OutInDelayExtractor, out_in_delays
from repro.net.packet import PacketArray
from tests.conftest import make_reply, make_request


class TestProcedure:
    def test_basic_delay(self, protected, client_addr, server_addr):
        extractor = OutInDelayExtractor(protected, expiry_timer=600.0)
        request = make_request(10.0, client_addr, server_addr)
        extractor.observe(request)
        extractor.observe(make_reply(request, 10.4))
        assert extractor.delays == [pytest.approx(0.4)]

    def test_refresh_resets_t0(self, protected, client_addr, server_addr):
        """'Otherwise, the existing tuple is updated with the timestamp t.'"""
        extractor = OutInDelayExtractor(protected, expiry_timer=600.0)
        request = make_request(10.0, client_addr, server_addr)
        extractor.observe(request)
        extractor.observe(request.with_ts(20.0))
        extractor.observe(make_reply(request, 20.5))
        assert extractor.delays == [pytest.approx(0.5)]

    def test_unmatched_incoming_ignored(self, protected, client_addr, server_addr):
        extractor = OutInDelayExtractor(protected)
        request = make_request(10.0, client_addr, server_addr)
        extractor.observe(make_reply(request, 10.5))  # nothing stored
        assert extractor.delays == []

    def test_expiry_timer_discards_stale_tuples(self, protected, client_addr, server_addr):
        """'An expiry timer Te deletes existing address tuples when t-t0 > Te.'"""
        extractor = OutInDelayExtractor(protected, expiry_timer=600.0)
        request = make_request(10.0, client_addr, server_addr)
        extractor.observe(request)
        extractor.observe(make_reply(request, 700.0))
        assert extractor.delays == []
        assert extractor.stored_tuples == 0

    def test_delay_at_te_boundary_recorded(self, protected, client_addr, server_addr):
        extractor = OutInDelayExtractor(protected, expiry_timer=600.0)
        request = make_request(10.0, client_addr, server_addr)
        extractor.observe(request)
        extractor.observe(make_reply(request, 609.9))
        assert extractor.delays == [pytest.approx(599.9)]

    def test_internal_and_transit_ignored(self, protected):
        extractor = OutInDelayExtractor(protected)
        internal = make_request(1.0, protected.networks[0].host(1),
                                protected.networks[1].host(1))
        transit = make_request(1.0, 0x01010101, 0x02020202)
        extractor.observe(internal)
        extractor.observe(transit)
        assert extractor.stored_tuples == 0

    def test_exact_four_tuple_matching(self, protected, client_addr, server_addr):
        """Unlike the bitmap key, the measurement stores the full tuple."""
        from dataclasses import replace

        extractor = OutInDelayExtractor(protected)
        request = make_request(10.0, client_addr, server_addr, dport=80)
        extractor.observe(request)
        wrong_sport = replace(make_reply(request, 10.2), sport=8080)
        extractor.observe(wrong_sport)
        assert extractor.delays == []

    def test_multiple_replies_each_measured(self, protected, client_addr, server_addr):
        extractor = OutInDelayExtractor(protected)
        request = make_request(10.0, client_addr, server_addr)
        extractor.observe(request)
        extractor.observe(make_reply(request, 10.2))
        extractor.observe(make_reply(request, 10.4))
        assert extractor.delays == [pytest.approx(0.2), pytest.approx(0.4)]

    def test_validation(self, protected):
        with pytest.raises(ValueError):
            OutInDelayExtractor(protected, expiry_timer=0)


class TestArrayPath:
    def test_matches_scalar(self, protected, client_addr, server_addr):
        request = make_request(10.0, client_addr, server_addr)
        packets = [
            request,
            make_reply(request, 10.3),
            make_request(11.0, client_addr, server_addr, sport=6000),
            make_reply(request, 12.0),
        ]
        scalar = OutInDelayExtractor(protected)
        for pkt in packets:
            scalar.observe(pkt)
        vector = OutInDelayExtractor(protected)
        vector.observe_array(PacketArray.from_packets(packets))
        assert vector.delays == scalar.delays

    def test_trace_delays_match_paper_band(self, tiny_trace):
        delays = out_in_delays(tiny_trace.packets, tiny_trace.protected)
        assert len(delays) > 1000
        fast = sum(1 for d in delays if d < 2.8) / len(delays)
        assert fast > 0.95
