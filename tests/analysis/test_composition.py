"""Tests for repro.analysis.composition."""

import pytest

from repro.analysis.composition import composition
from repro.net.packet import PacketArray
from tests.conftest import make_reply, make_request


class TestComposition:
    def test_empty_trace(self, protected):
        report = composition(PacketArray.empty(), protected)
        assert report.total_packets == 0
        assert report.shares == []

    def test_simple_classification(self, protected, client_addr, server_addr):
        http = make_request(1.0, client_addr, server_addr, dport=80)
        packets = PacketArray.from_packets([
            http,
            make_reply(http, 1.1),                                    # sport=80
            make_request(2.0, client_addr, server_addr, dport=22),    # ssh
            make_request(3.0, client_addr, server_addr, dport=31337), # other
        ])
        report = composition(packets, protected)
        assert report.fraction_of("http") == pytest.approx(0.5)
        assert report.fraction_of("ssh") == pytest.approx(0.25)
        assert report.fraction_of("other-tcp") == pytest.approx(0.25)

    def test_incoming_uses_source_port(self, protected, client_addr, server_addr):
        """A reply from server:80 counts as HTTP even though dport is the
        client's ephemeral port."""
        request = make_request(1.0, client_addr, server_addr, dport=80)
        report = composition(PacketArray.from_packets([make_reply(request, 1.1)]),
                             protected)
        assert report.fraction_of("http") == 1.0

    def test_shares_sum_to_one(self, tiny_trace):
        report = composition(tiny_trace.packets, tiny_trace.protected)
        assert sum(s.fraction for s in report.shares) == pytest.approx(1.0)
        assert report.total_packets == len(tiny_trace)

    def test_generated_trace_matches_configured_mix(self, tiny_trace):
        """The workload's dominant applications show up as the top shares."""
        report = composition(tiny_trace.packets, tiny_trace.protected)
        top_names = {share.name for share in report.top(4)}
        assert "http" in top_names
        assert "https" in top_names
        # HTTP carries the most packets by construction (largest TCP weight).
        assert report.shares[0].name in ("http", "https")
        # DNS is a large *session* share but a small *packet* share.
        assert 0.005 < report.fraction_of("dns") < 0.08

    def test_describe_renders(self, tiny_trace):
        report = composition(tiny_trace.packets, tiny_trace.protected)
        text = report.describe()
        assert "application" in text
        assert "%" in text

    def test_bytes_accounted(self, protected, client_addr, server_addr):
        request = make_request(1.0, client_addr, server_addr, dport=80)
        report = composition(PacketArray.from_packets([request]), protected)
        assert report.shares[0].bytes == request.size
