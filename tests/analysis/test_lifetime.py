"""Tests for repro.analysis.lifetime."""

import pytest

from repro.analysis.lifetime import (
    ConnectionLifetimeExtractor,
    active_connection_counts,
    connection_lifetimes,
)
from repro.net.packet import PacketArray, TcpFlags
from repro.net.protocols import IPPROTO_UDP
from tests.conftest import make_reply, make_request


class TestExtractor:
    def test_syn_to_fin(self, client_addr, server_addr):
        extractor = ConnectionLifetimeExtractor()
        extractor.observe(make_request(10.0, client_addr, server_addr,
                                       flags=TcpFlags.SYN))
        extractor.observe(make_request(25.0, client_addr, server_addr,
                                       flags=TcpFlags.FIN | TcpFlags.ACK))
        assert extractor.lifetimes == [pytest.approx(15.0)]

    def test_syn_to_rst(self, client_addr, server_addr):
        extractor = ConnectionLifetimeExtractor()
        extractor.observe(make_request(10.0, client_addr, server_addr))
        extractor.observe(make_request(12.0, client_addr, server_addr,
                                       flags=TcpFlags.RST))
        assert extractor.lifetimes == [pytest.approx(2.0)]

    def test_fin_from_either_direction_ends(self, client_addr, server_addr):
        extractor = ConnectionLifetimeExtractor()
        request = make_request(10.0, client_addr, server_addr)
        extractor.observe(request)
        extractor.observe(make_reply(request, 40.0, flags=TcpFlags.FIN | TcpFlags.ACK))
        assert extractor.lifetimes == [pytest.approx(30.0)]

    def test_syn_retransmit_keeps_first_timestamp(self, client_addr, server_addr):
        extractor = ConnectionLifetimeExtractor()
        request = make_request(10.0, client_addr, server_addr)
        extractor.observe(request)
        extractor.observe(request.with_ts(13.0))  # SYN retransmit
        extractor.observe(make_request(20.0, client_addr, server_addr,
                                       flags=TcpFlags.FIN | TcpFlags.ACK))
        assert extractor.lifetimes == [pytest.approx(10.0)]

    def test_fin_without_syn_ignored(self, client_addr, server_addr):
        extractor = ConnectionLifetimeExtractor()
        extractor.observe(make_request(10.0, client_addr, server_addr,
                                       flags=TcpFlags.FIN | TcpFlags.ACK))
        assert extractor.lifetimes == []

    def test_synack_does_not_open(self, client_addr, server_addr):
        """Only a pure SYN starts the clock."""
        extractor = ConnectionLifetimeExtractor()
        extractor.observe(make_request(10.0, client_addr, server_addr,
                                       flags=TcpFlags.SYN | TcpFlags.ACK))
        assert extractor.open_connections == 0

    def test_udp_ignored(self, client_addr, server_addr):
        extractor = ConnectionLifetimeExtractor()
        extractor.observe(make_request(10.0, client_addr, server_addr,
                                       proto=IPPROTO_UDP, flags=TcpFlags.NONE))
        assert extractor.open_connections == 0

    def test_double_fin_counts_once(self, client_addr, server_addr):
        extractor = ConnectionLifetimeExtractor()
        extractor.observe(make_request(10.0, client_addr, server_addr))
        fin = make_request(20.0, client_addr, server_addr,
                           flags=TcpFlags.FIN | TcpFlags.ACK)
        extractor.observe(fin)
        extractor.observe(fin.with_ts(21.0))
        assert len(extractor.lifetimes) == 1

    def test_open_connections_tracked(self, client_addr, server_addr):
        extractor = ConnectionLifetimeExtractor()
        extractor.observe(make_request(10.0, client_addr, server_addr, sport=1025))
        extractor.observe(make_request(10.0, client_addr, server_addr, sport=1026))
        assert extractor.open_connections == 2


class TestArrayPath:
    def test_observe_array_matches_scalar(self, client_addr, server_addr):
        request = make_request(10.0, client_addr, server_addr)
        packets = [
            request,
            make_reply(request, 10.1, flags=TcpFlags.SYN | TcpFlags.ACK),
            make_request(10.2, client_addr, server_addr, flags=TcpFlags.ACK),
            make_request(42.0, client_addr, server_addr,
                         flags=TcpFlags.FIN | TcpFlags.ACK),
        ]
        scalar = ConnectionLifetimeExtractor()
        for pkt in packets:
            scalar.observe(pkt)
        vectorized = ConnectionLifetimeExtractor()
        vectorized.observe_array(PacketArray.from_packets(packets))
        assert vectorized.lifetimes == scalar.lifetimes

    def test_connection_lifetimes_on_trace(self, tiny_trace):
        lifetimes = connection_lifetimes(tiny_trace.packets)
        assert len(lifetimes) > 50
        assert all(lt >= 0 for lt in lifetimes)


class TestActiveConnectionCounts:
    def test_counts_distinct_tuples(self, tiny_trace):
        counts = active_connection_counts(tiny_trace.packets, tiny_trace.protected,
                                          window=20.0)
        assert len(counts) >= 2
        assert all(c > 0 for c in counts)

    def test_empty_trace(self, protected):
        assert active_connection_counts(PacketArray.empty(), protected, 20.0) == []
