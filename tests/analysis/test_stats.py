"""Tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis.stats import Cdf, Histogram, per_second_series, summarize_percentiles


class TestHistogram:
    def test_linear_bins(self):
        hist = Histogram.of([1.0, 2.0, 2.5, 9.0], bins=10, value_range=(0, 10))
        assert hist.counts.sum() == 4
        assert len(hist.edges) == 11
        assert len(hist.centers) == 10

    def test_log_bins(self):
        hist = Histogram.of([0.01, 0.1, 1.0, 10.0, 100.0], bins=20, log=True,
                            value_range=(0.01, 100.0))
        assert hist.counts.sum() == 5
        ratios = hist.edges[1:] / hist.edges[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_auto_range(self):
        hist = Histogram.of([5.0, 6.0, 7.0], bins=4)
        assert hist.edges[0] == 5.0
        assert hist.edges[-1] == 7.0

    def test_peak_bins_finds_comb(self):
        """A comb-shaped histogram yields its spikes."""
        counts = np.ones(50)
        counts[10] = 100
        counts[30] = 80
        hist = Histogram(edges=np.arange(51.0), counts=counts.astype(int))
        peaks = hist.peak_bins(min_prominence=2.0)
        assert 10 in peaks and 30 in peaks

    def test_peak_bins_flat_histogram(self):
        hist = Histogram(edges=np.arange(11.0), counts=np.full(10, 5))
        assert hist.peak_bins() == []


class TestCdf:
    def test_percentile(self):
        cdf = Cdf.of(list(range(1, 101)))
        assert cdf.percentile(50) == pytest.approx(50.5)
        assert cdf.percentile(0) == 1
        assert cdf.percentile(100) == 100

    def test_fraction_below(self):
        cdf = Cdf.of([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_below(2.5) == pytest.approx(0.5)
        assert cdf.fraction_below(0.5) == 0.0
        assert cdf.fraction_below(10.0) == 1.0
        assert cdf.fraction_below(2.0) == pytest.approx(0.5)  # inclusive

    def test_series_monotone(self):
        cdf = Cdf.of(np.random.default_rng(0).exponential(1.0, 1000))
        x, y = cdf.series(points=50)
        assert bool(np.all(np.diff(x) >= 0))
        assert bool(np.all(np.diff(y) >= 0))
        assert y[-1] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf.of([])

    def test_len(self):
        assert len(Cdf.of([1, 2, 3])) == 3


class TestHelpers:
    def test_summarize_percentiles(self):
        summary = summarize_percentiles(list(range(100)), qs=(50, 90))
        assert set(summary) == {50, 90}
        assert summary[50] < summary[90]

    def test_per_second_series(self):
        ts = np.array([0.5, 0.7, 1.2, 3.9])
        seconds, counts = per_second_series(ts, duration=5.0)
        assert counts.tolist() == [2, 1, 0, 1, 0]
        assert seconds[0] == 0.0
