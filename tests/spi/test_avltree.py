"""Tests for the AVL tree implementation."""

import random

import pytest

from repro.spi.avltree import AvlTree


class TestBasicOperations:
    def test_empty_tree(self):
        tree = AvlTree()
        assert len(tree) == 0
        assert tree.get(1) is None
        assert 1 not in tree
        assert tree.height == 0
        assert tree.min_key() is None
        assert tree.max_key() is None

    def test_put_and_get(self):
        tree = AvlTree()
        assert tree.put(5, "five")
        assert tree.get(5) == "five"
        assert 5 in tree
        assert len(tree) == 1

    def test_put_updates_in_place(self):
        tree = AvlTree()
        tree.put(5, "a")
        assert not tree.put(5, "b")
        assert tree.get(5) == "b"
        assert len(tree) == 1

    def test_remove(self):
        tree = AvlTree()
        tree.put(1, "a")
        tree.put(2, "b")
        assert tree.remove(1)
        assert tree.get(1) is None
        assert len(tree) == 1
        assert not tree.remove(1)

    def test_remove_node_with_two_children(self):
        tree = AvlTree()
        for key in (50, 25, 75, 10, 30, 60, 90):
            tree.put(key, key)
        assert tree.remove(50)
        assert tree.get(50) is None
        assert len(tree) == 6
        tree.check_invariants()
        assert list(tree.keys()) == [10, 25, 30, 60, 75, 90]

    def test_min_max(self):
        tree = AvlTree()
        for key in (5, 3, 9, 1, 7):
            tree.put(key, None)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_in_order_iteration_sorted(self):
        tree = AvlTree()
        keys = [9, 2, 7, 4, 1, 8, 3, 6, 5]
        for key in keys:
            tree.put(key, key * 10)
        assert list(tree.keys()) == sorted(keys)
        assert [v for _, v in tree.items()] == [k * 10 for k in sorted(keys)]


class TestBalancing:
    def test_sequential_insert_stays_logarithmic(self):
        """Inserting 1..1023 in order must not degenerate to a list."""
        tree = AvlTree()
        for key in range(1023):
            tree.put(key, None)
        assert tree.height <= 11  # 1.44*log2(1024) ~ 14; perfect is 10
        tree.check_invariants()

    def test_reverse_insert(self):
        tree = AvlTree()
        for key in reversed(range(500)):
            tree.put(key, None)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(500))

    def test_all_four_rotation_cases(self):
        # LL
        tree = AvlTree()
        for key in (3, 2, 1):
            tree.put(key, None)
        tree.check_invariants()
        # RR
        tree = AvlTree()
        for key in (1, 2, 3):
            tree.put(key, None)
        tree.check_invariants()
        # LR
        tree = AvlTree()
        for key in (3, 1, 2):
            tree.put(key, None)
        tree.check_invariants()
        # RL
        tree = AvlTree()
        for key in (1, 3, 2):
            tree.put(key, None)
        tree.check_invariants()

    def test_random_churn_preserves_invariants(self):
        rng = random.Random(42)
        tree = AvlTree()
        alive = set()
        for _ in range(2000):
            key = rng.randrange(300)
            if key in alive and rng.random() < 0.5:
                tree.remove(key)
                alive.discard(key)
            else:
                tree.put(key, key)
                alive.add(key)
        tree.check_invariants()
        assert set(tree.keys()) == alive
        assert len(tree) == len(alive)

    def test_tuple_keys(self):
        """Flow-tuple keys (the real use) order correctly."""
        tree = AvlTree()
        keys = [(6, i, j, 0, 0) for i in range(5) for j in range(5)]
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.put(key, None)
        assert list(tree.keys()) == sorted(keys)
        tree.check_invariants()
