"""Tests for the hash+linked-list store itself."""

import random

import pytest

from repro.spi.base import FlowState
from repro.spi.hashlist import FlowHashTable, _hash_flow_key


def _key(i):
    return (6, i, i & 0xFFFF, i * 7, (i * 13) & 0xFFFF)


class TestFlowHashTable:
    def test_insert_and_get(self):
        table = FlowHashTable(64)
        state = FlowState(10.0)
        table.insert(_key(1), state)
        assert table.get(_key(1)) is state
        assert table.get(_key(2)) is None
        assert len(table) == 1

    def test_chaining_under_few_buckets(self):
        """With 1 bucket everything chains; behaviour must stay correct."""
        table = FlowHashTable(1)
        for i in range(50):
            table.insert(_key(i), FlowState(float(i)))
        assert len(table) == 50
        for i in range(50):
            assert table.get(_key(i)).expires_at == float(i)
        assert table.chain_lengths() == [50]

    def test_remove(self):
        table = FlowHashTable(8)
        for i in range(10):
            table.insert(_key(i), FlowState(1.0))
        assert table.remove(_key(3))
        assert table.get(_key(3)) is None
        assert len(table) == 9
        assert not table.remove(_key(3))

    def test_remove_head_and_middle_of_chain(self):
        table = FlowHashTable(1)
        for i in range(3):
            table.insert(_key(i), FlowState(1.0))
        # Key 2 is the chain head (inserted last); key 1 is in the middle.
        assert table.remove(_key(2))
        assert table.remove(_key(0))
        assert table.get(_key(1)) is not None
        assert len(table) == 1

    def test_sweep_expired(self):
        table = FlowHashTable(16)
        for i in range(20):
            table.insert(_key(i), FlowState(float(i)))
        removed = table.sweep_expired(9.5)  # expires_at <= 9.5 -> 0..9
        assert removed == 10
        assert len(table) == 10
        assert table.get(_key(5)) is None
        assert table.get(_key(15)) is not None

    def test_sweep_expired_from_single_chain(self):
        table = FlowHashTable(1)
        for i in range(10):
            table.insert(_key(i), FlowState(float(i % 2)))  # alternate 0.0/1.0
        removed = table.sweep_expired(0.5)
        assert removed == 5
        assert len(table) == 5

    def test_items_yields_everything(self):
        table = FlowHashTable(32)
        keys = {_key(i) for i in range(25)}
        for key in keys:
            table.insert(key, FlowState(1.0))
        assert {key for key, _ in table.items()} == keys

    def test_non_power_of_two_buckets(self):
        table = FlowHashTable(37)
        for i in range(100):
            table.insert(_key(i), FlowState(1.0))
        assert len(table) == 100
        assert all(table.get(_key(i)) for i in range(100))

    def test_bucket_count_validated(self):
        with pytest.raises(ValueError):
            FlowHashTable(0)

    def test_load_distribution_is_reasonable(self):
        """The flow-key hash should spread random keys across buckets."""
        table = FlowHashTable(256)
        rng = random.Random(0)
        for _ in range(2560):
            key = (6, rng.getrandbits(32), rng.getrandbits(16),
                   rng.getrandbits(32), rng.getrandbits(16))
            table.insert(key, FlowState(1.0))
        lengths = table.chain_lengths()
        # Mean load 10; a terrible hash would give chains of hundreds.
        assert max(lengths) < 30

    def test_hash_flow_key_is_deterministic(self):
        assert _hash_flow_key(_key(1)) == _hash_flow_key(_key(1))
        assert _hash_flow_key(_key(1)) != _hash_flow_key(_key(2))
