"""Shared-behaviour tests run against all three SPI backends."""

import numpy as np
import pytest

from repro.core.bitmap_filter import Decision
from repro.net.packet import Packet, PacketArray, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP
from repro.spi.avltree import AvlTreeFilter
from repro.spi.base import FLOW_STATE_BYTES
from repro.spi.hashlist import HashListFilter
from repro.spi.naive import NaiveExactFilter
from tests.conftest import make_reply, make_request

BACKENDS = [NaiveExactFilter, HashListFilter, AvlTreeFilter]


@pytest.fixture(params=BACKENDS, ids=[cls.__name__ for cls in BACKENDS])
def spi(request, protected):
    return request.param(protected, idle_timeout=240.0, gc_interval=10.0)


class TestBasicSemantics:
    def test_outgoing_passes_and_creates_state(self, spi, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        assert spi.process(out) is Decision.PASS
        assert spi.num_flows == 1
        assert spi.stats.inserts == 1

    def test_reply_passes(self, spi, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        spi.process(out)
        assert spi.process(make_reply(out, 1.1)) is Decision.PASS

    def test_unsolicited_dropped(self, spi, client_addr, server_addr):
        stray = Packet(1.0, IPPROTO_TCP, server_addr, 1, client_addr, 2)
        assert spi.process(stray) is Decision.DROP

    def test_exact_five_tuple_matching(self, spi, client_addr, server_addr):
        """Unlike the bitmap, SPI keys include the remote port."""
        out = make_request(1.0, client_addr, server_addr, dport=21)
        spi.process(out)
        wrong_port = Packet(1.5, IPPROTO_TCP, server_addr, 20, client_addr,
                            out.sport, TcpFlags.SYN)
        assert spi.process(wrong_port) is Decision.DROP

    def test_refresh_does_not_duplicate_state(self, spi, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        spi.process(out)
        spi.process(out.with_ts(2.0))
        assert spi.num_flows == 1
        assert spi.stats.refreshes >= 1

    def test_transit_and_internal_pass_without_state(self, spi, protected):
        transit = make_request(1.0, 0x01010101, 0x02020202)
        assert spi.process(transit) is Decision.PASS
        internal = make_request(
            1.0, protected.networks[0].host(1), protected.networks[1].host(2)
        )
        assert spi.process(internal) is Decision.PASS
        assert spi.num_flows == 0

    def test_udp_flows_tracked(self, spi, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr, proto=IPPROTO_UDP,
                           flags=TcpFlags.NONE, dport=53)
        spi.process(out)
        assert spi.process(make_reply(out, 1.05, flags=TcpFlags.NONE)) is Decision.PASS


class TestIdleTimeout:
    def test_reply_after_idle_timeout_dropped(self, spi, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        spi.process(out)
        late = make_reply(out, 1.0 + 240.0 + 1.0)
        assert spi.process(late) is Decision.DROP

    def test_reply_within_timeout_passes(self, spi, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        spi.process(out)
        assert spi.process(make_reply(out, 200.0)) is Decision.PASS

    def test_activity_refreshes_timeout(self, spi, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        spi.process(out)
        spi.process(out.with_ts(200.0))
        assert spi.process(make_reply(out, 430.0)) is Decision.PASS

    def test_gc_removes_expired_states(self, spi, client_addr, server_addr):
        spi.process(make_request(1.0, client_addr, server_addr))
        assert spi.num_flows == 1
        spi.advance_to(1.0 + 240.0 + spi.gc_interval + 1.0)
        assert spi.num_flows == 0
        assert spi.stats.gc_removed == 1

    def test_gc_keeps_live_states(self, spi, client_addr, server_addr):
        spi.process(make_request(1.0, client_addr, server_addr))
        spi.advance_to(100.0)
        assert spi.num_flows == 1


class TestCloseTracking:
    """Section 4.3: SPI knows the exact time of closed connections."""

    def test_packet_after_close_grace_dropped(self, spi, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        spi.process(out)
        fin = make_request(5.0, client_addr, server_addr,
                           flags=TcpFlags.FIN | TcpFlags.ACK)
        spi.process(fin)
        straggler = make_reply(out, 5.0 + spi.close_grace + 1.0,
                               flags=TcpFlags.PSH | TcpFlags.ACK)
        assert spi.process(straggler) is Decision.DROP
        assert spi.stats.dropped_after_close == 1

    def test_close_handshake_within_grace_passes(self, spi, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        spi.process(out)
        fin = make_request(5.0, client_addr, server_addr,
                           flags=TcpFlags.FIN | TcpFlags.ACK)
        spi.process(fin)
        fin_reply = make_reply(out, 5.1, flags=TcpFlags.FIN | TcpFlags.ACK)
        assert spi.process(fin_reply) is Decision.PASS

    def test_rst_closes_flow(self, spi, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        spi.process(out)
        rst = make_request(3.0, client_addr, server_addr, flags=TcpFlags.RST)
        spi.process(rst)
        late = make_reply(out, 3.0 + spi.close_grace + 1.0)
        assert spi.process(late) is Decision.DROP

    def test_incoming_fin_also_closes(self, spi, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        spi.process(out)
        fin = make_reply(out, 4.0, flags=TcpFlags.FIN | TcpFlags.ACK)
        assert spi.process(fin) is Decision.PASS
        straggler = make_reply(out, 4.0 + spi.close_grace + 1.0)
        assert spi.process(straggler) is Decision.DROP

    def test_bitmap_passes_what_close_aware_spi_drops(
        self, spi, small_config, protected, client_addr, server_addr
    ):
        """The Fig. 4 asymmetry: short post-close stragglers."""
        from repro.core.bitmap_filter import BitmapFilter

        bitmap = BitmapFilter(small_config, protected)
        out = make_request(1.0, client_addr, server_addr)
        fin = make_request(2.0, client_addr, server_addr,
                           flags=TcpFlags.FIN | TcpFlags.ACK)
        straggler = make_reply(out, 8.0)  # 6s after close, within Te
        for filt in (spi, bitmap):
            filt.process(out)
            filt.process(fin)
        assert spi.process(straggler) is Decision.DROP
        assert bitmap.process(straggler) is Decision.PASS


class TestBatchPath:
    def test_process_batch_matches_scalar(self, protected, client_addr, server_addr):
        out = make_request(1.0, client_addr, server_addr)
        packets = [
            out,
            make_reply(out, 1.2),
            Packet(2.0, IPPROTO_TCP, server_addr, 1, client_addr, 2),
            make_request(3.0, client_addr, server_addr,
                         flags=TcpFlags.FIN | TcpFlags.ACK),
            make_reply(out, 9.0),       # post-close straggler
            make_reply(out, 250.0),     # also idle-expired
        ]
        batch = PacketArray.from_packets(packets)
        for cls in BACKENDS:
            scalar = cls(protected)
            expected = [scalar.process(p) is Decision.PASS for p in packets]
            batched = cls(protected)
            verdicts = batched.process_batch(batch)
            assert verdicts.tolist() == expected, cls.__name__
            assert batched.num_flows == scalar.num_flows

    def test_empty_batch(self, spi):
        assert len(spi.process_batch(PacketArray.empty())) == 0


class TestStorageAccounting:
    def test_storage_bytes(self, spi, client_addr, server_addr):
        for sport in range(100):
            spi.process(make_request(1.0, client_addr, server_addr, sport=sport + 1024))
        assert spi.storage_bytes == 100 * FLOW_STATE_BYTES

    def test_validation(self, protected):
        with pytest.raises(ValueError):
            NaiveExactFilter(protected, idle_timeout=0)
        with pytest.raises(ValueError):
            NaiveExactFilter(protected, close_grace=-1)
