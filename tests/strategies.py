"""Shared Hypothesis strategies for packet and trace generation.

One home for the generators that used to be copy-pasted across
``tests/properties/*.py``: uint32 addresses, valid ports, direction-tagged
flow events, and rotation-straddling timestamp sequences.  Both the
property suites and the differential suite (``tests/differential/``) draw
from here, so a shrunk counterexample in one suite replays directly in the
other.
"""

import hypothesis.strategies as st
import numpy as np

from repro.net.address import AddressSpace
from repro.net.packet import Packet, PacketArray, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP

#: The protected client space every strategy-based test runs against.
PROTECTED = AddressSpace.class_c_block("172.16.0.0", 2)

#: A representative spread of TCP flag combinations (incl. connection
#: open/close markers the close-aware filter reacts to).
FLAG_CHOICES = (
    TcpFlags.NONE, TcpFlags.SYN, TcpFlags.ACK, TcpFlags.SYN | TcpFlags.ACK,
    TcpFlags.FIN | TcpFlags.ACK, TcpFlags.RST, TcpFlags.PSH | TcpFlags.ACK,
)


def inside_addresses():
    """Hosts inside the protected space (valid low host octets)."""
    return st.builds(
        lambda net_index, host: PROTECTED.networks[net_index].host(host),
        st.integers(0, len(PROTECTED.networks) - 1),
        st.integers(1, 250),
    )


def outside_addresses():
    """uint32 addresses guaranteed to fall outside the protected space."""
    return st.integers(0x01000000, 0xDFFFFFFF).filter(
        lambda addr: not PROTECTED.contains_int(addr))


def ports():
    """Valid non-zero port numbers."""
    return st.integers(1, 65535)


def flow_endpoints(flow_id):
    """Deterministic (client, server, sport) for a small flow id — the same
    mapping in every suite, so flow 3 means the same 5-tuple everywhere."""
    client = PROTECTED.networks[flow_id % len(PROTECTED.networks)].host(
        1 + flow_id)
    server = 0x08080800 + flow_id
    sport = 10_000 + flow_id
    return client, server, sport


@st.composite
def traffic_scripts(draw, max_events: int = 40, max_gap: float = 4.0,
                    num_flows: int = 6):
    """A short random script of (gap, outgoing, flow-id) events.

    Gaps up to ``max_gap`` seconds against the property-test config's 5 s
    rotation interval make scripts routinely straddle rotation boundaries
    (and, with enough events, whole expiry windows).
    """
    n_events = draw(st.integers(1, max_events))
    events = []
    for _ in range(n_events):
        gap = draw(st.floats(0.0, max_gap))
        outgoing = draw(st.booleans())
        flow = draw(st.integers(0, num_flows - 1))
        events.append((gap, outgoing, flow))
    return events


def script_to_packets(events, proto: int = IPPROTO_TCP):
    """Materialize a :func:`traffic_scripts` script as Packet objects."""
    packets = []
    ts = 0.0
    for gap, outgoing, flow in events:
        ts += gap
        client, server, sport = flow_endpoints(flow)
        if outgoing:
            packets.append(Packet(ts, proto, client, sport, server, 80,
                                  TcpFlags.ACK))
        else:
            packets.append(Packet(ts, proto, server, 80, client, sport,
                                  TcpFlags.ACK))
    return packets


@st.composite
def packet_scripts(draw, max_events: int = 60, max_gap: float = 30.0,
                   num_flows: int = 5):
    """Random full-packet scripts: mixed protocols, TCP flags, both
    directions, over a small set of flows (the SPI-equivalence shape)."""
    n = draw(st.integers(1, max_events))
    ts = 0.0
    packets = []
    for _ in range(n):
        ts += draw(st.floats(0.0, max_gap))
        flow = draw(st.integers(0, num_flows - 1))
        outgoing = draw(st.booleans())
        flags = draw(st.sampled_from(FLAG_CHOICES))
        proto = draw(st.sampled_from([IPPROTO_TCP, IPPROTO_UDP]))
        client = PROTECTED.networks[flow % 2].host(1 + flow)
        server = 0x08080000 + flow
        sport = 20_000 + flow
        if outgoing:
            packets.append(Packet(ts, proto, client, sport, server, 80, flags))
        else:
            packets.append(Packet(ts, proto, server, 80, client, sport, flags))
    return packets


@st.composite
def mixed_direction_packets(draw, max_events: int = 60, max_gap: float = 4.0):
    """Direction-tagged packets covering all four direction classes.

    Beyond the outgoing/incoming flows of :func:`packet_scripts`, this also
    emits internal (both endpoints protected) and transit (neither
    protected) packets — the classes a sharded filter must route and count
    correctly even though their verdict is always PASS.
    """
    n = draw(st.integers(1, max_events))
    ts = 0.0
    packets = []
    for _ in range(n):
        ts += draw(st.floats(0.0, max_gap))
        kind = draw(st.sampled_from(["out", "in", "internal", "transit"]))
        flow = draw(st.integers(0, 5))
        proto = draw(st.sampled_from([IPPROTO_TCP, IPPROTO_UDP]))
        client, server, sport = flow_endpoints(flow)
        if kind == "out":
            pkt = Packet(ts, proto, client, sport, server, 80, TcpFlags.ACK)
        elif kind == "in":
            pkt = Packet(ts, proto, server, 80, client, sport, TcpFlags.ACK)
        elif kind == "internal":
            other = PROTECTED.networks[(flow + 1) % 2].host(9 + flow)
            pkt = Packet(ts, proto, client, sport, other, 443, TcpFlags.ACK)
        else:
            remote = draw(outside_addresses())
            pkt = Packet(ts, proto, remote, 53, 0x08080808, 53, TcpFlags.NONE)
        packets.append(pkt)
    return packets


def bit_index_arrays(order: int = 10, max_len: int = 24):
    """uint64 arrays of bit indices into a ``2**order``-bit vector — the
    shape :meth:`Bitmap.mark`/``test_current`` take (duplicates allowed,
    they must be idempotent)."""
    return st.lists(
        st.integers(0, (1 << order) - 1), min_size=1, max_size=max_len,
    ).map(lambda idx: np.array(idx, dtype=np.uint64))


@st.composite
def epoch_op_scripts(draw, order: int = 10, max_ops: int = 24):
    """Bitmap-level op scripts exercising epoch-indexed rotation.

    Yields a list of ``("mark", indices)``, ``("test", indices)``, and
    ``("rotate", None)`` operations.  Rotations are drawn often enough
    that marks routinely land on both sides of an epoch boundary — the
    adversarial shape for a shared backend that rotates by bumping an
    epoch counter and zeroing the retiring slab in place: a stale reader
    would see either the retired epoch's bits or a half-cleared slab.
    """
    ops = []
    for _ in range(draw(st.integers(1, max_ops))):
        kind = draw(st.sampled_from(["mark", "mark", "test", "rotate"]))
        if kind == "rotate":
            ops.append(("rotate", None))
        else:
            ops.append((kind, draw(bit_index_arrays(order=order))))
    return ops


@st.composite
def bitmap_snapshot_states(draw, num_vectors: int = 4, order: int = 10,
                           max_rotations: int = 12):
    """Random restorable bitmap states: (vectors, current_index, rotations).

    The vector stack is dense enough that a lost byte after
    restore-then-rotate is visible, and ``rotations`` is independent of
    ``current_index`` (a restored filter may resume mid-cycle)."""
    num_bytes = (1 << order) >> 3
    rng_seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(rng_seed)
    vectors = (rng.integers(0, 256, size=(num_vectors, num_bytes))
               .astype(np.uint8))
    rotations = draw(st.integers(0, max_rotations))
    current_index = draw(st.integers(0, num_vectors - 1))
    return vectors, current_index, rotations


@st.composite
def isp_topologies(draw, max_core: int = 5, max_edge: int = 4,
                   max_peer: int = 3):
    """Random multi-peer ISP graphs with one client network attached.

    Router-router links are an arbitrary subset of all pairs (the graph
    may be disconnected — unreachable clients are a case the dominator
    analysis must handle), every peer gets at least one uplink, and the
    client hangs off a drawn edge router.  This is the input space for the
    property that ``valid_filter_locations`` is *exactly* the set of
    routers whose removal disconnects the client from every peer.
    """
    from repro.sim.topology import IspTopology

    topo = IspTopology()
    cores = [f"core{i}" for i in range(draw(st.integers(1, max_core)))]
    edges = [f"edge{i}" for i in range(draw(st.integers(1, max_edge)))]
    peers = [f"peer{i}" for i in range(draw(st.integers(1, max_peer)))]
    for name in cores:
        topo.add_core_router(name)
    for name in edges:
        topo.add_edge_router(name)
    for name in peers:
        topo.add_peer(name)
    routers = cores + edges
    pairs = [(a, b) for i, a in enumerate(routers)
             for b in routers[i + 1:]]
    for a, b in draw(st.lists(st.sampled_from(pairs), unique=True,
                              max_size=len(pairs))):
        topo.connect(a, b)
    for peer in peers:
        for target in draw(st.lists(st.sampled_from(routers), min_size=1,
                                    max_size=3, unique=True)):
            topo.connect(peer, target)
    topo.add_client_network("client", draw(st.sampled_from(edges)))
    return topo


@st.composite
def flow_size_cdfs(draw, max_points: int = 8):
    """Random valid :class:`~repro.traffic.modern.FlowSizeCDF` point sets:
    probabilities strictly increasing and ending at 1.0, sizes positive
    and non-decreasing — the whole constructor-accepted space, not just
    the two canonical mixes."""
    from repro.traffic.modern import FlowSizeCDF

    n = draw(st.integers(2, max_points))
    probs = sorted(draw(st.lists(
        st.floats(0.01, 0.99), min_size=n - 1, max_size=n - 1,
        unique=True))) + [1.0]
    sizes = sorted(draw(st.lists(
        st.floats(0.5, 1e6, allow_nan=False, allow_infinity=False),
        min_size=n, max_size=n)))
    return FlowSizeCDF("drawn", tuple(zip(probs, sizes)))


@st.composite
def rotation_straddling_arrays(draw, rotation_interval: float = 5.0,
                               num_vectors: int = 4):
    """PacketArrays whose timestamps deliberately cluster around rotation
    boundaries: packets land just before, exactly on, and just after
    multiples of ``rotation_interval``, out past a full expiry period —
    the adversarial shape for rotation-sensitive equivalence bugs."""
    num_boundaries = draw(st.integers(1, 2 * num_vectors))
    offsets = st.sampled_from([-1e-6, -1e-3, 0.0, 1e-3, 1e-6, 0.5])
    events = []
    for boundary in range(1, num_boundaries + 1):
        for _ in range(draw(st.integers(1, 4))):
            ts = boundary * rotation_interval + draw(offsets)
            outgoing = draw(st.booleans())
            flow = draw(st.integers(0, 3))
            events.append((max(ts, 0.0), outgoing, flow))
    events.sort(key=lambda event: event[0])
    packets = []
    for ts, outgoing, flow in events:
        client, server, sport = flow_endpoints(flow)
        if outgoing:
            packets.append(Packet(ts, IPPROTO_TCP, client, sport, server, 80,
                                  TcpFlags.ACK))
        else:
            packets.append(Packet(ts, IPPROTO_TCP, server, 80, client, sport,
                                  TcpFlags.ACK))
    return PacketArray.from_packets(packets)
