"""Failure injection: odd clocks, adversarial inputs, resource exhaustion."""

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, Decision
from repro.core.hashing import HashFamily
from repro.net.packet import Packet, PacketArray, TcpFlags
from repro.net.protocols import IPPROTO_TCP
from repro.spi.hashlist import HashListFilter
from tests.conftest import make_reply, make_request


class TestClockAnomalies:
    def test_out_of_order_packets_do_not_crash(self, small_config, protected,
                                               client_addr, server_addr):
        """Timestamps going backwards (clock skew, reordering) are tolerated:
        rotations never rewind, packets are judged against current state."""
        filt = BitmapFilter(small_config, protected)
        request = make_request(30.0, client_addr, server_addr)
        filt.process(request)
        early_reply = make_reply(request, 12.0)  # before the request's ts!
        verdict = filt.process(early_reply)
        assert verdict in (Decision.PASS, Decision.DROP)
        assert filt.bitmap.rotations == 6  # rotations at t=5..30, not rewound

    def test_rotation_not_rewound_by_stale_timestamp(self, small_config, protected):
        filt = BitmapFilter(small_config, protected)
        filt.advance_to(100.0)
        before = filt.bitmap.rotations
        filt.advance_to(50.0)
        assert filt.bitmap.rotations == before

    def test_giant_time_gap_runs_all_rotations(self, small_config, protected,
                                               client_addr, server_addr):
        """A quiet weekend (no packets) must fully expire the bitmap."""
        filt = BitmapFilter(small_config, protected)
        request = make_request(0.0, client_addr, server_addr)
        filt.process(request)
        two_days = 2 * 24 * 3600.0
        filt.advance_to(two_days)
        assert filt.bitmap.is_empty()
        assert filt.process(make_reply(request, two_days + 1.0)) is Decision.DROP

    def test_duplicate_timestamps(self, small_config, protected, client_addr,
                                  server_addr):
        filt = BitmapFilter(small_config, protected)
        request = make_request(1.0, client_addr, server_addr)
        reply = make_reply(request, 1.0)  # same instant
        assert filt.process(request) is Decision.PASS
        assert filt.process(reply) is Decision.PASS

    def test_windowed_batch_with_all_packets_in_one_window(
        self, small_config, protected, client_addr, server_addr
    ):
        request = make_request(0.1, client_addr, server_addr)
        batch = PacketArray.from_packets([request, make_reply(request, 0.2)])
        filt = BitmapFilter(small_config, protected)
        assert filt.process_batch(batch, exact=False).all()
        assert filt.bitmap.rotations == 0


class TestAdversarialHashing:
    def _find_colliding_key(self, hashes, target_indices, protected, order):
        """Brute-force a spoofed tuple colliding with a victim's key."""
        import itertools

        for trial in itertools.count():
            src = 0x30000000 + trial
            if protected.contains_int(src):
                continue
            key = (IPPROTO_TCP, 0xAC100001 + (trial % 3), 80, src)
            if all(index in target_indices for index in hashes.indices(key)):
                return key
            if trial > 3_000_000:
                pytest.skip("no collision found in budget")

    def test_known_seed_enables_crafted_penetration(self, protected):
        """With the hash seed public and a tiny bitmap, an attacker can craft
        a tuple whose bits are covered by existing marks."""
        config = BitmapFilterConfig(order=6, num_vectors=4, num_hashes=2,
                                    rotation_interval=5.0, seed=1234)
        filt = BitmapFilter(config, protected)
        victim_client = protected.networks[0].host(1)
        # Legitimate outgoing traffic marks some bits.
        marked = set()
        for sport in range(1024, 1060):
            pkt = make_request(1.0, victim_client, 0x08080808, sport=sport)
            filt.process(pkt)
            key = (IPPROTO_TCP, victim_client, sport, 0x08080808)
            marked.update(filt.hashes.indices(key))
        crafted = self._find_colliding_key(filt.hashes, marked, protected, 6)
        proto, daddr, dport, saddr = crafted
        attack = Packet(2.0, proto, saddr, 31337, daddr, dport, TcpFlags.SYN)
        assert filt.process(attack) is Decision.PASS  # the crafted hit

    def test_secret_seed_defeats_the_crafted_tuple(self, protected):
        """The same crafted tuple misses once the deployment randomizes the
        seed — why HashFamily takes a seed at all."""
        config_known = BitmapFilterConfig(order=6, num_vectors=4, num_hashes=2,
                                          rotation_interval=5.0, seed=1234)
        filt = BitmapFilter(config_known, protected)
        victim_client = protected.networks[0].host(1)
        marked = set()
        for sport in range(1024, 1060):
            filt.process(make_request(1.0, victim_client, 0x08080808, sport=sport))
            marked.update(filt.hashes.indices(
                (IPPROTO_TCP, victim_client, sport, 0x08080808)))
        crafted = self._find_colliding_key(filt.hashes, marked, protected, 6)
        proto, daddr, dport, saddr = crafted
        attack = Packet(2.0, proto, saddr, 31337, daddr, dport, TcpFlags.SYN)

        config_secret = BitmapFilterConfig(order=6, num_vectors=4, num_hashes=2,
                                           rotation_interval=5.0, seed=99999)
        secret = BitmapFilter(config_secret, protected)
        for sport in range(1024, 1060):
            secret.process(make_request(1.0, victim_client, 0x08080808,
                                        sport=sport))
        # Not guaranteed to miss (the bitmap is tiny), but with ~36 marked
        # keys in 64 bits the crafted tuple should not be a sure hit.
        hits = 0
        for reseed in range(5):
            cfg = BitmapFilterConfig(order=6, num_vectors=4, num_hashes=2,
                                     rotation_interval=5.0, seed=5000 + reseed)
            f = BitmapFilter(cfg, protected)
            for sport in range(1024, 1060):
                f.process(make_request(1.0, victim_client, 0x08080808,
                                       sport=sport))
            if f.process(attack.with_ts(2.0)) is Decision.PASS:
                hits += 1
        assert hits < 5  # the collision does not survive re-seeding


class TestResourceExhaustion:
    def test_insider_grows_spi_state_but_not_bitmap(self, protected, small_config):
        """An insider's outgoing random scan is a state-exhaustion attack on
        SPI filters; the bitmap's memory cannot grow."""
        from repro.attacks.insider import InsiderAttack

        attacker = protected.networks[0].host(10)
        pollution = InsiderAttack(attacker, rate_pps=500.0, start=0.0,
                                  duration=30.0).generate(protected)
        spi = HashListFilter(protected, idle_timeout=240.0)
        spi.process_batch(pollution)
        assert spi.num_flows > 10_000  # one state per scan tuple

        bitmap = BitmapFilter(small_config, protected)
        bitmap.process_batch(pollution, exact=True)
        assert bitmap.config.memory_bytes == small_config.memory_bytes

    def test_incoming_flood_creates_no_spi_state(self, protected):
        from repro.attacks.ddos import syn_flood

        victim = protected.networks[0].host(20)
        flood = syn_flood(victim, 80, rate_pps=2000.0, start=0.0, duration=10.0)
        spi = HashListFilter(protected)
        verdicts = spi.process_batch(flood)
        assert not verdicts.any()
        assert spi.num_flows == 0


class TestBoundaryValues:
    @pytest.mark.parametrize("sport,dport", [(0, 0), (0, 65535), (65535, 0)])
    def test_extreme_ports(self, small_config, protected, client_addr,
                           server_addr, sport, dport):
        filt = BitmapFilter(small_config, protected)
        request = make_request(1.0, client_addr, server_addr, sport=sport,
                               dport=dport)
        assert filt.process(request) is Decision.PASS
        assert filt.process(make_reply(request, 1.1)) is Decision.PASS

    def test_zero_and_max_addresses_as_remote(self, small_config, protected,
                                              client_addr):
        filt = BitmapFilter(small_config, protected)
        for remote in (0x00000001, 0xFFFFFFFE):
            request = make_request(1.0, client_addr, remote)
            assert filt.process(request) is Decision.PASS
            assert filt.process(make_reply(request, 1.1)) is Decision.PASS

    def test_zero_size_packets(self, small_config, protected, client_addr,
                               server_addr):
        filt = BitmapFilter(small_config, protected)
        pkt = Packet(1.0, IPPROTO_TCP, client_addr, 1, server_addr, 2, size=0)
        assert filt.process(pkt) is Decision.PASS
