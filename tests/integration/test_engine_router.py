"""Integration: the event engine driving an edge router with a live filter."""

import pytest

from repro.core.bitmap_filter import BitmapFilter, Decision
from repro.sim.engine import SimulationEngine, merge_packet_streams
from repro.sim.router import EdgeRouter
from tests.conftest import make_reply, make_request


class TestEngineDrivenRouter:
    def test_router_forwards_through_engine(self, small_config, protected,
                                            client_addr, server_addr):
        router = EdgeRouter("edge1", protected,
                            filt=BitmapFilter(small_config, protected))
        engine = SimulationEngine()
        decisions = []
        engine.on_packet(lambda pkt: decisions.append(router.forward(pkt)))

        request = make_request(1.0, client_addr, server_addr)
        from repro.net.packet import Packet
        from repro.net.protocols import IPPROTO_TCP

        stray = Packet(2.0, IPPROTO_TCP, server_addr, 1, client_addr, 2)
        engine.run([request, make_reply(request, 1.2), stray])

        assert decisions == [Decision.PASS, Decision.PASS, Decision.DROP]
        assert router.counters.packets_out == 1
        assert router.counters.packets_in == 2
        assert router.counters.dropped_in == 1

    def test_periodic_utilization_sampling(self, small_config, protected,
                                           client_addr, server_addr):
        """A recurring timer samples filter utilization while traffic flows."""
        filt = BitmapFilter(small_config, protected)
        router = EdgeRouter("edge1", protected, filt=filt)
        engine = SimulationEngine()
        engine.on_packet(router.forward)
        samples = []
        engine.schedule(5.0, lambda ts: samples.append((ts, filt.utilization())),
                        interval=5.0, name="sampler")

        packets = [
            make_request(float(t) + 0.1, client_addr, server_addr,
                         sport=1024 + t)
            for t in range(30)
        ]
        engine.run(packets, until=30.0)

        assert len(samples) == 6  # t = 5, 10, ..., 30
        assert any(u > 0 for _, u in samples)

    def test_merged_streams_preserve_order(self, small_config, protected,
                                           client_addr, server_addr):
        router = EdgeRouter("edge1", protected,
                            filt=BitmapFilter(small_config, protected))
        engine = SimulationEngine()
        seen = []
        engine.on_packet(lambda pkt: (router.forward(pkt), seen.append(pkt.ts)))

        stream_a = [make_request(float(t), client_addr, server_addr)
                    for t in (1, 3, 5)]
        stream_b = [make_request(float(t) + 0.5, client_addr, server_addr)
                    for t in (1, 3, 5)]
        engine.run(merge_packet_streams(stream_a, stream_b))
        assert seen == sorted(seen)
        assert len(seen) == 6
