"""End-to-end integration: workload + attack + filters + scoring."""

import numpy as np
import pytest

from repro.attacks.scanner import RandomScanAttack, ScanConfig
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.sim.pipeline import run_filter_on_trace
from repro.spi.avltree import AvlTreeFilter
from repro.spi.hashlist import HashListFilter
from repro.spi.naive import NaiveExactFilter
from repro.traffic.trace import Trace


@pytest.fixture(scope="module")
def attacked_trace(tiny_trace):
    attack = RandomScanAttack(
        ScanConfig(rate_pps=2000.0, start=20.0, duration=30.0, seed=5),
        tiny_trace.protected,
    ).generate()
    return tiny_trace.merged_with(
        Trace(attack, tiny_trace.protected, {"duration": tiny_trace.duration})
    )


@pytest.fixture(scope="module")
def small_cfg():
    return BitmapFilterConfig(order=13, num_vectors=4, num_hashes=3,
                              rotation_interval=5.0)


class TestAttackDefense:
    def test_bitmap_filters_most_attack_traffic(self, attacked_trace, small_cfg):
        filt = BitmapFilter(small_cfg, attacked_trace.protected)
        result = run_filter_on_trace(filt, attacked_trace, exact=True)
        assert result.confusion.attack_filter_rate > 0.95

    def test_normal_traffic_mostly_unharmed(self, attacked_trace, small_cfg):
        filt = BitmapFilter(small_cfg, attacked_trace.protected)
        result = run_filter_on_trace(filt, attacked_trace, exact=True)
        assert result.confusion.false_positive_rate < 0.05

    def test_all_spi_filters_also_defend(self, attacked_trace):
        for cls in (NaiveExactFilter, HashListFilter, AvlTreeFilter):
            filt = cls(attacked_trace.protected, idle_timeout=240.0)
            result = run_filter_on_trace(filt, attacked_trace)
            assert result.confusion.attack_filter_rate > 0.99, cls.__name__

    def test_spi_and_bitmap_agree_on_attack(self, attacked_trace, small_cfg):
        bitmap = run_filter_on_trace(
            BitmapFilter(small_cfg, attacked_trace.protected), attacked_trace,
            exact=True,
        )
        spi = run_filter_on_trace(
            HashListFilter(attacked_trace.protected), attacked_trace
        )
        assert bitmap.confusion.attack_filter_rate == pytest.approx(
            spi.confusion.attack_filter_rate, abs=0.02
        )

    def test_penetration_bounded_by_utilization_model(self, attacked_trace, small_cfg):
        """Measured penetration is consistent with Eq. (1) at the measured U."""
        from repro.core.parameters import penetration_probability

        filt = BitmapFilter(small_cfg, attacked_trace.protected)
        packets = attacked_trace.packets
        mid = int(np.searchsorted(packets.ts, 35.0))
        v1 = filt.process_batch(packets[:mid], exact=True)
        utilization = filt.utilization()
        v2 = filt.process_batch(packets[mid:], exact=True)
        predicted = penetration_probability(utilization, small_cfg.num_hashes)

        from repro.sim.metrics import score_run

        verdicts = np.concatenate([v1, v2])
        incoming = packets.directions(attacked_trace.protected) == 1
        confusion, _ = score_run(packets, verdicts, incoming)
        assert confusion.penetration_rate < predicted * 5 + 1e-3


class TestFilterRace:
    def test_bitmap_uses_far_less_memory_than_spi(self, attacked_trace, small_cfg):
        """The headline resource claim at matched defense quality."""
        bitmap = BitmapFilter(small_cfg, attacked_trace.protected)
        run_filter_on_trace(bitmap, attacked_trace, exact=True)
        spi = HashListFilter(attacked_trace.protected)
        run_filter_on_trace(spi, attacked_trace)
        assert bitmap.config.memory_bytes < 10 * 1024 * 1024
        # The SPI's state grew with the attack (one state per outgoing flow
        # only, but GC lag means thousands); the bitmap is fixed-size.
        assert bitmap.config.memory_bytes == small_cfg.memory_bytes

    def test_spi_state_is_bounded_by_real_flows(self, attacked_trace):
        """Incoming scans must NOT create SPI state (no state exhaustion)."""
        spi = NaiveExactFilter(attacked_trace.protected)
        run_filter_on_trace(spi, attacked_trace)
        attack_packets = int((attacked_trace.packets.label == 1).sum())
        assert spi.num_flows < attack_packets / 10


class TestRotationUnderLoad:
    def test_rotations_happen_throughout(self, attacked_trace, small_cfg):
        filt = BitmapFilter(small_cfg, attacked_trace.protected)
        run_filter_on_trace(filt, attacked_trace, exact=True)
        duration = attacked_trace.packets.ts.max()
        expected = int(duration / small_cfg.rotation_interval)
        assert abs(filt.stats.rotations - expected) <= 1
