"""The executable abstract: every headline claim, asserted end-to-end.

Each test quotes a sentence of the paper's abstract/conclusions and checks
it against this reproduction at CI scale.  These intentionally overlap with
the benchmark suite — they are the one-file summary a reviewer reads first.
"""

import pytest

from repro.experiments.config import SMALL


@pytest.fixture(scope="module")
def fig5_result():
    from repro.experiments.fig5 import run_fig5

    return run_fig5(SMALL)


@pytest.fixture(scope="module")
def fig4_result():
    from repro.experiments.fig4 import run_fig4

    return run_fig4(SMALL)


class TestAbstractClaims:
    def test_small_memory_filters_most_attack_traffic(self, fig5_result):
        """'with a small amount of memory (less than 1 megabyte), more than
        95% of attack traffic can be filtered out'"""
        memory = SMALL.bitmap_config().memory_bytes
        assert memory < 1024 * 1024
        assert fig5_result.attack_filter_rate > 0.95

    def test_bitmap_matches_spi_effectiveness(self, fig4_result):
        """'The effectiveness of the bitmap filter is similar to that of an
        SPI filter' (Fig. 4: 1.51% vs 1.56% drop rates)."""
        assert fig4_result.bitmap_drop_rate == pytest.approx(
            fig4_result.spi_drop_rate, rel=0.3
        )

    def test_but_with_much_less_storage(self):
        """'...but it requires much less storage space' (Table 1: 8 MB vs
        76.8 MB at 2.56M concurrent connections)."""
        from repro.experiments.table1 import paper_storage_rows

        rows = {row["structure"]: row["storage_bytes"]
                for row in paper_storage_rows()}
        bitmap = next(v for k, v in rows.items() if "bitmap" in k)
        spi = rows["hash+link-list (Linux)"]
        assert bitmap * 9 < spi

    def test_and_less_computation(self):
        """'...and computational resources' — constant-time ops vs
        population-dependent ones (deterministic op counts)."""
        from repro.core.costmodel import profile_structures

        profiles = profile_structures(populations=(1_000, 8_000), probes=300)
        bitmap = profiles["bitmap filter"]
        assert bitmap[0].lookup.total == bitmap[-1].lookup.total
        avl = profiles["AVL-tree"]
        assert avl[-1].lookup.total > avl[0].lookup.total

    def test_conclusion_90_to_99_percent(self, fig5_result):
        """'an ISP can efficiently filter out 90% to 99% of attack traffic
        for client networks' — we land above the band's top."""
        assert fig5_result.attack_filter_rate > 0.99

    def test_normal_traffic_survives(self, fig5_result):
        """The implicit other half: defense without collateral damage."""
        assert fig5_result.run.confusion.false_positive_rate < 0.03


class TestMechanismClaims:
    def test_based_on_traffic_symmetry(self, fig5_result):
        """'Based on the symmetry of network traffic in both temporal and
        spatial domains' — penetration is exactly the Eq. (1) bloom
        collision probability, nothing protocol-specific."""
        assert fig5_result.penetration_rate == pytest.approx(
            fig5_result.predicted_penetration, rel=2.0, abs=5e-4
        )

    def test_client_initiated_protocols_compatible(self):
        """'completely compatible with all client initiated Internet
        protocols' — every default application's traffic flows."""
        from repro.analysis.composition import composition
        from repro.core.bitmap_filter import BitmapFilter
        from repro.experiments.fig2 import generate_trace

        trace = generate_trace(SMALL)
        filt = BitmapFilter(SMALL.bitmap_config(), trace.protected)
        verdicts = filt.process_batch(trace.packets, exact=True)
        survivors = trace.packets[verdicts]
        before = composition(trace.packets, trace.protected)
        after = composition(survivors, trace.protected)
        for app in ("http", "https", "smtp", "dns", "ssh"):
            assert after.fraction_of(app) == pytest.approx(
                before.fraction_of(app), rel=0.15
            ), app
