"""Tests for repro.faults.injectors — the fault catalogue itself."""

import numpy as np
import pytest

from repro.faults.injectors import (
    BitFlips,
    CrashRestart,
    PacketDuplication,
    PacketReorder,
    RotationStall,
    TraceGap,
    flip_random_bits,
    perturbed_stream,
)


class TestPacketReorder:
    def test_stream_stays_sorted_same_length(self, tiny_trace):
        faulted = PacketReorder(fraction=0.05, max_delay=1.0).transform_trace(
            tiny_trace
        )
        assert len(faulted.packets) == len(tiny_trace.packets)
        ts = faulted.packets.ts
        assert bool(np.all(np.diff(ts) >= 0))
        assert faulted.metadata["fault"].startswith("reorder")

    def test_delays_bounded(self, tiny_trace):
        max_delay = 0.5
        faulted = PacketReorder(fraction=0.05, max_delay=max_delay,
                                seed=7).transform_trace(tiny_trace)
        # Same multiset of flows, every timestamp moved by at most max_delay.
        before = np.sort(tiny_trace.packets.ts)
        after = np.sort(faulted.packets.ts)
        assert bool(np.all(after - before >= 0))
        assert bool(np.all(after - before <= max_delay + 1e-9))

    def test_deterministic_given_seed(self, tiny_trace):
        a = PacketReorder(0.05, 1.0, seed=3).transform_trace(tiny_trace)
        b = PacketReorder(0.05, 1.0, seed=3).transform_trace(tiny_trace)
        assert bool(np.array_equal(a.packets.ts, b.packets.ts))


class TestPacketDuplication:
    def test_copies_accounted(self, tiny_trace):
        faulted = PacketDuplication(fraction=0.01, delay=0.2).transform_trace(
            tiny_trace
        )
        added = faulted.metadata["duplicated_packets"]
        assert added > 0
        assert len(faulted.packets) == len(tiny_trace.packets) + added
        assert bool(np.all(np.diff(faulted.packets.ts) >= 0))


class TestTraceGap:
    def test_window_emptied(self, tiny_trace):
        gap = TraceGap(start=20.0, duration=5.0)
        faulted = gap.transform_trace(tiny_trace)
        ts = faulted.packets.ts
        assert not bool(np.any((ts >= 20.0) & (ts < 25.0)))
        lost = faulted.metadata["gap_lost_packets"]
        assert lost == len(tiny_trace.packets) - len(faulted.packets)
        assert lost > 0


class TestBitFlips:
    def test_zero_fraction_is_a_noop(self, bitmap_filter):
        rng = np.random.default_rng(0)
        assert flip_random_bits(bitmap_filter.bitmap, 0.0, rng) == 0
        for vec in bitmap_filter.bitmap.vectors:
            assert not bool(np.unpackbits(vec.as_numpy()).any())

    def test_flip_every_bit(self, bitmap_filter):
        bitmap = bitmap_filter.bitmap
        rng = np.random.default_rng(0)
        total = flip_random_bits(bitmap, 1.0, rng)
        num_bits = bitmap.vectors[0].num_bits
        assert total == len(bitmap.vectors) * num_bits
        for vec in bitmap.vectors:
            assert bool(np.all(vec.as_numpy() == 0xFF))

    def test_flip_count_matches_popcount(self, bitmap_filter):
        """On an empty bitmap, the reported count equals set bits."""
        bitmap = bitmap_filter.bitmap
        rng = np.random.default_rng(42)
        total = flip_random_bits(bitmap, 0.01, rng)
        popcount = sum(int(np.unpackbits(vec.as_numpy()).sum())
                       for vec in bitmap.vectors)
        assert total == popcount > 0

    def test_injector_records_flip_count(self, bitmap_filter):
        flips = BitFlips(at=5.0, fraction=0.01)
        (event,) = flips.events()
        assert event.ts == 5.0
        event.apply(bitmap_filter, 5.0)
        assert flips.flipped > 0


class TestPerturbedStream:
    def test_timestamps_preserved_but_out_of_order(self, tiny_trace):
        packets = tiny_trace.packets[:500]
        stream = perturbed_stream(packets, fraction=0.1, max_displacement=5,
                                  seed=1)
        assert len(stream) == len(packets)
        ts = [pkt.ts for pkt in stream]
        assert sorted(ts) == sorted(packets.ts.tolist())
        assert any(a > b for a, b in zip(ts, ts[1:]))


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            RotationStall(at=1.0, duration=0.0)
        with pytest.raises(ValueError):
            CrashRestart(crash_at=5.0, downtime=1.0, snapshot_age=10.0)
        with pytest.raises(ValueError):
            CrashRestart(crash_at=5.0, downtime=0.0)
        with pytest.raises(ValueError):
            BitFlips(at=0.0, fraction=1.5)
        with pytest.raises(ValueError):
            PacketReorder(fraction=0.0, max_delay=1.0)
        with pytest.raises(ValueError):
            PacketReorder(fraction=0.5, max_delay=0.0)
        with pytest.raises(ValueError):
            PacketDuplication(fraction=0.5, delay=-1.0)
        with pytest.raises(ValueError):
            TraceGap(start=0.0, duration=0.0)

    def test_crash_restart_event_order(self):
        crash = CrashRestart(crash_at=10.0, downtime=2.0, snapshot_age=3.0)
        times = [event.ts for event in crash.events()]
        assert times == [7.0, 10.0, 12.0]
