"""Tests for degraded-mode operation: down state, warm-up, stalls, fail policy."""

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, Decision
from repro.core.resilience import FailPolicy
from repro.faults.harness import run_with_faults
from repro.faults.injectors import (
    CrashRestart,
    Outage,
    PacketReorder,
    RotationStall,
)
from repro.net.packet import PacketArray
from repro.sim.pipeline import run_filter_on_trace
from repro.sim.router import EdgeRouter
from repro.telemetry.registry import use_registry
from tests.conftest import make_reply, make_request


class TestDownState:
    def test_fail_closed_drops_inbound_passes_outbound(
        self, small_config, protected, client_addr, server_addr
    ):
        filt = BitmapFilter(small_config, protected)  # FAIL_CLOSED default
        request = make_request(1.0, client_addr, server_addr)
        filt.process(request)  # a live mark the outage must ignore
        filt.fail()
        assert filt.is_down
        out = make_request(2.0, client_addr, server_addr, sport=6000)
        assert filt.process(out) is Decision.PASS
        assert filt.stats.unmarked_outgoing == 1
        # Even the solicited reply drops: policy, not bitmap, judges it.
        assert filt.process(make_reply(request, 2.5)) is Decision.DROP
        assert filt.stats.degraded_dropped == 1

    def test_fail_open_admits_unsolicited_inbound(
        self, small_config, protected, client_addr, server_addr
    ):
        filt = BitmapFilter(small_config, protected,
                            fail_policy=FailPolicy.FAIL_OPEN)
        filt.fail()
        unsolicited = make_reply(
            make_request(1.0, client_addr, server_addr, sport=7777), 1.5
        )
        assert filt.process(unsolicited) is Decision.PASS
        assert filt.stats.degraded_admitted == 1

    def test_recover_catches_up_missed_rotations(self, bitmap_filter):
        bitmap_filter.fail()
        missed = bitmap_filter.recover(23.0)  # rotations due at 5,10,15,20
        assert missed == 4
        assert bitmap_filter.stats.rotations == 4
        assert not bitmap_filter.is_down
        te = bitmap_filter.config.expiry_timer
        assert bitmap_filter.in_warmup(23.0 + te - 0.1)
        assert not bitmap_filter.in_warmup(23.0 + te + 0.1)

    def test_recover_without_missed_rotations_skips_warmup(self, bitmap_filter):
        bitmap_filter.fail()
        assert bitmap_filter.recover(2.0) == 0
        assert not bitmap_filter.in_warmup(2.0)

    def test_batch_matches_scalar_while_down(
        self, small_config, protected, client_addr, server_addr
    ):
        packets = []
        for i in range(8):
            request = make_request(1.0 + i, client_addr, server_addr,
                                   sport=5000 + i)
            packets.append(request)
            packets.append(make_reply(request, 1.5 + i))
        packets.sort(key=lambda pkt: pkt.ts)
        for policy in (FailPolicy.FAIL_CLOSED, FailPolicy.FAIL_OPEN):
            scalar = BitmapFilter(small_config, protected, fail_policy=policy)
            batched = BitmapFilter(small_config, protected, fail_policy=policy)
            scalar.fail()
            batched.fail()
            expected = [scalar.process(pkt) is Decision.PASS for pkt in packets]
            verdicts = batched.process_batch(PacketArray.from_packets(packets))
            assert verdicts.tolist() == expected
            assert batched.stats.as_dict() == scalar.stats.as_dict()


class TestWarmup:
    def test_admits_bitmap_misses_until_deadline(
        self, bitmap_filter, client_addr, server_addr
    ):
        bitmap_filter.begin_warmup(30.0)
        never_sent = make_request(5.0, client_addr, server_addr, sport=8000)
        assert bitmap_filter.process(make_reply(never_sent, 10.0)) is Decision.PASS
        assert bitmap_filter.stats.warmup_admitted == 1
        assert bitmap_filter.process(make_reply(never_sent, 31.0)) is Decision.DROP

    @pytest.mark.parametrize("exact", [True, False])
    def test_batch_paths_honor_warmup(
        self, small_config, protected, client_addr, server_addr, exact
    ):
        filt = BitmapFilter(small_config, protected)
        filt.begin_warmup(30.0)
        replies = [
            make_reply(make_request(1.0, client_addr, server_addr,
                                    sport=8100 + i), float(ts))
            for i, ts in enumerate((10.0, 20.0, 29.0, 31.0, 40.0))
        ]
        verdicts = filt.process_batch(PacketArray.from_packets(replies),
                                      exact=exact)
        assert verdicts.tolist() == [True, True, True, False, False]
        assert filt.stats.warmup_admitted == 3


class TestRotationStall:
    def test_stall_blocks_then_catch_up(self, bitmap_filter):
        bitmap_filter.stall_rotations()
        assert bitmap_filter.rotations_stalled
        assert bitmap_filter.advance_to(17.0) == 0
        assert bitmap_filter.resume_rotations(17.0, catch_up=True) == 3
        assert bitmap_filter.stats.rotations == 3

    def test_resume_without_catch_up_stretches_schedule(self, bitmap_filter):
        bitmap_filter.stall_rotations()
        bitmap_filter.advance_to(17.0)
        assert bitmap_filter.resume_rotations(17.0, catch_up=False) == 1
        # The naive late timer rotated once and rescheduled from now.
        assert bitmap_filter.advance_to(21.9) == 0
        assert bitmap_filter.advance_to(22.0) == 1


class _RaisingFilter:
    def process(self, pkt):
        raise RuntimeError("filter wedged")


class TestEdgeRouterFailPolicy:
    def test_fail_closed_drops_inbound_on_filter_error(
        self, protected, client_addr, server_addr
    ):
        router = EdgeRouter("r", protected, _RaisingFilter(),
                            fail_policy=FailPolicy.FAIL_CLOSED)
        request = make_request(1.0, client_addr, server_addr)
        assert router.forward(request) is Decision.PASS  # outbound unaffected
        assert router.forward(make_reply(request, 1.5)) is Decision.DROP
        assert router.counters.filter_errors == 2
        assert router.counters.dropped_in == 1

    def test_fail_open_admits_inbound_on_filter_error(
        self, protected, client_addr, server_addr
    ):
        router = EdgeRouter("r", protected, _RaisingFilter(),
                            fail_policy=FailPolicy.FAIL_OPEN)
        reply = make_reply(make_request(1.0, client_addr, server_addr), 1.5)
        assert router.forward(reply) is Decision.PASS
        assert router.counters.filter_errors == 1
        assert router.counters.dropped_in == 0


class TestHarness:
    def test_no_injectors_matches_pipeline(self, small_config, tiny_trace):
        plain = run_filter_on_trace(
            BitmapFilter(small_config, tiny_trace.protected), tiny_trace
        )
        faulted = run_with_faults(
            BitmapFilter(small_config, tiny_trace.protected), tiny_trace, []
        )
        assert bool(np.array_equal(faulted.run.verdicts, plain.verdicts))
        assert faulted.filters_swapped == 0
        assert faulted.fault_log == []

    @pytest.mark.parametrize("policy,expected", [
        (FailPolicy.FAIL_CLOSED, 0.0),
        (FailPolicy.FAIL_OPEN, 1.0),
    ])
    def test_outage_pass_fraction(self, small_config, tiny_trace, policy,
                                  expected):
        outage = Outage(at=20.0, duration=5.0, warmup_grace=0.0)
        result = run_with_faults(
            BitmapFilter(small_config, tiny_trace.protected,
                         fail_policy=policy),
            tiny_trace, [outage],
        )
        assert result.incoming_pass_fraction(20.0, 25.0) == expected
        assert len(result.fault_log) == 2

    def test_crash_restart_swaps_the_filter(self, small_config, tiny_trace):
        original = BitmapFilter(small_config, tiny_trace.protected)
        crash = CrashRestart(crash_at=20.0, downtime=2.0, snapshot_age=5.0)
        result = run_with_faults(original, tiny_trace, [crash])
        assert result.filters_swapped == 1
        assert result.filter is not original
        assert not result.filter.is_down

    def test_stall_leaves_verdict_count_intact(self, small_config, tiny_trace):
        stall = RotationStall(at=20.0, duration=10.0)
        result = run_with_faults(
            BitmapFilter(small_config, tiny_trace.protected), tiny_trace,
            [stall],
        )
        assert len(result.run.verdicts) == len(tiny_trace.packets)
        assert not result.filter.rotations_stalled


@pytest.mark.telemetry
class TestFaultTelemetry:
    """Fault injections and degraded-mode transitions show up in metrics."""

    def _injected(self, registry, name):
        counter = registry.get("repro_faults_injected_total", fault=name)
        return 0 if counter is None else counter.value

    def test_event_injectors_increment_named_counters(
        self, small_config, tiny_trace
    ):
        outage = Outage(at=20.0, duration=5.0, warmup_grace=0.0)
        stall = RotationStall(at=30.0, duration=5.0)
        with use_registry() as registry:
            run_with_faults(
                BitmapFilter(small_config, tiny_trace.protected), tiny_trace,
                [outage, stall],
            )
        # Each injector fires two timed events (enter + leave).
        assert self._injected(registry, outage.name) == 2
        assert self._injected(registry, stall.name) == 2

    def test_trace_transform_counts_one_injection(self, small_config,
                                                  tiny_trace):
        reorder = PacketReorder(fraction=0.1, max_delay=0.5)
        with use_registry() as registry:
            run_with_faults(
                BitmapFilter(small_config, tiny_trace.protected), tiny_trace,
                [reorder],
            )
        assert self._injected(registry, reorder.name) == 1

    def test_no_faults_no_counter(self, small_config, tiny_trace):
        with use_registry() as registry:
            run_with_faults(
                BitmapFilter(small_config, tiny_trace.protected), tiny_trace,
                [],
            )
        assert registry.get("repro_faults_injected_total") is None

    def test_degraded_gauge_tracks_fail_and_recover(self, small_config,
                                                    protected):
        with use_registry() as registry:
            filt = BitmapFilter(small_config, protected)
            gauge = registry.get("repro_filter_degraded")
            assert gauge.value == 0
            filt.fail()
            assert gauge.value == 1
            filt.recover(12.0)
            assert gauge.value == 0

    def test_degraded_admission_counters(self, small_config, protected,
                                         client_addr, server_addr):
        with use_registry() as registry:
            filt = BitmapFilter(small_config, protected,
                                fail_policy=FailPolicy.FAIL_OPEN)
            filt.fail()
            request = make_request(1.0, client_addr, server_addr)
            filt.process(make_reply(request, 1.5))
            assert registry.get("repro_filter_degraded_admits_total").value == 1
            filt.recover(2.0)
            closed = BitmapFilter(small_config, protected)
            closed.fail()
            closed.process(make_reply(request, 3.0))
            assert registry.get("repro_filter_degraded_drops_total").value == 1

    def test_stalled_gauge_and_warmup_deadline(self, small_config, protected):
        with use_registry() as registry:
            filt = BitmapFilter(small_config, protected)
            filt.stall_rotations()
            assert registry.get("repro_filter_rotations_stalled").value == 1
            filt.resume_rotations(17.0, catch_up=True)
            assert registry.get("repro_filter_rotations_stalled").value == 0
            filt.begin_warmup(42.0)
            assert (registry.get("repro_filter_warmup_until_seconds").value
                    == 42.0)

    def test_outage_run_records_transition_pair(self, small_config,
                                                tiny_trace):
        outage = Outage(at=20.0, duration=5.0, warmup_grace=0.0)
        with use_registry() as registry:
            result = run_with_faults(
                BitmapFilter(small_config, tiny_trace.protected), tiny_trace,
                [outage],
            )
        # The filter went down and came back: gauge ends at 0, and the
        # degraded-mode drop counter saw the fail-closed window's traffic.
        assert registry.get("repro_filter_degraded").value == 0
        dropped = registry.get("repro_filter_degraded_drops_total").value
        assert dropped == result.run.filter_stats["degraded_dropped"] > 0
