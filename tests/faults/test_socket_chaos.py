"""ChaosTcpProxy behavior at the byte level, against a plain echo server.

The serve-client-facing consequences (typed errors, no hangs) live in
``tests/serve/test_client_timeouts.py``; here we pin the proxy's own
contract per mode.
"""

import socket
import threading

import pytest

from repro.faults import CHAOS_MODES, ChaosTcpProxy

pytestmark = pytest.mark.faults


class EchoServer:
    """Echo upstream: sends every received byte straight back."""

    def __init__(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()[:2]
        self._threads = []
        self._accepting = threading.Thread(target=self._accept, daemon=True)
        self._accepting.start()

    def _accept(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._echo, args=(conn,), daemon=True)
            thread.start()
            self._threads.append(thread)

    @staticmethod
    def _echo(conn):
        try:
            while True:
                data = conn.recv(1 << 16)
                if not data:
                    return
                conn.sendall(data)
        except OSError:
            pass
        finally:
            conn.close()

    def close(self):
        self._listener.close()


@pytest.fixture()
def echo():
    server = EchoServer()
    yield server
    server.close()


def dial(address, timeout=5.0):
    return socket.create_connection(address, timeout=timeout)


def recv_exactly(sock, count):
    chunks = []
    while count > 0:
        data = sock.recv(count)
        if not data:
            break
        chunks.append(data)
        count -= len(data)
    return b"".join(chunks)


class TestModes:
    def test_pass_mode_forwards_bytes_intact(self, echo):
        with ChaosTcpProxy(echo.address, mode="pass") as proxy:
            sock = dial(proxy.address)
            payload = bytes(range(256)) * 8
            sock.sendall(payload)
            assert recv_exactly(sock, len(payload)) == payload
            sock.close()
            assert proxy.connections_accepted == 1
            assert proxy.bytes_forwarded >= len(payload)

    def test_slow_mode_trickles_but_completes(self, echo):
        with ChaosTcpProxy(echo.address, mode="slow", chunk_bytes=32,
                           delay=0.001) as proxy:
            sock = dial(proxy.address)
            payload = b"x" * 1000
            sock.sendall(payload)
            assert recv_exactly(sock, len(payload)) == payload
            sock.close()

    def test_reset_mode_kills_the_connection(self):
        with ChaosTcpProxy(mode="reset") as proxy:
            # The RST may land on connect, send, recv, or close depending
            # on timing; it must be an error somewhere, never a hang.
            with pytest.raises(OSError):
                sock = dial(proxy.address)
                try:
                    for _ in range(50):
                        sock.sendall(b"hello")
                        if not sock.recv(1 << 16):
                            raise ConnectionResetError("closed")
                finally:
                    sock.close()
            assert proxy.resets_injected >= 1

    def test_reset_after_forwards_then_kills(self, echo):
        with ChaosTcpProxy(echo.address, mode="reset_after",
                           reset_after_bytes=64) as proxy:
            with pytest.raises(OSError):
                sock = dial(proxy.address, timeout=5.0)
                try:
                    for _ in range(100):
                        sock.sendall(b"a" * 32)
                        data = sock.recv(1 << 16)
                        if not data:
                            raise ConnectionResetError("closed")
                finally:
                    sock.close()
            assert proxy.resets_injected >= 1
            # At most the cap each way (client->upstream capped at 64,
            # the echo of those bytes flows back through pump_down).
            assert proxy.bytes_forwarded <= 2 * 64

    def test_stall_mode_never_answers(self):
        with ChaosTcpProxy(mode="stall") as proxy:
            sock = dial(proxy.address)
            sock.settimeout(0.2)
            sock.sendall(b"anyone home?")
            with pytest.raises(socket.timeout):
                sock.recv(1)
            sock.close()


class TestConfiguration:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ChaosTcpProxy(("127.0.0.1", 1), mode="explode")

    def test_forwarding_modes_require_upstream(self):
        for mode in ("pass", "slow", "reset_after"):
            with pytest.raises(ValueError, match="upstream"):
                ChaosTcpProxy(mode=mode)

    def test_reset_and_stall_work_without_upstream(self):
        for mode in ("reset", "stall"):
            proxy = ChaosTcpProxy(mode=mode)
            proxy.start()
            proxy.stop()

    def test_set_mode_validates_too(self, echo):
        proxy = ChaosTcpProxy(echo.address, mode="pass")
        proxy.set_mode("stall")
        with pytest.raises(ValueError):
            proxy.set_mode("nope")
        no_upstream = ChaosTcpProxy(mode="reset")
        with pytest.raises(ValueError, match="upstream"):
            no_upstream.set_mode("pass")

    def test_mode_change_applies_to_new_connections(self, echo):
        with ChaosTcpProxy(echo.address, mode="pass") as proxy:
            first = dial(proxy.address)
            first.sendall(b"ok")
            assert recv_exactly(first, 2) == b"ok"
            proxy.set_mode("stall")
            second = dial(proxy.address)
            second.settimeout(0.2)
            second.sendall(b"ok")
            with pytest.raises(socket.timeout):
                second.recv(1)
            # The first (pass-mode) connection still works.
            first.sendall(b"still")
            assert recv_exactly(first, 5) == b"still"
            first.close()
            second.close()

    def test_all_modes_enumerated(self):
        assert set(CHAOS_MODES) == {"pass", "reset", "reset_after",
                                    "stall", "slow"}

    def test_double_start_rejected(self):
        proxy = ChaosTcpProxy(mode="stall")
        proxy.start()
        try:
            with pytest.raises(RuntimeError, match="already"):
                proxy.start()
        finally:
            proxy.stop()
