"""Assorted invariants: token-bucket conservation, stdlib address oracle."""

import ipaddress

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines.throttle import TokenBucket
from repro.net.address import AddressSpace, IPv4Network, format_ipv4, parse_ipv4


class TestTokenBucketConservation:
    @given(
        rate=st.floats(0.5, 100.0),
        burst=st.floats(1.0, 50.0),
        gaps=st.lists(st.floats(0.0, 5.0), min_size=1, max_size=100),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_exceeds_rate_times_time_plus_burst(self, rate, burst, gaps):
        """Over any arrival schedule, admissions <= burst + rate * elapsed."""
        bucket = TokenBucket(rate=rate, burst=burst)
        t = 0.0
        admitted = 0
        for gap in gaps:
            t += gap
            if bucket.allow(t):
                admitted += 1
        assert admitted <= burst + rate * t + 1e-6

    @given(rate=st.floats(0.5, 100.0), burst=st.floats(1.0, 50.0),
           gaps=st.lists(st.floats(0.0, 5.0), max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_tokens_bounded(self, rate, burst, gaps):
        bucket = TokenBucket(rate=rate, burst=burst)
        t = 0.0
        for gap in gaps:
            t += gap
            bucket.allow(t)
            assert 0.0 <= bucket.tokens <= burst + 1e-9


class TestAddressOracle:
    """Our int-backed addressing agrees with the stdlib ipaddress module."""

    @given(value=st.integers(0, 2**32 - 1))
    def test_format_matches_stdlib(self, value):
        assert format_ipv4(value) == str(ipaddress.IPv4Address(value))

    @given(value=st.integers(0, 2**32 - 1))
    def test_parse_matches_stdlib(self, value):
        text = str(ipaddress.IPv4Address(value))
        assert parse_ipv4(text) == int(ipaddress.IPv4Address(text))

    @given(prefix_host=st.integers(0, 2**32 - 1), prefix_len=st.integers(0, 32),
           probe=st.integers(0, 2**32 - 1))
    @settings(max_examples=300, deadline=None)
    def test_network_membership_matches_stdlib(self, prefix_host, prefix_len,
                                               probe):
        ours = IPv4Network.containing(prefix_host, prefix_len)
        stdlib = ipaddress.ip_network(
            (prefix_host, prefix_len), strict=False)
        assert (probe in ours) == (
            ipaddress.IPv4Address(probe) in stdlib)
        assert ours.num_addresses == stdlib.num_addresses
        assert ours.netmask == int(stdlib.netmask)

    @given(base=st.integers(0, (2**32 - 1) >> 8), count=st.integers(1, 8),
           probe=st.integers(0, 2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_address_space_matches_stdlib_union(self, base, count, probe):
        first = base << 8
        if first + (count << 8) > 2**32:
            count = 1
        space = AddressSpace.class_c_block(first, count)
        networks = [
            ipaddress.ip_network((first + (i << 8), 24)) for i in range(count)
        ]
        expected = any(ipaddress.IPv4Address(probe) in net for net in networks)
        assert space.contains_int(probe) == expected
