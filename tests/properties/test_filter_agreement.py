"""Property tests of the bitmap/oracle agreement and batch-path equivalence.

The central soundness property (DESIGN.md section 6): every genuine reply
that the naive exact filter passes *inside the bitmap's guaranteed window*
must also pass the bitmap filter — the bitmap errs only on the permissive
side (false negatives), never by dropping fresh legitimate replies.
"""

import numpy as np
from hypothesis import given, settings

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, Decision
from repro.net.packet import PacketArray
from tests.strategies import (
    PROTECTED,
    script_to_packets as _script_to_packets,
    traffic_scripts,
)

CONFIG = BitmapFilterConfig(order=10, num_vectors=4, num_hashes=3,
                            rotation_interval=5.0)


class TestGuaranteedWindowSoundness:
    @given(events=traffic_scripts())
    @settings(max_examples=200, deadline=None)
    def test_fresh_replies_never_dropped(self, events):
        """An incoming packet whose flow sent an outgoing packet within the
        guaranteed window (k-1)*dt is always passed."""
        filt = BitmapFilter(CONFIG, PROTECTED)
        window = CONFIG.guaranteed_window
        last_outgoing = {}
        for pkt in _script_to_packets(events):
            outgoing = PROTECTED.contains_int(pkt.src)
            verdict = filt.process(pkt)
            if outgoing:
                last_outgoing[(pkt.src, pkt.sport, pkt.dst)] = pkt.ts
            else:
                key = (pkt.dst, pkt.dport, pkt.src)
                t0 = last_outgoing.get(key)
                if t0 is not None and pkt.ts - t0 < window:
                    assert verdict is Decision.PASS


class TestBatchEquivalence:
    @given(events=traffic_scripts())
    @settings(max_examples=150, deadline=None)
    def test_exact_batch_equals_scalar(self, events):
        packets = _script_to_packets(events)
        scalar = BitmapFilter(CONFIG, PROTECTED)
        expected = [scalar.process(p) is Decision.PASS for p in packets]
        batch = BitmapFilter(CONFIG, PROTECTED)
        verdicts = batch.process_batch(PacketArray.from_packets(packets), exact=True)
        assert verdicts.tolist() == expected

    @given(events=traffic_scripts())
    @settings(max_examples=150, deadline=None)
    def test_windowed_is_superset_of_exact(self, events):
        """The windowed approximation only ever passes *more*."""
        packets = PacketArray.from_packets(_script_to_packets(events))
        exact = BitmapFilter(CONFIG, PROTECTED).process_batch(packets, exact=True)
        windowed = BitmapFilter(CONFIG, PROTECTED).process_batch(packets, exact=False)
        assert bool(np.all(windowed >= exact))


class TestOracleAgreement:
    @given(events=traffic_scripts())
    @settings(max_examples=100, deadline=None)
    def test_bitmap_superset_of_paper_naive_oracle(self, events):
        """Section 3.3's naive solution with T = the guaranteed window:
        whatever it passes, the bitmap passes too (the bitmap may add false
        negatives, never extra false positives inside the window).

        The paper's naive filter associates the timer with *outgoing*
        tuples only ("a timer ... is associated with the address tuple
        τ_out of each outgoing packet"), so the oracle here refreshes only
        on outgoing packets.
        """
        packets = _script_to_packets(events)
        bitmap = BitmapFilter(CONFIG, PROTECTED)
        window = CONFIG.guaranteed_window
        table = {}
        for pkt in packets:
            bitmap_verdict = bitmap.process(pkt)
            if PROTECTED.contains_int(pkt.src):
                table[(pkt.proto, pkt.src, pkt.sport, pkt.dst, pkt.dport)] = pkt.ts
            else:
                t0 = table.get((pkt.proto, pkt.dst, pkt.dport, pkt.src, pkt.sport))
                oracle_passes = t0 is not None and pkt.ts - t0 < window
                if oracle_passes:
                    assert bitmap_verdict is Decision.PASS
