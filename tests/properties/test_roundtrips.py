"""Property tests: representation round-trips and inversions."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.net.address import format_ipv4, parse_ipv4
from repro.net.flow import AddressTuple
from repro.net.packet import Packet, PacketArray, PacketLabel, TcpFlags

addresses = st.integers(0, 2**32 - 1)
ports = st.integers(0, 2**16 - 1)
protos = st.sampled_from([1, 6, 17])

packets = st.builds(
    Packet,
    ts=st.floats(0.0, 1e6, allow_nan=False),
    proto=protos,
    src=addresses,
    sport=ports,
    dst=addresses,
    dport=ports,
    flags=st.sampled_from([TcpFlags.NONE, TcpFlags.SYN, TcpFlags.ACK,
                           TcpFlags.SYN | TcpFlags.ACK,
                           TcpFlags.FIN | TcpFlags.ACK, TcpFlags.RST]),
    size=st.integers(0, 65535),
    label=st.sampled_from(list(PacketLabel)),
)


class TestAddressRoundTrip:
    @given(value=addresses)
    def test_format_parse_inverse(self, value):
        assert parse_ipv4(format_ipv4(value)) == value


class TestTupleInversion:
    @given(proto=protos, saddr=addresses, sport=ports, daddr=addresses, dport=ports)
    def test_inverse_is_involution(self, proto, saddr, sport, daddr, dport):
        tup = AddressTuple(proto, saddr, sport, daddr, dport)
        assert tup.inverse().inverse() == tup

    @given(proto=protos, saddr=addresses, sport=ports, daddr=addresses, dport=ports)
    def test_inverse_differs_unless_symmetric(self, proto, saddr, sport, daddr, dport):
        tup = AddressTuple(proto, saddr, sport, daddr, dport)
        if (saddr, sport) != (daddr, dport):
            assert tup.inverse() != tup


class TestPacketArrayRoundTrip:
    @given(packet_list=st.lists(packets, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_from_packets_to_packets(self, packet_list):
        arr = PacketArray.from_packets(packet_list)
        assert arr.to_packets() == packet_list

    @given(packet_list=st.lists(packets, max_size=30))
    def test_concat_split_identity(self, packet_list):
        arr = PacketArray.from_packets(packet_list)
        half = len(arr) // 2
        rejoined = PacketArray.concatenate([arr[:half], arr[half:]])
        assert rejoined.to_packets() == packet_list

    @given(packet_list=st.lists(packets, max_size=30))
    def test_sort_is_permutation(self, packet_list):
        arr = PacketArray.from_packets(packet_list).sorted_by_time()
        assert sorted(arr.ts.tolist()) == arr.ts.tolist()
        assert len(arr) == len(packet_list)

    @given(packet_list=st.lists(packets, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_npz_round_trip(self, packet_list, tmp_path_factory):
        from repro.net.address import AddressSpace
        from repro.traffic.trace import Trace

        protected = AddressSpace.class_c_block("10.0.0.0", 1)
        trace = Trace(PacketArray.from_packets(packet_list), protected)
        path = tmp_path_factory.mktemp("npz") / "t.npz"
        trace.save_npz(path)
        loaded = Trace.load_npz(path)
        assert loaded.packets.to_packets() == packet_list


class TestReplySymmetry:
    @given(pkt=packets, ts=st.floats(0.0, 1e6, allow_nan=False))
    def test_reply_of_reply_restores_endpoints(self, pkt, ts):
        back = pkt.reply(ts).reply(pkt.ts)
        assert back.src == pkt.src
        assert back.sport == pkt.sport
        assert back.dst == pkt.dst
        assert back.dport == pkt.dport


class TestPcapRoundTrip:
    @given(packet_list=st.lists(
        st.builds(
            Packet,
            ts=st.floats(0.0, 1e5, allow_nan=False),
            proto=st.sampled_from([6, 17]),
            src=addresses,
            sport=ports,
            dst=addresses,
            dport=ports,
            flags=st.sampled_from([TcpFlags.NONE, TcpFlags.SYN, TcpFlags.ACK,
                                   TcpFlags.FIN | TcpFlags.ACK, TcpFlags.RST]),
            size=st.integers(40, 1500),
            label=st.sampled_from(list(PacketLabel)),
        ),
        max_size=25,
    ))
    @settings(max_examples=50, deadline=None)
    def test_pcap_preserves_fields(self, packet_list, tmp_path_factory):
        from repro.net.pcap import read_pcap, write_pcap

        arr = PacketArray.from_packets(packet_list)
        path = tmp_path_factory.mktemp("pcap") / "t.pcap"
        write_pcap(arr, path)
        loaded = read_pcap(path)
        assert len(loaded) == len(arr)
        for field in ("proto", "src", "sport", "dst", "dport", "label"):
            assert np.array_equal(loaded.data[field], arr.data[field]), field
        # UDP has no flag bits on the wire, so flags survive only for TCP.
        expected_flags = np.where(arr.proto == 6, arr.flags, 0)
        assert np.array_equal(loaded.flags, expected_flags)
        # Sizes clamp up to the header stack (40B TCP / 28B UDP over IP).
        assert bool(np.all(loaded.size >= np.minimum(arr.size, 28)))
        # Timestamps round to microseconds.
        assert np.allclose(loaded.ts, arr.ts, atol=1e-5)
