"""Property: all three SPI backends are behaviourally identical.

The naive dict filter is the executable specification; the hash+linked-list
and AVL implementations must produce the same verdict for every packet of
any random traffic script, and end with the same flow population.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.bitmap_filter import Decision
from repro.net.address import AddressSpace
from repro.net.packet import Packet, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP
from repro.spi.avltree import AvlTreeFilter
from repro.spi.hashlist import HashListFilter
from repro.spi.naive import NaiveExactFilter

PROTECTED = AddressSpace.class_c_block("172.16.0.0", 2)

_FLAG_CHOICES = [
    TcpFlags.NONE, TcpFlags.SYN, TcpFlags.ACK, TcpFlags.SYN | TcpFlags.ACK,
    TcpFlags.FIN | TcpFlags.ACK, TcpFlags.RST, TcpFlags.PSH | TcpFlags.ACK,
]


@st.composite
def packet_scripts(draw):
    """Random scripts over a small set of flows, inside + outside senders."""
    n = draw(st.integers(1, 60))
    ts = 0.0
    packets = []
    for _ in range(n):
        ts += draw(st.floats(0.0, 30.0))
        flow = draw(st.integers(0, 4))
        outgoing = draw(st.booleans())
        flags = draw(st.sampled_from(_FLAG_CHOICES))
        proto = draw(st.sampled_from([IPPROTO_TCP, IPPROTO_UDP]))
        client = PROTECTED.networks[flow % 2].host(1 + flow)
        server = 0x08080000 + flow
        sport = 20_000 + flow
        if outgoing:
            packets.append(Packet(ts, proto, client, sport, server, 80, flags))
        else:
            packets.append(Packet(ts, proto, server, 80, client, sport, flags))
    return packets


class TestBackendEquivalence:
    @given(script=packet_scripts())
    @settings(max_examples=150, deadline=None)
    def test_verdicts_identical(self, script):
        filters = [NaiveExactFilter(PROTECTED), HashListFilter(PROTECTED),
                   AvlTreeFilter(PROTECTED)]
        for pkt in script:
            verdicts = {type(f).__name__: f.process(pkt) for f in filters}
            assert len(set(verdicts.values())) == 1, (pkt, verdicts)

    @given(script=packet_scripts())
    @settings(max_examples=100, deadline=None)
    def test_flow_populations_identical(self, script):
        filters = [NaiveExactFilter(PROTECTED), HashListFilter(PROTECTED),
                   AvlTreeFilter(PROTECTED)]
        for pkt in script:
            for f in filters:
                f.process(pkt)
        populations = {f.num_flows for f in filters}
        assert len(populations) == 1
        inserts = {f.stats.inserts for f in filters}
        assert len(inserts) == 1

    @given(script=packet_scripts())
    @settings(max_examples=75, deadline=None)
    def test_batch_path_matches_scalar_for_all_backends(self, script):
        from repro.net.packet import PacketArray

        batch = PacketArray.from_packets(script)
        for cls in (NaiveExactFilter, HashListFilter, AvlTreeFilter):
            scalar = cls(PROTECTED)
            expected = [scalar.process(p) is Decision.PASS for p in script]
            vectorized = cls(PROTECTED)
            got = vectorized.process_array(batch)
            assert got.tolist() == expected, cls.__name__
