"""Property: all three SPI backends are behaviourally identical.

The naive dict filter is the executable specification; the hash+linked-list
and AVL implementations must produce the same verdict for every packet of
any random traffic script, and end with the same flow population.
"""

from hypothesis import given, settings

from repro.core.bitmap_filter import Decision
from repro.spi.avltree import AvlTreeFilter
from repro.spi.hashlist import HashListFilter
from repro.spi.naive import NaiveExactFilter
from tests.strategies import PROTECTED, packet_scripts


class TestBackendEquivalence:
    @given(script=packet_scripts())
    @settings(max_examples=150, deadline=None)
    def test_verdicts_identical(self, script):
        filters = [NaiveExactFilter(PROTECTED), HashListFilter(PROTECTED),
                   AvlTreeFilter(PROTECTED)]
        for pkt in script:
            verdicts = {type(f).__name__: f.process(pkt) for f in filters}
            assert len(set(verdicts.values())) == 1, (pkt, verdicts)

    @given(script=packet_scripts())
    @settings(max_examples=100, deadline=None)
    def test_flow_populations_identical(self, script):
        filters = [NaiveExactFilter(PROTECTED), HashListFilter(PROTECTED),
                   AvlTreeFilter(PROTECTED)]
        for pkt in script:
            for f in filters:
                f.process(pkt)
        populations = {f.num_flows for f in filters}
        assert len(populations) == 1
        inserts = {f.stats.inserts for f in filters}
        assert len(inserts) == 1

    @given(script=packet_scripts())
    @settings(max_examples=75, deadline=None)
    def test_batch_path_matches_scalar_for_all_backends(self, script):
        from repro.net.packet import PacketArray

        batch = PacketArray.from_packets(script)
        for cls in (NaiveExactFilter, HashListFilter, AvlTreeFilter):
            scalar = cls(PROTECTED)
            expected = [scalar.process(p) is Decision.PASS for p in script]
            vectorized = cls(PROTECTED)
            got = vectorized.process_batch(batch)
            assert got.tolist() == expected, cls.__name__
