"""Property-based tests of the bitmap filter's core invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.bitmap import Bitmap
from repro.core.hashing import HashFamily

keys = st.tuples(
    st.sampled_from([6, 17]),
    st.integers(0, 2**32 - 1),
    st.integers(0, 2**16 - 1),
    st.integers(0, 2**32 - 1),
)


class TestBitmapInvariants:
    @given(key_list=st.lists(keys, max_size=50), order=st.integers(4, 10))
    def test_marked_keys_always_found_before_rotation(self, key_list, order):
        """No false negatives for marked keys (Bloom no-false-negative)."""
        bitmap = Bitmap(4, order)
        hashes = HashFamily(3, order)
        for key in key_list:
            bitmap.mark(hashes.indices(key))
        for key in key_list:
            assert bitmap.test_current(hashes.indices(key))

    @given(key_list=st.lists(keys, min_size=1, max_size=30),
           rotations=st.integers(0, 3))
    def test_marks_survive_k_minus_1_rotations(self, key_list, rotations):
        """The guaranteed-window invariant: visible through k-1 rotations."""
        bitmap = Bitmap(4, 10)
        hashes = HashFamily(3, 10)
        for key in key_list:
            bitmap.mark(hashes.indices(key))
        for _ in range(rotations):  # up to k-1 = 3
            bitmap.rotate()
        for key in key_list:
            assert bitmap.test_current(hashes.indices(key))

    @given(key_list=st.lists(keys, max_size=30), extra=st.integers(4, 10))
    def test_empty_after_k_rotations(self, key_list, extra):
        bitmap = Bitmap(4, 8)
        hashes = HashFamily(2, 8)
        for key in key_list:
            bitmap.mark(hashes.indices(key))
        for _ in range(extra):
            bitmap.rotate()
        assert bitmap.is_empty()

    @given(key_list=st.lists(keys, max_size=30))
    def test_marking_is_idempotent(self, key_list):
        a, b = Bitmap(3, 9), Bitmap(3, 9)
        hashes = HashFamily(3, 9)
        for key in key_list:
            a.mark(hashes.indices(key))
            b.mark(hashes.indices(key))
            b.mark(hashes.indices(key))
        for va, vb in zip(a.vectors, b.vectors):
            assert va == vb

    @given(steps=st.lists(st.booleans(), max_size=40))
    def test_index_always_valid(self, steps):
        bitmap = Bitmap(5, 8)
        hashes = HashFamily(2, 8)
        for do_rotate in steps:
            if do_rotate:
                bitmap.rotate()
            else:
                bitmap.mark(hashes.indices((6, 1, 2, 3)))
            assert 0 <= bitmap.current_index < 5

    @given(key_list=st.lists(keys, max_size=40), order=st.integers(4, 10),
           num_hashes=st.integers(1, 5))
    def test_utilization_bounded_by_marks(self, key_list, order, num_hashes):
        """Current-vector popcount never exceeds m * #keys."""
        bitmap = Bitmap(2, order)
        hashes = HashFamily(num_hashes, order)
        for key in key_list:
            bitmap.mark(hashes.indices(key))
        assert bitmap.current.count() <= num_hashes * len(key_list)


class TestRotationStructure:
    @given(rotations=st.integers(0, 25), k=st.integers(2, 6))
    def test_rotation_index_is_modular(self, rotations, k):
        bitmap = Bitmap(k, 8)
        for _ in range(rotations):
            bitmap.rotate()
        assert bitmap.current_index == rotations % k

    @given(key=keys, k=st.integers(2, 6))
    def test_mark_lifetime_is_exactly_k_rotations(self, key, k):
        """Visible for exactly k-1 further rotations after marking."""
        bitmap = Bitmap(k, 10)
        hashes = HashFamily(2, 10)
        bitmap.mark(hashes.indices(key))
        survived = 0
        while bitmap.test_current(hashes.indices(key)):
            bitmap.rotate()
            survived += 1
            assert survived <= k
        assert survived == k - 1 + 1  # k-1 lookups succeed, k-th clears it
