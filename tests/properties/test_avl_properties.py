"""Property-based tests of the AVL tree under arbitrary operation sequences."""

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.spi.avltree import AvlTree

ops = st.lists(
    st.tuples(st.sampled_from(["put", "remove"]), st.integers(0, 200)),
    max_size=200,
)


class TestAvlAgainstDict:
    @given(operations=ops)
    def test_behaves_like_dict(self, operations):
        tree = AvlTree()
        model = {}
        for op, key in operations:
            if op == "put":
                assert tree.put(key, key * 2) == (key not in model)
                model[key] = key * 2
            else:
                assert tree.remove(key) == (key in model)
                model.pop(key, None)
        assert len(tree) == len(model)
        assert dict(tree.items()) == model
        assert list(tree.keys()) == sorted(model)
        tree.check_invariants()

    @given(operations=ops)
    def test_height_logarithmic(self, operations):
        tree = AvlTree()
        for op, key in operations:
            if op == "put":
                tree.put(key, None)
            else:
                tree.remove(key)
        n = len(tree)
        if n:
            # AVL height bound: 1.44 * log2(n + 2).
            import math

            assert tree.height <= 1.44 * math.log2(n + 2) + 1

    @given(key_list=st.lists(st.integers(0, 1000), min_size=1))
    def test_min_max(self, key_list):
        tree = AvlTree()
        for key in key_list:
            tree.put(key, None)
        assert tree.min_key() == min(key_list)
        assert tree.max_key() == max(key_list)


class AvlMachine(RuleBasedStateMachine):
    """Stateful testing: interleaved puts/removes with invariant checks."""

    def __init__(self):
        super().__init__()
        self.tree = AvlTree()
        self.model = {}

    @rule(key=st.integers(0, 100), value=st.integers())
    def put(self, key, value):
        self.tree.put(key, value)
        self.model[key] = value

    @rule(key=st.integers(0, 100))
    def remove(self, key):
        assert self.tree.remove(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=st.integers(0, 100))
    def lookup(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @invariant()
    def balanced_and_consistent(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.model)


TestAvlMachine = AvlMachine.TestCase
