"""Property: every PacketFilter implementation's batch path equals its
scalar path.

The unified API (``repro.core.filter_api``) promises that
``process_batch(packets)`` on a fresh filter returns exactly the verdicts a
scalar ``process`` loop would, for *all seven* implementations — the two
bitmap variants, the hybrid bitmap→cuckoo verified stack, the three SPI
backends, and the rate-limiting baseline.  ``exact=False`` is a windowed
approximation knob for the bitmap-backed filters: the windowed path may
only ever pass *more*, and every other filter must ignore the flag
entirely.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.throttle import AggregateRateLimiter
from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig, Decision
from repro.core.close_aware import CloseAwareBitmapFilter
from repro.core.filter_api import PacketFilter
from repro.core.hybrid import HybridVerifiedFilter, VerifySpec
from repro.net.packet import PacketArray
from repro.spi.avltree import AvlTreeFilter
from repro.spi.hashlist import HashListFilter
from repro.spi.naive import NaiveExactFilter
from tests.strategies import PROTECTED, mixed_direction_packets, packet_scripts

CONFIG = BitmapFilterConfig(order=10, num_vectors=4, num_hashes=3,
                            rotation_interval=5.0)

#: Fresh-instance factories for all seven PacketFilter implementations.
FILTER_FACTORIES = {
    "BitmapFilter": lambda: BitmapFilter(CONFIG, PROTECTED),
    "HybridVerifiedFilter": lambda: HybridVerifiedFilter(
        BitmapFilter(CONFIG, PROTECTED), VerifySpec(initial_order=4)),
    "CloseAwareBitmapFilter": lambda: CloseAwareBitmapFilter(CONFIG, PROTECTED),
    "NaiveExactFilter": lambda: NaiveExactFilter(PROTECTED),
    "HashListFilter": lambda: HashListFilter(PROTECTED),
    "AvlTreeFilter": lambda: AvlTreeFilter(PROTECTED),
    "AggregateRateLimiter": lambda: AggregateRateLimiter(
        PROTECTED, trigger_pps=5.0, limit_pps=2.0, window=5.0),
}

ALL_FILTERS = sorted(FILTER_FACTORIES)
#: Filters where exact=False must be a no-op (no windowed approximation).
#: Bitmap-backed stacks have a real windowed approximation path.
WINDOWED_FILTERS = ("BitmapFilter", "HybridVerifiedFilter")
EXACT_ONLY_FILTERS = sorted(set(ALL_FILTERS) - set(WINDOWED_FILTERS))


@pytest.mark.parametrize("name", ALL_FILTERS)
def test_implements_packet_filter_protocol(name):
    assert isinstance(FILTER_FACTORIES[name](), PacketFilter)


class TestBatchScalarAgreement:
    @pytest.mark.parametrize("name", ALL_FILTERS)
    @given(script=packet_scripts())
    @settings(max_examples=60, deadline=None)
    def test_exact_batch_equals_scalar(self, name, script):
        make = FILTER_FACTORIES[name]
        scalar = make()
        expected = [scalar.process(p) is Decision.PASS for p in script]
        batch = make()
        got = batch.process_batch(PacketArray.from_packets(script), exact=True)
        assert got.tolist() == expected, name

    @pytest.mark.parametrize("name", ALL_FILTERS)
    @given(script=mixed_direction_packets())
    @settings(max_examples=40, deadline=None)
    def test_exact_batch_equals_scalar_all_directions(self, name, script):
        """Internal and transit packets must agree too, not just the
        outgoing/incoming flows the other suites emphasize."""
        make = FILTER_FACTORIES[name]
        scalar = make()
        expected = [scalar.process(p) is Decision.PASS for p in script]
        batch = make()
        got = batch.process_batch(PacketArray.from_packets(script), exact=True)
        assert got.tolist() == expected, name


class TestExactFlagSemantics:
    @pytest.mark.parametrize("name", EXACT_ONLY_FILTERS)
    @given(script=packet_scripts())
    @settings(max_examples=40, deadline=None)
    def test_exact_flag_ignored_by_non_windowed_filters(self, name, script):
        make = FILTER_FACTORIES[name]
        batch = PacketArray.from_packets(script)
        exact = make().process_batch(batch, exact=True)
        windowed = make().process_batch(batch, exact=False)
        assert exact.tolist() == windowed.tolist(), name

    @pytest.mark.parametrize("name", WINDOWED_FILTERS)
    @given(script=packet_scripts())
    @settings(max_examples=40, deadline=None)
    def test_windowed_is_superset_of_exact(self, name, script):
        make = FILTER_FACTORIES[name]
        batch = PacketArray.from_packets(script)
        exact = make().process_batch(batch, exact=True)
        windowed = make().process_batch(batch, exact=False)
        assert bool(np.all(windowed >= exact)), name


class TestDirectionalApi:
    @pytest.mark.parametrize("name", ALL_FILTERS)
    @given(script=packet_scripts())
    @settings(max_examples=30, deadline=None)
    def test_admit_in_batch_equals_process_batch(self, name, script):
        make = FILTER_FACTORIES[name]
        batch = PacketArray.from_packets(script)
        via_process = make().process_batch(batch)
        via_admit = make().admit_in_batch(batch)
        assert via_process.tolist() == via_admit.tolist(), name
