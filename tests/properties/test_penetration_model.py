"""Statistical property: measured penetration matches Equation (1).

Loads bitmaps at random utilizations and checks the random-probe penetration
rate against ``p = U**m`` within binomial-confidence tolerance.
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.bitmap import Bitmap
from repro.core.hashing import HashFamily
from repro.core.parameters import penetration_probability


@given(
    connections=st.integers(100, 1500),
    num_hashes=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_measured_penetration_matches_eq1(connections, num_hashes, seed):
    order = 12
    rng = random.Random(seed)
    bitmap = Bitmap(2, order)
    hashes = HashFamily(num_hashes, order, seed=seed)
    for _ in range(connections):
        bitmap.mark(hashes.indices(
            (6, rng.getrandbits(32), rng.getrandbits(16), rng.getrandbits(32))))

    # Predict from the *measured* utilization (Eq. 1 directly, no Eq. 2
    # occupancy approximation involved).
    predicted = penetration_probability(bitmap.utilization(), num_hashes)

    trials = 4000
    hits = 0
    for _ in range(trials):
        key = (17, rng.getrandbits(32), rng.getrandbits(16), rng.getrandbits(32))
        if bitmap.test_current(hashes.indices(key)):
            hits += 1
    measured = hits / trials

    # Binomial std + a small model slack (bit correlations within one key).
    sigma = (max(predicted, 1e-4) * 1.0 / trials) ** 0.5
    assert measured == pytest.approx(predicted, abs=6 * sigma + 0.01)


@given(u=st.floats(0.01, 0.99), m=st.integers(1, 8))
def test_eq1_monotone_in_utilization(u, m):
    assert penetration_probability(u, m) <= penetration_probability(min(1.0, u + 0.01), m)


@given(u=st.floats(0.01, 0.99), m=st.integers(1, 7))
def test_eq1_decreasing_in_hashes_below_half(u, m):
    """For U < 1, more hashes always lower the per-probe penetration."""
    assert penetration_probability(u, m + 1) <= penetration_probability(u, m)


@given(
    delay=st.floats(0.0, 40.0),
    phase=st.floats(0.0, 5.0, exclude_max=True),
)
@settings(max_examples=300, deadline=None)
def test_mark_survival_closed_form_brackets_simulation(delay, phase):
    """The rotating bitmap agrees with the closed-form survival windows."""
    from repro.core.bitmap import Bitmap
    from repro.core.hashing import HashFamily
    from repro.core.parameters import mark_survival_probability

    k, dt = 4, 5.0
    bitmap = Bitmap(k, 10)
    hashes = HashFamily(2, 10)
    # Mark at time `phase`; rotations happen at dt, 2dt, ... (boundary
    # inclusive, matching BitmapFilter.advance_to).
    key = (6, 1, 2, 3)
    rotations_before_mark = int(phase // dt)  # zero for phase < dt
    for _ in range(rotations_before_mark):
        bitmap.rotate()
    bitmap.mark(hashes.indices(key))
    lookup_time = phase + delay
    total_rotations = int(lookup_time // dt)
    for _ in range(total_rotations - rotations_before_mark):
        bitmap.rotate()
    survived = bitmap.test_current(hashes.indices(key))

    p = mark_survival_probability(delay, k, dt)
    if p == 1.0:
        assert survived
    elif p == 0.0:
        assert not survived
    # Inside the linear band either outcome is phase-dependent and legal.


@given(delay=st.floats(0.0, 100.0), k=st.integers(2, 8),
       dt=st.floats(0.5, 10.0))
def test_mark_survival_monotone_in_delay(delay, k, dt):
    from repro.core.parameters import mark_survival_probability

    a = mark_survival_probability(delay, k, dt)
    b = mark_survival_probability(delay + 0.1, k, dt)
    assert 0.0 <= b <= a <= 1.0


def test_expected_fp_matches_measured_drops():
    """The closed form predicts the bitmap's legit-drop rate on real traffic."""
    import numpy as np

    from repro.analysis.delay import out_in_delays
    from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
    from repro.core.parameters import expected_false_positive_rate
    from repro.traffic.generator import WorkloadConfig, ClientNetworkWorkload

    config = WorkloadConfig(duration=120.0, target_pps=400.0, seed=6,
                            background_noise_fraction=0.0)
    trace = ClientNetworkWorkload(config).generate()
    delays = out_in_delays(trace.packets, trace.protected, expiry_timer=600.0)

    filter_config = BitmapFilterConfig(order=14, num_vectors=4, num_hashes=3,
                                       rotation_interval=5.0)
    predicted = expected_false_positive_rate(delays, 4, 5.0)

    filt = BitmapFilter(filter_config, trace.protected)
    verdicts = filt.process_batch(trace.packets, exact=True)
    incoming = trace.packets.directions(trace.protected) == 1
    measured = float((~verdicts[incoming]).mean())
    # The prediction covers delay-expiry drops; measured includes them plus
    # a tiny remainder (e.g. replies to suppressed marks).  Same ballpark.
    assert measured == pytest.approx(predicted, rel=0.5, abs=0.004)
