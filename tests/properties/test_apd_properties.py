"""Property tests for the adaptive-dropping components."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.apd import (
    BandwidthIndicator,
    PacketRatioIndicator,
    SlidingWindowCounter,
    classify_signal_packet,
)
from repro.net.packet import Packet, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP


class TestSlidingWindowModel:
    @given(events=st.lists(
        st.tuples(st.floats(0.0, 100.0), st.floats(0.1, 10.0)),
        max_size=60,
    ))
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force_model(self, events):
        """The binned counter equals a brute-force recount within one bin."""
        window, bin_width = 10.0, 1.0
        counter = SlidingWindowCounter(window=window, bin_width=bin_width)
        log = []
        now = 0.0
        for gap, amount in events:
            now += gap
            counter.add(now, amount)
            log.append((now, amount))
        # Brute force: the counter keeps whole bins, so its horizon is the
        # bin-aligned window [now_bin - window, now].
        horizon = (int(now / bin_width) - int(window / bin_width)) * bin_width
        expected = sum(a for t, a in log if int(t / bin_width) * bin_width > horizon)
        assert counter.total(now) == abs(expected) or abs(
            counter.total(now) - expected) < 1e-6

    @given(amounts=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=30))
    def test_total_never_negative(self, amounts):
        counter = SlidingWindowCounter(window=5.0)
        for i, amount in enumerate(amounts):
            counter.add(float(i * 3), amount)
            assert counter.total(float(i * 3)) >= 0


class TestRatioIndicatorProperties:
    @given(
        out_count=st.integers(0, 500),
        in_count=st.integers(0, 500),
        low=st.floats(0.1, 3.0),
        span=st.floats(0.1, 5.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_probability_in_unit_interval_and_monotone(self, out_count, in_count,
                                                       low, span):
        indicator = PacketRatioIndicator(low=low, high=low + span, window=100.0)
        for i in range(out_count):
            indicator.observe_outgoing(
                Packet(i * 0.01, IPPROTO_TCP, 1, 2, 3, 4))
        for i in range(in_count):
            indicator.observe_incoming(
                Packet(i * 0.01, IPPROTO_TCP, 3, 4, 1, 2))
        p = indicator.drop_probability()
        assert 0.0 <= p <= 1.0
        # Adding incoming packets can only raise (or keep) the probability.
        indicator.observe_incoming(Packet(5.0, IPPROTO_TCP, 3, 4, 1, 2))
        assert indicator.drop_probability() >= p - 1e-12


class TestBandwidthIndicatorProperties:
    @given(sizes=st.lists(st.integers(40, 1500), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_utilization_bounded(self, sizes):
        indicator = BandwidthIndicator(link_capacity_bps=1e6, window=2.0)
        for i, size in enumerate(sizes):
            indicator.observe_incoming(
                Packet(i * 0.01, IPPROTO_TCP, 1, 2, 3, 4, size=size))
        assert 0.0 <= indicator.drop_probability() <= 1.0


class TestSignalClassificationProperties:
    @given(flags=st.integers(0, 63))
    def test_udp_never_signal(self, flags):
        assert classify_signal_packet(IPPROTO_UDP, TcpFlags(flags)) is False

    @given(flags=st.integers(0, 63))
    def test_rst_always_signal_for_tcp(self, flags):
        combined = TcpFlags(flags) | TcpFlags.RST
        assert classify_signal_packet(IPPROTO_TCP, combined) is True

    @given(flags=st.integers(0, 63))
    def test_classification_total(self, flags):
        """Every flag combination classifies without raising."""
        result = classify_signal_packet(IPPROTO_TCP, TcpFlags(flags))
        assert isinstance(result, bool)
