"""Table 1 experiment: storage numbers and complexity-growth shapes."""

import pytest

from repro.experiments.table1 import paper_storage_rows, run_table1


class TestStorageRows:
    def test_spi_storage_is_76_8_mb(self):
        """Table 1: 2.56M states x 30 B = 76.8M bytes for both SPI designs."""
        rows = {row["structure"]: row for row in paper_storage_rows()}
        assert rows["hash+link-list (Linux)"]["storage_bytes"] == 76_800_000
        assert rows["AVL-tree"]["storage_bytes"] == 76_800_000

    def test_bitmap_storage_is_8_mb(self):
        """Table 1 footnote (c): n sized for ~10% penetration -> 8M bytes."""
        rows = paper_storage_rows()
        bitmap = next(r for r in rows if "bitmap" in r["structure"])
        assert bitmap["storage_bytes"] == 8 * 1024 * 1024

    def test_complexity_labels(self):
        rows = {row["structure"]: row for row in paper_storage_rows()}
        assert rows["AVL-tree"]["lookup"] == "O(log n)"
        bitmap = next(v for k, v in rows.items() if "bitmap" in k)
        assert bitmap["lookup"] == "O(1)"
        assert bitmap["hardware"] == "easy"


@pytest.fixture(scope="module")
def timings():
    return run_table1(sizes=(2_000, 8_000, 32_000), probes=1_500, seed=2)


class TestMeasuredShapes:
    def test_bitmap_ops_flat(self, timings):
        """Bitmap insert/lookup are O(1): no growth with population."""
        assert timings.growth_factor("bitmap filter", "insert_ns") < 2.0
        assert timings.growth_factor("bitmap filter", "lookup_ns") < 2.0

    def test_bitmap_gc_is_cheap(self, timings):
        """The bitmap's GC is a memset; SPI GCs traverse every state."""
        bitmap_gc = timings.timings["bitmap filter"][-1].gc_ms
        hash_gc = timings.timings["hash+link-list"][-1].gc_ms
        avl_gc = timings.timings["AVL-tree"][-1].gc_ms
        assert bitmap_gc < hash_gc
        assert bitmap_gc < avl_gc

    def test_spi_gc_grows_linearly(self, timings):
        """16x more flows -> clearly growing GC time (O(n)).

        The hash table's sweep also walks its fixed 16384 empty buckets, so
        at small populations the constant term flattens the ratio; the
        band is therefore wide but must show real growth, unlike the
        bitmap's flat memset.
        """
        assert timings.growth_factor("hash+link-list", "gc_ms") > 2.0
        assert timings.growth_factor("AVL-tree", "gc_ms") > 4.0

    def test_avl_insert_grows(self, timings):
        """AVL insert is O(log n): grows far sub-linearly.

        Wall-clock micro-timings are noisy under parallel load, so the band
        is wide; the load-independent claim (16x flows -> way under 16x
        time) is the assertion that matters.
        """
        growth = timings.growth_factor("AVL-tree", "insert_ns")
        assert 0.7 < growth < 8.0

    def test_avl_slower_than_bitmap_at_scale(self, timings):
        """At the largest population the AVL insert costs more than the
        bitmap's constant-time mark (the Table 1 computation column)."""
        avl = timings.timings["AVL-tree"][-1].insert_ns
        bitmap = timings.timings["bitmap filter"][-1].insert_ns
        assert avl > bitmap

    def test_report_renders(self, timings):
        text = timings.report()
        assert "76.8M bytes" in text
        assert "hash+link-list" in text
