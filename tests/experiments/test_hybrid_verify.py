"""CI-fast run of the hybrid verification experiment.

The claim under test is the tentpole claim of the hybrid stack: on the
random-scan attack the bitmap alone lets ``U**m``-probability false
admits through, and the exact verification tier removes *all* of them
without dropping any additional legitimate traffic.
"""

import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.hybrid_verify import run_hybrid_verify

#: Sub-second scale: 40 s, 8K normal + 160K-at-20x attack packets.
TINY = ExperimentScale(name="tiny", duration=40.0, normal_pps=200.0,
                       bitmap_order=14)


@pytest.fixture(scope="module")
def result():
    return run_hybrid_verify(TINY)


def test_pressured_bitmap_leaks_and_hybrid_seals(result):
    pressured = result.scenarios[1]
    assert pressured.order == TINY.bitmap_order - 3
    # The small bitmap demonstrably leaks under attack...
    assert pressured.bitmap_false_admits > 50
    # ...and the exact tier catches every single false admit.
    assert pressured.hybrid_false_admits == 0
    assert pressured.hybrid_penetration_rate == 0.0
    assert pressured.denied >= pressured.bitmap_false_admits


def test_worm_and_insider_scenarios_sealed(result):
    labels = [s.label for s in result.scenarios]
    assert labels == ["paper band", "pressured (n-3)",
                      "worm inbound (n-3)", "insider-polluted"]
    for scenario in result.scenarios[2:]:
        # Attack flows are never outgoing, so the exact tier confirms
        # none of the bitmap's leaks — penetration collapses to zero.
        assert scenario.hybrid_false_admits == 0, scenario.label
        assert scenario.hybrid_penetration_rate == 0.0, scenario.label
    insider = result.scenarios[3]
    # The insider's outgoing pollution inflates U, so the plain bitmap
    # leaks at least as much as in the unpolluted paper-band scenario.
    assert insider.bitmap_false_admits >= \
        result.scenarios[0].bitmap_false_admits


def test_no_legitimate_traffic_harmed(result):
    for scenario in result.scenarios:
        assert scenario.hybrid_fp_rate == scenario.bitmap_fp_rate, \
            scenario.label
        assert scenario.hybrid_false_admits == 0, scenario.label


def test_state_accounting_in_table1_style(result):
    for scenario in result.scenarios:
        assert scenario.table_kib > 0
        assert scenario.table_occupancy > 0
        assert scenario.confirmed > 0


def test_registry_row_and_report(result):
    from repro.experiments.registry import EXPERIMENTS

    spec = EXPERIMENTS["hybrid"]
    assert spec.module == "repro.experiments.hybrid_verify"
    assert spec.default_scale == "small"
    text = result.report()
    assert "FA bitmap" in text and "pen hybrid" in text
