"""Section 5.3 APD experiment shapes (slower — module-scoped run)."""

import pytest

from repro.experiments.config import ExperimentScale

# An extra-small scale keeps the per-packet APD loop quick in CI.
XS = ExperimentScale(name="xs", duration=60.0, normal_pps=200.0, bitmap_order=13)


@pytest.fixture(scope="module")
def sec53_result():
    from repro.experiments.sec53 import run_sec53

    return run_sec53(XS)


class TestAdaptiveDropping:
    def test_idle_phases_admit_most_rejects(self, sec53_result):
        for phases in (sec53_result.bandwidth_phases, sec53_result.ratio_phases):
            before = phases[0]
            assert before.admission_rate > 0.7

    def test_flood_phase_drops_heavily(self, sec53_result):
        for phases in (sec53_result.bandwidth_phases, sec53_result.ratio_phases):
            during = phases[1]
            assert during.rejected + during.admitted > 1000
            assert during.admission_rate < 0.5

    def test_flood_phase_stricter_than_quiet_phases(self, sec53_result):
        for phases in (sec53_result.bandwidth_phases, sec53_result.ratio_phases):
            before, during, after = phases
            assert during.admission_rate < before.admission_rate

    def test_report_renders(self, sec53_result):
        text = sec53_result.report()
        assert "bandwidth indicator" in text
        assert "signal-policy ablation" in text


class TestSignalPolicyAblation:
    def test_policy_blocks_scan_followups(self, sec53_result):
        with_policy = sec53_result.ablation["with signal policy"]
        without = sec53_result.ablation["without signal policy"]
        assert with_policy < 0.05
        assert without > 0.9
