"""Unit tests for experiment result objects: reports and data export."""

import csv

import pytest

from repro.experiments.config import ExperimentScale

# A minimal scale keeping these report/export tests fast.
XS = ExperimentScale(name="xs", duration=45.0, normal_pps=200.0, bitmap_order=13)


class TestAggregationResult:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.aggregation import run_aggregation

        return run_aggregation(XS)

    def test_by_label(self, result):
        assert result.by_label("per-edge (2 filters, n)").memory_bytes > 0
        with pytest.raises(KeyError):
            result.by_label("nonexistent")

    def test_report_renders_all_rows(self, result):
        text = result.report()
        for outcome in result.outcomes:
            assert outcome.label in text


class TestTimingResult:
    def test_report_contains_both_sweeps(self):
        from repro.experiments.timing import run_timing_ablation

        result = run_timing_ablation(XS)
        text = result.report()
        assert "Granularity sweep" in text
        assert "Expiry sweep" in text
        assert text.count("KiB") >= 8


class TestCompatResult:
    def test_report_shape(self):
        from repro.experiments.compat import CompatResult

        result = CompatResult(
            sessions=10,
            data_channel_success_without_punch=0.0,
            data_channel_success_with_punch=1.0,
            late_connect_success_with_punch=0.0,
            normal_fp_without_punch=0.005,
            normal_fp_with_punch=0.005,
        )
        text = result.report()
        assert "100.0%" in text
        assert "hole punched" in text


class TestExportFigures:
    def test_export_function_direct(self, tmp_path):
        from repro.experiments.export import export_figures

        files = export_figures(tmp_path, XS)
        assert len(files) == 7
        for name in files:
            path = tmp_path / name
            assert path.exists()
            with path.open() as fh:
                rows = list(csv.reader(fh))
            assert len(rows) >= 2, name          # header + data
            assert all(len(r) == len(rows[0]) for r in rows), name

    def test_fig5_series_columns_consistent(self, tmp_path):
        from repro.experiments.export import export_figures

        export_figures(tmp_path, XS)
        with (tmp_path / "fig5a_series.csv").open() as fh:
            rows = list(csv.reader(fh))[1:]
        for row in rows:
            second, normal, attack, passed, dropped = map(float, row)
            incoming = normal + attack
            # passed + dropped counts every incoming packet (incl. background).
            assert passed + dropped >= incoming - 1e-9
