"""Small-scale runs of every experiment, asserting the paper's shapes.

These are the CI-fast versions of the benchmark harness: same code paths,
small scale, loose-but-meaningful tolerances.  The benchmarks in
``benchmarks/`` run the same experiments at MEDIUM scale with tighter
bands and timing.
"""

import pytest

from repro.experiments.config import SMALL, get_scale
from repro.experiments.fig2 import generate_trace, run_fig2


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(SMALL)


class TestScales:
    def test_lookup(self):
        assert get_scale("small") is SMALL
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_ratios_preserved(self):
        for name in ("small", "medium", "large"):
            scale = get_scale(name)
            assert scale.attack_multiplier == 20.0
            assert scale.expiry_timer == 20.0
            assert scale.num_vectors == 4
            assert scale.num_hashes == 3

    def test_bitmap_config_override(self):
        cfg = SMALL.bitmap_config(order=10)
        assert cfg.order == 10
        assert cfg.num_vectors == 4


class TestFig2(object):
    def test_lifetime_shape(self, small_trace):
        result = run_fig2(SMALL, small_trace)
        assert result.lifetime_percentiles[90] < 150
        assert result.lifetime_percentiles[95] < 360
        assert result.lifetime_frac_over_515 < 0.02

    def test_delay_shape(self, small_trace):
        result = run_fig2(SMALL, small_trace)
        assert result.delay_frac_under_0_8 > 0.92
        assert result.delay_frac_under_2_8 > 0.97

    def test_delay_comb_exists(self, small_trace):
        """Fig 2b: peaks beyond 10s exist (server keep-alive comb)."""
        from repro.experiments.fig2 import delay_comb_offsets

        result = run_fig2(SMALL, small_trace)
        offsets = delay_comb_offsets(result)
        assert offsets, "no delay-comb peaks found"

    def test_report_renders(self, small_trace):
        text = run_fig2(SMALL, small_trace).report()
        assert "paper" in text and "measured" in text


class TestFig4:
    def test_drop_rates_similar_and_small(self, small_trace):
        from repro.experiments.fig4 import run_fig4

        result = run_fig4(SMALL, small_trace)
        assert 0.005 < result.bitmap_drop_rate < 0.035
        assert 0.005 < result.spi_drop_rate < 0.035
        # The filters agree: Fig 4's slope-1 scatter.
        assert result.bitmap_drop_rate == pytest.approx(result.spi_drop_rate,
                                                        rel=0.4)
        assert result.correlation > 0.5
        assert 0.5 < result.fitted_slope < 1.5


class TestFig5:
    def test_filter_rate_shape(self, small_trace):
        from repro.experiments.fig5 import run_fig5

        result = run_fig5(SMALL, small_trace)
        assert result.attack_filter_rate > 0.995
        assert result.penetration_rate < 5e-3
        # Eq.(1) consistency within an order of magnitude.
        assert result.penetration_rate < result.predicted_penetration * 10 + 1e-4

    def test_utilization_in_paper_band(self, small_trace):
        """The scaled run stays in the paper's utilization regime (~4%)."""
        from repro.experiments.fig5 import run_fig5

        result = run_fig5(SMALL, small_trace)
        assert 0.005 < result.steady_state_utilization < 0.15


class TestSec41:
    def test_capacity_numbers(self):
        from repro.experiments.sec41 import run_sec41

        result = run_sec41(measure_trials=50_000)
        caps = {row["target_penetration"]: row["max_connections"]
                for row in result.capacity_rows}
        assert caps[0.10] == pytest.approx(167_000, rel=0.02)
        assert caps[0.05] == pytest.approx(125_000, rel=0.05)
        assert caps[0.01] == pytest.approx(83_000, rel=0.02)
        assert result.memory_bytes == 512 * 1024
        assert result.recommended_m == 3

    def test_empirical_check_close_to_eq2(self):
        from repro.core.parameters import penetration_probability_for_load
        from repro.experiments.sec41 import run_sec41

        result = run_sec41(measure_trials=100_000)
        predicted = penetration_probability_for_load(
            result.measured_connections, 3, result.measured_order
        )
        # Poisson statistics at tiny p: generous band.
        assert result.measured_penetration < predicted * 4 + 1e-4


class TestSec52:
    def test_insider_raises_utilization_as_predicted(self):
        from repro.experiments.sec52 import run_sec52

        result = run_sec52(SMALL)
        baseline = result.scenarios[0]
        assert baseline.measured_increase > 0
        assert baseline.measured_increase == pytest.approx(
            baseline.predicted_increase, rel=0.6
        )

    def test_mitigations_reduce_impact(self):
        from repro.experiments.sec52 import run_sec52

        result = run_sec52(SMALL)
        baseline, larger_n, shorter_te = result.scenarios
        assert larger_n.attacked_utilization < baseline.attacked_utilization
        assert shorter_te.attacked_utilization < baseline.attacked_utilization
        assert larger_n.attacked_penetration < baseline.attacked_penetration


class TestSweep:
    def test_predictions_track_measurements(self):
        from repro.experiments.sweep import run_sweep

        result = run_sweep(trials=10_000)
        for point in result.points:
            assert point.measured <= point.predicted * 2.5 + 5e-3
            assert point.measured >= point.predicted_exact * 0.3 - 5e-3

    def test_u_curve_minimum_not_at_extremes(self):
        from repro.experiments.sweep import run_sweep

        result = run_sweep(trials=10_000)
        measured = [p.measured for p in result.optimum_curve]
        assert measured[0] > min(measured)


class TestWorm:
    def test_outbreak_and_filtering(self):
        from repro.experiments.worm import run_worm

        result = run_worm(SMALL)
        assert result.time_to_half > 0
        assert result.final_infected > 0
        assert result.inbound_scan_count > 0
        assert result.scan_filter_rate > 0.95
