"""Tests for the experiment registry and the uniform run(scale) API."""

import sys
import types

import pytest

from repro.experiments.config import SMALL, get_scale
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
)
from repro.telemetry.profiling import StageTimings


class TestRegistryTable:
    def test_covers_every_experiment_module(self):
        names = set(EXPERIMENTS)
        expected = {"fig2a", "fig2b", "fig2c", "table1", "capacity", "fig4",
                    "fig5", "insider", "apd", "sweep", "worm", "aggregate",
                    "timing", "compat", "robustness", "resilience",
                    "throttle", "collusion", "hybrid", "multisite"}
        assert names == expected

    def test_every_module_exposes_run(self):
        import importlib
        import inspect

        for spec in EXPERIMENTS.values():
            run = importlib.import_module(spec.module).run
            params = inspect.signature(run).parameters
            assert "scale" in params, spec.name

    def test_small_only_clamp(self):
        clamped = EXPERIMENTS["worm"]
        assert clamped.small_only
        assert clamped.effective_scale("medium") is SMALL
        assert clamped.effective_scale("small") is get_scale("small")

    def test_unclamped_resolves_requested_scale(self):
        spec = EXPERIMENTS["fig5"]
        assert not spec.small_only
        assert spec.effective_scale("medium") is get_scale("medium")

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            EXPERIMENTS["fig5"].effective_scale("galactic")


class _FakeValue:
    def report(self):
        return "fake report"


def _install_fake_module(monkeypatch, run):
    module = types.ModuleType("repro.experiments._fake")
    module.run = run
    monkeypatch.setitem(sys.modules, "repro.experiments._fake", module)
    spec = ExperimentSpec(name="fake", module="repro.experiments._fake",
                          help="test stub", small_only=False)
    monkeypatch.setitem(EXPERIMENTS, "fake", spec)
    return spec


class TestRunExperiment:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("nope")

    def test_runs_and_wraps(self, monkeypatch):
        seen = {}

        def run(scale):
            seen["scale"] = scale
            return _FakeValue()

        _install_fake_module(monkeypatch, run)
        result = run_experiment("fake", scale="small")
        assert result.name == "fake"
        assert seen["scale"] is get_scale("small")
        assert result.scale is get_scale("small")
        assert result.timings is None
        assert result.report() == "fake report"

    def test_seed_override(self, monkeypatch):
        seen = {}
        _install_fake_module(
            monkeypatch, lambda scale: seen.setdefault("scale", scale))
        run_experiment("fake", scale="small", seed=1234)
        assert seen["scale"].seed == 1234

    def test_seed_ignored_when_clamped(self, monkeypatch):
        seen = {}
        module = types.ModuleType("repro.experiments._fake")
        module.run = lambda scale: seen.setdefault("scale", scale)
        monkeypatch.setitem(sys.modules, "repro.experiments._fake", module)
        spec = ExperimentSpec(name="fake", module="repro.experiments._fake",
                              help="test stub", small_only=True)
        monkeypatch.setitem(EXPERIMENTS, "fake", spec)
        run_experiment("fake", scale="medium", seed=1234)
        # The clamp discarded the request, so the seed stays SMALL's.
        assert seen["scale"] is SMALL

    def test_profile_collects_stage_breakdown(self, monkeypatch):
        _install_fake_module(monkeypatch, lambda scale: _FakeValue())
        result = run_experiment("fake", scale="small", profile=True)
        assert result.timings is not None
        assert result.timings.calls("run:fake") == 1
        assert "stage breakdown" in result.report()
        assert "run:fake" in result.report()

    def test_render_extra_appended(self, monkeypatch):
        module = types.ModuleType("repro.experiments._fake")
        module.run = lambda scale: _FakeValue()
        monkeypatch.setitem(sys.modules, "repro.experiments._fake", module)
        spec = ExperimentSpec(name="fake", module="repro.experiments._fake",
                              help="test stub", small_only=False,
                              render=lambda value: "\nEXTRA LINE")
        monkeypatch.setitem(EXPERIMENTS, "fake", spec)
        report = run_experiment("fake", scale="small").report()
        assert report == "fake report\nEXTRA LINE"


class TestExperimentResult:
    def test_report_falls_back_to_str(self):
        result = ExperimentResult(name="x", scale=None, value=42)
        assert result.report() == "42"

    def test_empty_timings_not_rendered(self):
        result = ExperimentResult(name="x", scale=None, value=42,
                                  timings=StageTimings())
        assert "breakdown" not in result.report()
