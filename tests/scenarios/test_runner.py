"""Offline scenario runner: determinism, outcome invariants, roaming handoff."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.filter_api import build_filter
from repro.scenarios.runner import (
    build_scenario,
    observed_connections,
    run_offline,
)
from repro.scenarios.spec import (
    AttackWave,
    FilterGeometry,
    RoamingClient,
    ScenarioSpec,
    TrafficSpec,
)
from repro.sim.pipeline import run_filter_on_trace
from repro.traffic.trace import Trace

SPEC = ScenarioSpec(
    name="runner-test",
    topology="fat-tree",
    sites=2,
    duration=16.0,
    seed=5,
    traffic=TrafficSpec(mix="web-search", pps=60.0),
    filter=FilterGeometry(order=12, rotation_interval=2.0),
    waves=(AttackWave(kind="scan", rate_multiplier=5.0, site_stagger=2.0),),
    roamers=(RoamingClient(roam_fraction=0.5, pps=20.0),),
)


@pytest.fixture(scope="module")
def run():
    return build_scenario(SPEC)


@pytest.fixture(scope="module")
def outcome(run, tmp_path_factory):
    return run_offline(run, workdir=tmp_path_factory.mktemp("offline"))


def test_build_scenario_is_digest_deterministic(run):
    again = build_scenario(SPEC)
    for a, b in zip(run.sites, again.sites):
        assert a.trace.digest() == b.trace.digest()
    for a, b in zip(run.roamers, again.roamers):
        assert a.trace.digest() == b.trace.digest()
        assert a.split_index == b.split_index


def test_sites_carry_distinct_traffic(run):
    assert run.sites[0].trace.digest() != run.sites[1].trace.digest()


def test_traces_are_time_sorted_with_attack_metadata(run):
    for site in run.sites:
        assert np.all(np.diff(site.trace.packets.ts) >= 0)
        assert site.trace.metadata["attack_packets"] > 0
        assert site.trace.metadata["site"] == site.binding.name


def test_roamer_split_matches_roam_instant(run):
    (roamer,) = run.roamers
    ts = roamer.trace.packets.ts
    roam_time = SPEC.duration * 0.5
    split = roamer.split_index
    assert np.all(ts[:split] < roam_time)
    assert np.all(ts[split:] >= roam_time)
    assert 0 < split < len(ts)


def test_outcome_invariants(outcome):
    assert len(outcome.sites) == 2
    for site in outcome.sites:
        total = (site.confusion.attack_dropped + site.confusion.attack_passed)
        assert total == site.attack_packets
        assert 0.0 <= site.confusion.penetration_rate <= 1.0
        assert len(site.verdicts) == site.packets
        assert site.observed_connections > 0
        assert site.advised is not None
    agg = outcome.aggregate
    assert agg.attack_dropped + agg.attack_passed >= sum(
        s.attack_packets for s in outcome.sites)


def test_filter_actually_bites(outcome):
    """The scan wave must be mostly dropped while normal traffic passes."""
    for site in outcome.sites:
        assert site.confusion.attack_filter_rate > 0.5
        assert site.confusion.false_positive_rate < 0.5


def test_roamer_handoff_is_equivalent_to_one_filter(run, outcome, tmp_path):
    """The snapshot handoff is pure state transport: verdicts across the
    home->visit move must equal a single filter running straight through."""
    (roam,) = outcome.roamers
    assert roam.snapshot_sequence >= 1
    (roamer_run,) = run.roamers
    filt = build_filter(config=SPEC.filter.filter_config(),
                        protected=roamer_run.space)
    trace = Trace(roamer_run.trace.packets, roamer_run.space,
                  {"duration": SPEC.duration})
    straight = run_filter_on_trace(filt, trace, exact=True)
    assert np.array_equal(roam.verdicts, straight.verdicts)
    assert np.array_equal(roam.incoming_mask, straight.incoming_mask)


def test_report_renders_every_site_and_roamer(outcome):
    text = outcome.report()
    assert "site0" in text and "site1" in text and "TOTAL" in text
    assert "roamer roamer0: site0 -> site1" in text
    assert "-bitmap" in text  # the advised-geometry column
    assert "p(pen)" in text


def test_observed_connections_counts_busiest_window():
    run = build_scenario(replace(SPEC, roamers=()))
    site = run.sites[0]
    c = observed_connections(site.trace, SPEC.filter.expiry_timer)
    assert c > 0
    # A window as long as the trace can only see more tuples, never fewer.
    assert observed_connections(site.trace, SPEC.duration * 2) >= c


def test_empty_trace_observes_zero_connections(run):
    from repro.net.packet import PacketArray

    site = run.sites[0]
    empty = Trace(PacketArray.empty(), site.trace.protected, {})
    assert observed_connections(empty, 8.0) == 0
