"""Scenario spec dataclasses: validation, TOML loading, presets."""

import sys

import pytest

from repro.scenarios.spec import (
    PRESETS,
    AttackWave,
    FilterGeometry,
    RoamingClient,
    ScenarioSpec,
    TrafficSpec,
    load_scenario,
    scenario_from_dict,
)

TOML_DOC = """
name = "toml-demo"
topology = "multi-isp"
sites = 4
duration = 30.0
seed = 99

[traffic]
mix = "data-mining"
pps = 120.0
nat_pool = 5

[filter]
order = 14
num_vectors = 4
num_hashes = 2
rotation_interval = 2.5

[[waves]]
kind = "syn-flood"
rate_multiplier = 8.0
targets = ["site0", "site2"]

[[waves]]
kind = "worm"
site_stagger = 3.0

[[roamers]]
name = "laptop"
home = "site1"
visit = "site3"
roam_fraction = 0.4
"""

needs_tomllib = pytest.mark.skipif(
    sys.version_info < (3, 11), reason="tomllib is Python 3.11+")


def test_default_spec_is_valid_and_frozen():
    spec = ScenarioSpec(name="x")
    assert spec.topology == "fat-tree"
    assert spec.waves[0].kind == "scan"
    with pytest.raises(AttributeError):
        spec.sites = 5


def test_geometry_derives_expiry_timer_and_filter_config():
    geometry = FilterGeometry(order=14, num_vectors=4, rotation_interval=2.5)
    assert geometry.expiry_timer == 10.0
    config = geometry.filter_config()
    assert (config.order, config.num_vectors) == (14, 4)
    assert config.rotation_interval == 2.5


@pytest.mark.parametrize("kwargs", [
    dict(topology="ring"),
    dict(sites=0),
    dict(duration=-1.0),
    dict(waves=(AttackWave(targets=("site9",)),)),
    dict(roamers=(RoamingClient(home="site0", visit="site7"),)),
])
def test_spec_validation_rejects_bad_fields(kwargs):
    with pytest.raises(ValueError):
        ScenarioSpec(name="bad", **kwargs)


@pytest.mark.parametrize("kwargs", [
    dict(mix="voip"),
    dict(pps=0.0),
    dict(mix="campus", nat_pool=3),
    dict(mix="campus", ipv6=True),
    dict(mix="campus", asymmetry=0.2),
])
def test_traffic_validation(kwargs):
    with pytest.raises(ValueError):
        TrafficSpec(**kwargs)


@pytest.mark.parametrize("kwargs", [
    dict(kind="carrier-pigeon"),
    dict(start_fraction=1.0),
    dict(duration_fraction=0.0),
    dict(rate_multiplier=-1.0),
])
def test_wave_validation(kwargs):
    with pytest.raises(ValueError):
        AttackWave(**kwargs)


@pytest.mark.parametrize("kwargs", [
    dict(home="site0", visit="site0"),
    dict(roam_fraction=0.0),
    dict(roam_fraction=1.0),
    dict(pps=0.0),
])
def test_roamer_validation(kwargs):
    with pytest.raises(ValueError):
        RoamingClient(**kwargs)


def test_with_mix_swaps_mix_and_clears_modern_knobs():
    spec = PRESETS["multi-isp/data-mining"]
    assert spec.traffic.nat_pool == 6
    campus = spec.with_mix("campus")
    assert campus.traffic.mix == "campus"
    assert campus.traffic.nat_pool == 0
    assert campus.name == "multi-isp/campus"


def test_presets_cover_every_topology_kind():
    assert {spec.topology for spec in PRESETS.values()} == {
        "fat-tree", "multi-isp", "cross-dc"}
    assert all(name == spec.name for name, spec in PRESETS.items())


def test_scenario_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown scenario keys"):
        scenario_from_dict({"name": "x", "colour": "red"})
    with pytest.raises(ValueError, match="unknown traffic keys"):
        scenario_from_dict({"name": "x", "traffic": {"bandwidth": 1}})
    with pytest.raises(ValueError, match="unknown wave keys"):
        scenario_from_dict({"name": "x", "waves": [{"speed": 2}]})


@needs_tomllib
def test_load_scenario_round_trips_the_toml_schema(tmp_path):
    path = tmp_path / "scenario.toml"
    path.write_text(TOML_DOC)
    spec = load_scenario(path)
    assert spec.name == "toml-demo"
    assert spec.topology == "multi-isp"
    assert spec.sites == 4
    assert spec.traffic.mix == "data-mining"
    assert spec.traffic.nat_pool == 5
    assert spec.filter.rotation_interval == 2.5
    assert [wave.kind for wave in spec.waves] == ["syn-flood", "worm"]
    assert spec.waves[0].targets == ("site0", "site2")
    assert spec.roamers[0].name == "laptop"
    assert spec.roamers[0].visit == "site3"


@needs_tomllib
def test_load_scenario_surfaces_validation_errors(tmp_path):
    path = tmp_path / "bad.toml"
    path.write_text('name = "bad"\ntopology = "ring"\n')
    with pytest.raises(ValueError, match="unknown topology"):
        load_scenario(path)


@needs_tomllib
def test_example_scenario_file_loads():
    from pathlib import Path

    example = (Path(__file__).resolve().parents[2]
               / "examples" / "scenarios" / "fat_tree.toml")
    spec = load_scenario(example)
    assert spec.topology == "fat-tree"
    assert spec.sites >= 2
