"""Generated topologies: dominator-validated placement, disjoint site spaces."""

import pytest

from repro.scenarios.topologies import (
    allocate_site_spaces,
    build_topology,
    cross_datacenter,
    fat_tree,
    multi_isp,
)
from repro.sim.topology import NodeKind

ALL_KINDS = ("fat-tree", "multi-isp", "cross-dc")


@pytest.mark.parametrize("kind", ALL_KINDS)
@pytest.mark.parametrize("num_sites", [1, 3, 5])
def test_placement_is_always_a_dominator(kind, num_sites):
    msite = build_topology(kind, num_sites)
    assert len(msite.sites) == num_sites
    for binding in msite.sites:
        valid = msite.topology.valid_filter_locations(binding.name)
        assert binding.placement in valid
        assert binding.placement == binding.edge_router


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_every_topology_is_multi_peer(kind):
    """The interesting property regime: traffic can enter through more
    than one peering point, so naive walk-up placement is not trivially
    correct and the dominator check is load-bearing."""
    msite = build_topology(kind, 3)
    assert len(msite.topology.nodes_of_kind(NodeKind.PEER)) >= 2


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_site_spaces_are_disjoint(kind):
    msite = build_topology(kind, 4)
    networks = [net for binding in msite.sites
                for net in binding.space.networks]
    firsts = [net.first for net in networks]
    assert len(set(firsts)) == len(firsts)
    # Class-C blocks at distinct firsts cannot overlap.
    assert all(net.num_addresses == 256 for net in networks)


def test_allocate_site_spaces_are_consecutive_blocks():
    spaces = allocate_site_spaces(3, 2, first_network="10.0.0.0")
    assert [len(space.networks) for space in spaces] == [2, 2, 2]
    assert spaces[1].networks[0].first - spaces[0].networks[0].first == 2 << 8
    assert not spaces[0].contains_int(spaces[1].networks[0].first)


def test_site_lookup():
    msite = fat_tree(2)
    assert msite.site("site1").name == "site1"
    with pytest.raises(KeyError):
        msite.site("site9")


def test_more_sites_than_edges_round_robins():
    msite = multi_isp(6, isps=2, edges_per_isp=2)  # 4 edges, 6 sites
    edges = [binding.edge_router for binding in msite.sites]
    assert edges[0] == edges[4] and edges[1] == edges[5]
    # Shared edge routers still dominate both their sites.
    for binding in msite.sites:
        assert binding.placement in msite.topology.valid_filter_locations(
            binding.name)


def test_cross_dc_peers_are_multi_homed():
    msite = cross_datacenter(2, dcs=2)
    graph = msite.topology.topology if hasattr(
        msite.topology, "topology") else msite.topology.graph
    for dc in range(2):
        assert len(list(graph.neighbors(f"wan{dc}"))) == 2


def test_unknown_kind_raises():
    with pytest.raises(KeyError, match="unknown topology kind"):
        build_topology("ring", 3)
