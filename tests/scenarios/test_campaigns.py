"""Campaign orchestration: staggered waves, labels, target restriction."""

import numpy as np
import pytest

from repro.net.packet import PacketLabel
from repro.scenarios.campaigns import campaign_traffic, wave_packets
from repro.scenarios.spec import AttackWave, ScenarioSpec, TrafficSpec
from repro.scenarios.topologies import build_topology

SPEC = ScenarioSpec(
    name="campaign-test",
    topology="fat-tree",
    sites=3,
    duration=30.0,
    seed=5,
    traffic=TrafficSpec(mix="campus", pps=100.0),
    waves=(AttackWave(kind="scan", start_fraction=1.0 / 3.0,
                      duration_fraction=0.5, rate_multiplier=5.0,
                      site_stagger=4.0),),
)
MSITE = build_topology("fat-tree", 3)


def test_every_site_gets_attack_packets_with_stagger():
    per_site = campaign_traffic(SPEC, MSITE)
    assert set(per_site) == {"site0", "site1", "site2"}
    starts = {name: packets.ts.min() for name, packets in per_site.items()}
    assert starts["site0"] == pytest.approx(10.0, abs=0.5)
    assert starts["site1"] == pytest.approx(14.0, abs=0.5)
    assert starts["site2"] == pytest.approx(18.0, abs=0.5)


def test_attack_packets_are_labelled_attack():
    per_site = campaign_traffic(SPEC, MSITE)
    for packets in per_site.values():
        assert len(packets)
        assert np.all(packets.label == int(PacketLabel.ATTACK))


def test_targets_restrict_the_wave():
    from dataclasses import replace

    spec = replace(SPEC, waves=(replace(SPEC.waves[0],
                                        targets=("site1",)),))
    per_site = campaign_traffic(spec, MSITE)
    assert len(per_site["site1"]) > 0
    assert len(per_site["site0"]) == 0
    assert len(per_site["site2"]) == 0
    # The sole target is offset 0 — no stagger applied.
    assert per_site["site1"].ts.min() == pytest.approx(10.0, abs=0.5)


def test_window_past_trace_end_yields_empty_array():
    wave = AttackWave(site_stagger=40.0)  # second target starts past the end
    packets = wave_packets(wave, SPEC, MSITE.sites[1],
                           wave_index=0, site_offset=2)
    assert len(packets) == 0


def test_campaign_is_deterministic_and_seed_sensitive():
    from dataclasses import replace

    a = campaign_traffic(SPEC, MSITE)
    b = campaign_traffic(SPEC, MSITE)
    for name in a:
        assert np.array_equal(a[name].data, b[name].data)
    other = campaign_traffic(replace(SPEC, seed=6), MSITE)
    assert not np.array_equal(a["site0"].data, other["site0"].data)


def test_sites_draw_distinct_seeds():
    per_site = campaign_traffic(SPEC, MSITE)
    assert not np.array_equal(per_site["site0"].data[: 100],
                              per_site["site1"].data[: 100])


@pytest.mark.parametrize("kind", ["scan", "syn-flood", "udp-flood",
                                  "worm", "insider"])
def test_every_wave_kind_generates_inside_the_window(kind):
    wave = AttackWave(kind=kind, rate_multiplier=2.0)
    packets = wave_packets(wave, SPEC, MSITE.sites[0],
                           wave_index=0, site_offset=0)
    assert len(packets)
    assert packets.ts.min() >= 10.0 - 1e-9
    assert packets.ts.max() <= 25.0 + 1e-9
    assert np.all(packets.label == int(PacketLabel.ATTACK))


def test_multiple_waves_merge_time_sorted():
    from dataclasses import replace

    spec = replace(SPEC, waves=(
        AttackWave(kind="scan", start_fraction=0.1, duration_fraction=0.2,
                   site_stagger=0.0),
        AttackWave(kind="udp-flood", start_fraction=0.5,
                   duration_fraction=0.3, site_stagger=0.0),
    ))
    per_site = campaign_traffic(spec, MSITE)
    ts = per_site["site0"].ts
    assert np.all(np.diff(ts) >= 0)
    assert ts.min() < spec.duration * 0.3 < spec.duration * 0.5 < ts.max()
