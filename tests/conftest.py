"""Shared fixtures for the test suite.

Expensive artifacts (generated traces) are session-scoped so the suite stays
fast; tests must treat them as read-only.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bitmap_filter import BitmapFilter, BitmapFilterConfig
from repro.net.address import AddressSpace
from repro.net.packet import Packet, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP
from repro.traffic.generator import ClientNetworkWorkload, WorkloadConfig

#: The protected client space used across the suite: six class-C networks,
#: mirroring the paper's trace setup.
PROTECTED_FIRST = "172.16.0.0"

CLIENT = 0xAC100A0A        # 172.16.10.10 — inside protected /24 block? (see fixture)
SERVER = 0x08080808        # 8.8.8.8 — outside


@pytest.fixture(scope="session")
def protected() -> AddressSpace:
    return AddressSpace.class_c_block(PROTECTED_FIRST, 6)


@pytest.fixture(scope="session")
def client_addr(protected: AddressSpace) -> int:
    return protected.networks[1].host(10)


@pytest.fixture(scope="session")
def server_addr() -> int:
    return SERVER


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture()
def small_config() -> BitmapFilterConfig:
    """A small, fast bitmap config (k=4, n=12, m=3, dt=5 -> Te=20)."""
    return BitmapFilterConfig(order=12, num_vectors=4, num_hashes=3,
                              rotation_interval=5.0)


@pytest.fixture()
def bitmap_filter(small_config, protected) -> BitmapFilter:
    return BitmapFilter(small_config, protected)


def make_request(ts: float, client: int, server: int, sport: int = 5555,
                 dport: int = 80, proto: int = IPPROTO_TCP,
                 flags: TcpFlags = TcpFlags.SYN) -> Packet:
    """An outgoing client->server packet."""
    return Packet(ts=ts, proto=proto, src=client, sport=sport, dst=server,
                  dport=dport, flags=flags, size=64)


def make_reply(request: Packet, ts: float,
               flags: TcpFlags = TcpFlags.SYN | TcpFlags.ACK) -> Packet:
    """The matching incoming reply."""
    return request.reply(ts, flags=flags)


@pytest.fixture(scope="session")
def tiny_trace():
    """A small but real generated trace (~60s, ~20K packets)."""
    config = WorkloadConfig(duration=60.0, target_pps=300.0, seed=99,
                            hosts_per_network=20)
    return ClientNetworkWorkload(config).generate()
