"""Tests for repro.attacks.worm — the epidemic model."""

import numpy as np
import pytest

from repro.attacks.worm import WormModel, WormParameters
from repro.net.packet import PacketLabel
from repro.net.protocols import IPPROTO_TCP


@pytest.fixture()
def fast_params():
    return WormParameters(vulnerable_hosts=10_000, scan_rate=5000.0,
                          initially_infected=10, target_port=80)


class TestParameters:
    def test_beta(self, fast_params):
        assert fast_params.beta == pytest.approx(
            5000.0 * 10_000 / 2**32
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            WormParameters(vulnerable_hosts=0)
        with pytest.raises(ValueError):
            WormParameters(initially_infected=100, vulnerable_hosts=10)
        with pytest.raises(ValueError):
            WormParameters(scan_rate=0)


class TestInfectionCurve:
    def test_logistic_shape(self, fast_params):
        model = WormModel(fast_params)
        t, infected = model.infection_curve(duration=2000.0, step=1.0)
        assert infected[0] == pytest.approx(10.0)
        assert bool(np.all(np.diff(infected) >= -1e-9))  # monotone
        assert infected[-1] <= fast_params.vulnerable_hosts
        # Reaches near-saturation within the horizon.
        assert infected[-1] > 0.9 * fast_params.vulnerable_hosts

    def test_growth_is_s_shaped(self, fast_params):
        model = WormModel(fast_params)
        _, infected = model.infection_curve(duration=2000.0, step=1.0)
        fraction = infected / fast_params.vulnerable_hosts
        # Growth rate peaks near the 50% point (logistic property).
        growth = np.diff(infected)
        peak_at = float(fraction[np.argmax(growth)])
        assert 0.3 < peak_at < 0.7

    def test_time_to_fraction_consistent_with_curve(self, fast_params):
        model = WormModel(fast_params)
        t_half = model.time_to_fraction(0.5, step=0.5)
        t, infected = model.infection_curve(duration=t_half * 2, step=0.5)
        idx = int(np.searchsorted(t, t_half))
        assert infected[idx] == pytest.approx(0.5 * fast_params.vulnerable_hosts,
                                              rel=0.05)

    def test_faster_scan_rate_spreads_faster(self):
        slow = WormModel(WormParameters(vulnerable_hosts=10_000, scan_rate=1000.0,
                                        initially_infected=10))
        fast = WormModel(WormParameters(vulnerable_hosts=10_000, scan_rate=4000.0,
                                        initially_infected=10))
        assert fast.time_to_fraction(0.5) < slow.time_to_fraction(0.5)

    def test_validation(self, fast_params):
        model = WormModel(fast_params)
        with pytest.raises(ValueError):
            model.infection_curve(duration=0)
        with pytest.raises(ValueError):
            model.time_to_fraction(1.5)


class TestInboundScans:
    def test_scan_rate_tracks_infection(self, fast_params, protected):
        model = WormModel(fast_params)
        scans = model.inbound_scans(protected, duration=1500.0, seed=1)
        assert len(scans) > 0
        # Scans in the second half (saturated) outnumber the first half.
        mid = 750.0
        early = int((scans.ts < mid).sum())
        late = int((scans.ts >= mid).sum())
        assert late > early

    def test_scan_fields(self, fast_params, protected):
        model = WormModel(fast_params)
        scans = model.inbound_scans(protected, duration=1000.0, seed=2)
        assert bool(np.all(scans.proto == IPPROTO_TCP))
        assert bool(np.all(scans.dport == 80))
        assert bool(np.all(scans.label == int(PacketLabel.ATTACK)))
        for dst in np.unique(scans.dst):
            assert protected.contains_int(int(dst))

    def test_expected_volume(self, fast_params, protected):
        """Total scans ~= integral of I(t)*s*coverage."""
        model = WormModel(fast_params)
        t, infected = model.infection_curve(1000.0, step=1.0)
        coverage = protected.num_addresses / 2.0**32
        expected = float(infected[:-1].sum()) * fast_params.scan_rate * coverage
        scans = model.inbound_scans(protected, duration=1000.0, seed=3)
        assert len(scans) == pytest.approx(expected, rel=0.25)

    def test_empty_when_rate_negligible(self, protected):
        tiny = WormModel(WormParameters(vulnerable_hosts=2, scan_rate=0.001,
                                        initially_infected=1))
        scans = tiny.inbound_scans(protected, duration=5.0, seed=4)
        assert len(scans) == 0


class TestStochasticCurve:
    def test_tracks_mean_field_at_scale(self, fast_params):
        """With large counts, Monte Carlo runs bracket the mean-field curve."""
        model = WormModel(fast_params)
        t, mean_field = model.infection_curve(duration=1500.0, step=1.0)
        finals = []
        for seed in range(5):
            _, stochastic = model.infection_curve_stochastic(
                duration=1500.0, step=1.0, seed=seed)
            finals.append(stochastic[-1])
        assert min(finals) > 0.5 * mean_field[-1]
        assert max(finals) < 1.5 * mean_field[-1] + 1

    def test_monotone_and_bounded(self, fast_params):
        model = WormModel(fast_params)
        _, infected = model.infection_curve_stochastic(duration=800.0, seed=3)
        assert bool(np.all(np.diff(infected) >= 0))
        assert infected[-1] <= fast_params.vulnerable_hosts
        assert infected[0] == fast_params.initially_infected

    def test_seed_variance_exists_early(self, fast_params):
        """Different seeds diverge during the stochastic early phase."""
        model = WormModel(fast_params)
        curves = [model.infection_curve_stochastic(duration=400.0, seed=s)[1]
                  for s in range(4)]
        mid = len(curves[0]) // 2
        values = {c[mid] for c in curves}
        assert len(values) > 1

    def test_validation(self, fast_params):
        model = WormModel(fast_params)
        with pytest.raises(ValueError):
            model.infection_curve_stochastic(duration=0)


class TestLocalPreference:
    def test_validation(self):
        with pytest.raises(ValueError):
            WormParameters(local_preference=1.5)
        with pytest.raises(ValueError):
            WormParameters(local_prefix_len=0)

    def test_nearby_infected_amplify_inbound_scans(self, protected):
        """Code Red II locality: infected hosts in our /16 hit us far more."""
        uniform = WormModel(WormParameters(
            vulnerable_hosts=20_000, scan_rate=2000.0, initially_infected=50))
        local = WormModel(WormParameters(
            vulnerable_hosts=20_000, scan_rate=2000.0, initially_infected=50,
            local_preference=0.5, local_prefix_len=16))
        far = uniform.inbound_scans(protected, duration=400.0, seed=1)
        near = local.inbound_scans(protected, duration=400.0, seed=1,
                                   infected_near_fraction=0.01)
        # 1% of infected sharing our /16 and aiming half their scans
        # locally beats uniform scanning by orders of magnitude: the /16
        # holds 2^16 of the 2^32 addresses, a 65536-fold densification.
        assert len(near) > 10 * max(len(far), 1)

    def test_no_near_infected_reduces_inbound(self, protected):
        """With full locality but nobody infected nearby, we see *less*."""
        uniform = WormModel(WormParameters(
            vulnerable_hosts=20_000, scan_rate=4000.0, initially_infected=50))
        local = WormModel(WormParameters(
            vulnerable_hosts=20_000, scan_rate=4000.0, initially_infected=50,
            local_preference=0.9))
        far = uniform.inbound_scans(protected, duration=400.0, seed=2)
        sheltered = local.inbound_scans(protected, duration=400.0, seed=2,
                                        infected_near_fraction=0.0)
        assert len(sheltered) < len(far)

    def test_expected_rate_formula(self, protected):
        model = WormModel(WormParameters(
            vulnerable_hosts=30_000, scan_rate=3000.0, initially_infected=100,
            local_preference=0.4, local_prefix_len=16))
        near_fraction = 0.05
        t, infected = model.infection_curve(300.0, step=1.0)
        local_fraction = protected.num_addresses / 2.0**16
        per_host = (0.6 * protected.num_addresses / 2.0**32
                    + 0.4 * near_fraction * min(1.0, local_fraction))
        expected = float(infected[:-1].sum()) * 3000.0 * per_host
        scans = model.inbound_scans(protected, duration=300.0, seed=3,
                                    infected_near_fraction=near_fraction)
        assert len(scans) == pytest.approx(expected, rel=0.2)
