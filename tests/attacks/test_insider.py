"""Tests for repro.attacks.insider — Section 5.2 pollution traffic."""

import numpy as np
import pytest

from repro.attacks.insider import InsiderAttack
from repro.core.bitmap_filter import BitmapFilter
from repro.core.parameters import insider_utilization_increase


@pytest.fixture()
def attacker(protected):
    return protected.networks[0].host(10)


class TestGeneration:
    def test_outgoing_from_attacker(self, protected, attacker):
        attack = InsiderAttack(attacker, rate_pps=100.0, start=0.0, duration=10.0)
        pkts = attack.generate(protected)
        assert len(pkts) == 1000
        assert bool(np.all(pkts.src == attacker))
        directions = pkts.directions(protected)
        assert bool(np.all(directions == 0))  # all outgoing

    def test_random_destinations_outside(self, protected, attacker):
        attack = InsiderAttack(attacker, rate_pps=200.0, start=0.0, duration=5.0)
        pkts = attack.generate(protected)
        assert len(np.unique(pkts.dst)) > 950
        for dst in np.unique(pkts.dst)[:500]:
            assert not protected.contains_int(int(dst))

    def test_attacker_must_be_inside(self, protected):
        attack = InsiderAttack(0x01010101, rate_pps=10.0, start=0.0, duration=1.0)
        with pytest.raises(ValueError):
            attack.generate(protected)

    def test_validation(self, attacker):
        with pytest.raises(ValueError):
            InsiderAttack(attacker, rate_pps=0.0, start=0.0, duration=1.0)


class TestPollutionEffect:
    def test_utilization_increase_matches_formula(self, protected, attacker, small_config):
        """Section 5.2: dU ~= m*r*Te / 2^n."""
        rate = 50.0
        attack = InsiderAttack(attacker, rate_pps=rate, start=0.0, duration=60.0)
        pkts = attack.generate(protected)
        filt = BitmapFilter(small_config, protected)
        filt.process_batch(pkts, exact=True)
        measured = filt.utilization()
        predicted = insider_utilization_increase(
            rate, small_config.num_hashes, small_config.order,
            small_config.expiry_timer,
        )
        # The formula ignores collisions and rotation phase; 2x band.
        assert predicted / 2.5 < measured < predicted * 1.5

    def test_pollution_raises_penetration(self, protected, attacker, small_config):
        """Polluted bitmaps pass more random probes than clean ones."""
        from repro.attacks.scanner import RandomScanAttack, ScanConfig

        probes = RandomScanAttack(
            ScanConfig(rate_pps=2000.0, start=61.0, duration=10.0, seed=8),
            protected,
        ).generate()

        clean = BitmapFilter(small_config, protected)
        clean_pass = int(clean.process_batch(probes, exact=True).sum())

        polluted = BitmapFilter(small_config, protected)
        pollution = InsiderAttack(attacker, rate_pps=300.0, start=0.0,
                                  duration=60.0).generate(protected)
        polluted.process_batch(pollution, exact=True)
        polluted_pass = int(polluted.process_batch(probes, exact=True).sum())
        assert polluted_pass > clean_pass
