"""Tests for repro.attacks.scanner — the Section 4.3 random-scan generator."""

import numpy as np
import pytest

from repro.attacks.scanner import RandomScanAttack, ScanConfig
from repro.net.packet import PacketLabel, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP


@pytest.fixture()
def attack(protected):
    config = ScanConfig(rate_pps=1000.0, start=50.0, duration=20.0, seed=3)
    return RandomScanAttack(config, protected).generate()


class TestScanShape:
    def test_count_matches_rate(self, attack):
        assert len(attack) == 20_000

    def test_time_bounds(self, attack):
        assert attack.ts.min() >= 50.0
        assert attack.ts.max() <= 70.0 + 1e-6

    def test_sorted(self, attack):
        assert bool(np.all(np.diff(attack.ts) >= 0))

    def test_rate_is_steady(self, attack):
        counts, _ = np.histogram(attack.ts, bins=np.arange(50.0, 71.0, 1.0))
        assert counts.min() > 700
        assert counts.max() < 1300

    def test_labelled_attack(self, attack):
        assert bool(np.all(attack.label == int(PacketLabel.ATTACK)))

    def test_label_override(self, protected):
        config = ScanConfig(rate_pps=100.0, start=0.0, duration=1.0,
                            label=PacketLabel.BACKGROUND)
        pkts = RandomScanAttack(config, protected).generate()
        assert bool(np.all(pkts.label == int(PacketLabel.BACKGROUND)))


class TestAddressing:
    def test_destinations_confined_to_protected(self, attack, protected):
        """'daddr is confined to the address space of the given sub-networks'."""
        for dst in np.unique(attack.dst):
            assert protected.contains_int(int(dst))

    def test_sources_outside_protected(self, attack, protected):
        for src in np.unique(attack.src)[:1000]:
            assert not protected.contains_int(int(src))

    def test_sources_spoofed_diverse(self, attack):
        assert len(np.unique(attack.src)) > 0.95 * len(attack)

    def test_ports_random(self, attack):
        assert len(np.unique(attack.dport)) > 10_000
        assert len(np.unique(attack.sport)) > 10_000

    def test_all_protected_networks_hit(self, attack, protected):
        hit = {net.prefix for net in protected.networks
               if bool(((attack.dst & np.uint32(net.netmask)) == np.uint32(net.prefix)).any())}
        assert len(hit) == len(protected.networks)


class TestProtocolMix:
    def test_tcp_fraction(self, attack):
        tcp = float((attack.proto == IPPROTO_TCP).mean())
        assert 0.85 < tcp < 0.95

    def test_syn_probes_dominate(self, attack):
        tcp_mask = attack.proto == IPPROTO_TCP
        syn = float((attack.flags[tcp_mask] == int(TcpFlags.SYN)).mean())
        assert syn > 0.9

    def test_udp_has_no_flags(self, attack):
        udp_mask = attack.proto == IPPROTO_UDP
        assert bool(np.all(attack.flags[udp_mask] == 0))


class TestConfig:
    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            ScanConfig(rate_pps=100.0, start=0.0, duration=0.0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            ScanConfig(rate_pps=100.0, start=0.0, duration=1.0, tcp_fraction=1.5)

    def test_deterministic(self, protected):
        config = ScanConfig(rate_pps=100.0, start=0.0, duration=2.0, seed=9)
        a = RandomScanAttack(config, protected).generate()
        b = RandomScanAttack(config, protected).generate()
        assert bool(np.array_equal(a.data, b.data))
