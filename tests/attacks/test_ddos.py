"""Tests for repro.attacks.ddos — floods and scans."""

import numpy as np

from repro.attacks.ddos import fin_scan, syn_flood, udp_flood
from repro.net.packet import PacketLabel, TcpFlags
from repro.net.protocols import IPPROTO_TCP, IPPROTO_UDP

VICTIM = 0xAC100A14  # 172.16.10.20


class TestSynFlood:
    def test_shape(self):
        flood = syn_flood(VICTIM, 80, rate_pps=500.0, start=10.0, duration=4.0)
        assert len(flood) == 2000
        assert bool(np.all(flood.dst == VICTIM))
        assert bool(np.all(flood.dport == 80))
        assert bool(np.all(flood.proto == IPPROTO_TCP))
        assert bool(np.all(flood.flags == int(TcpFlags.SYN)))
        assert bool(np.all(flood.label == int(PacketLabel.ATTACK)))

    def test_spoofed_sources(self):
        flood = syn_flood(VICTIM, 80, rate_pps=1000.0, start=0.0, duration=2.0)
        assert len(np.unique(flood.src)) > 1900

    def test_time_window(self):
        flood = syn_flood(VICTIM, 80, rate_pps=100.0, start=5.0, duration=3.0)
        assert flood.ts.min() >= 5.0
        assert flood.ts.max() <= 8.0 + 1e-6


class TestFinScan:
    def test_shape(self):
        scan = fin_scan(VICTIM, rate_pps=200.0, start=0.0, duration=5.0)
        assert len(scan) == 1000
        assert bool(np.all(scan.flags == int(TcpFlags.FIN)))
        assert bool(np.all(scan.dst == VICTIM))

    def test_sweeps_ports(self):
        scan = fin_scan(VICTIM, rate_pps=1000.0, start=0.0, duration=5.0)
        assert len(np.unique(scan.dport)) > 3000


class TestUdpFlood:
    def test_shape(self):
        flood = udp_flood(VICTIM, rate_pps=300.0, start=0.0, duration=2.0)
        assert len(flood) == 600
        assert bool(np.all(flood.proto == IPPROTO_UDP))
        assert bool(np.all(flood.size == 1400))

    def test_bandwidth_scales_with_size(self):
        small = udp_flood(VICTIM, rate_pps=100.0, start=0.0, duration=1.0,
                          packet_size=100)
        assert bool(np.all(small.size == 100))

    def test_deterministic(self):
        a = udp_flood(VICTIM, rate_pps=100.0, start=0.0, duration=1.0, seed=3)
        b = udp_flood(VICTIM, rate_pps=100.0, start=0.0, duration=1.0, seed=3)
        assert bool(np.array_equal(a.data, b.data))


class TestBitmapDefends:
    def test_bitmap_drops_entire_syn_flood(self, small_config, protected):
        """Floods aimed at a client host that never spoke are fully dropped."""
        from repro.core.bitmap_filter import BitmapFilter

        victim = protected.networks[0].host(20)
        flood = syn_flood(victim, 80, rate_pps=500.0, start=0.0, duration=4.0)
        filt = BitmapFilter(small_config, protected)
        verdicts = filt.process_batch(flood, exact=True)
        assert not verdicts.any()
