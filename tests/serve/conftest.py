"""Serve-suite fixtures: run ``async def`` tests without pytest-asyncio.

The container pins its dependency set, so instead of a plugin this local
hook executes coroutine test functions under ``asyncio.run`` — each test
gets a fresh event loop, which is exactly the isolation a daemon test
wants anyway.
"""

import asyncio
import inspect


def pytest_pyfunc_call(pyfuncitem):
    func = pyfuncitem.obj
    if inspect.iscoroutinefunction(func):
        kwargs = {name: pyfuncitem.funcargs[name]
                  for name in pyfuncitem._fixtureinfo.argnames}
        asyncio.run(func(**kwargs))
        return True
    return None
