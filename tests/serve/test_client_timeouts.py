"""Client deadline regressions: a wedged or dying daemon must raise, fast.

ISSUE 6 satellite (a)/(b): every blocking client wait — connect, each
response, the goodbye drain — is bounded, and transport failures surface
as typed :class:`ServeConnectionError`/:class:`ServeTimeoutError`
carrying the endpoint, frames in flight, and bytes buffered.  The wedged
daemon is a :class:`~repro.faults.socket_chaos.ChaosTcpProxy` in
``stall``/``reset`` mode; connect timeouts are simulated by patching the
dial, since loopback connects cannot be made to hang portably.
"""

import asyncio
import socket
import threading
import time

import numpy as np
import pytest

from repro.faults import ChaosTcpProxy
from repro.serve import protocol
from repro.serve.client import AsyncFilterClient, FilterClient
from repro.serve.errors import (
    ServeConnectionError,
    ServeTimeoutError,
    is_transient,
)

TICK = 0.25  # generous enough to never flake, short enough to stay fast


@pytest.fixture()
def stalled():
    """(host, port) of a daemon that accepts and reads but never answers."""
    with ChaosTcpProxy(mode="stall") as proxy:
        yield proxy.address


@pytest.fixture()
def resetting():
    """(host, port) of a daemon that RSTs every connection on accept."""
    with ChaosTcpProxy(mode="reset") as proxy:
        yield proxy.address


class TestSyncClient:
    def test_request_timeout_raises_not_hangs(self, stalled):
        client = FilterClient.connect(*stalled, request_timeout=TICK)
        began = time.monotonic()
        with pytest.raises(ServeTimeoutError) as excinfo:
            client.ping(b"hello?")
        assert time.monotonic() - began < 10 * TICK
        err = excinfo.value
        assert err.endpoint == f"{stalled[0]}:{stalled[1]}"
        assert err.frames_in_flight == 1
        assert is_transient(err)
        client.close()

    def test_goodbye_drain_deadline(self, stalled):
        client = FilterClient.connect(*stalled, request_timeout=TICK)
        began = time.monotonic()
        with pytest.raises(ServeTimeoutError):
            client.goodbye(timeout=TICK)
        assert time.monotonic() - began < 10 * TICK
        client.close()

    def test_reset_surfaces_as_typed_connection_error(self, resetting):
        # The RST can land during connect or on a request; both must be
        # a typed transient error, never a raw OSError or a hang.
        with pytest.raises(ServeConnectionError) as excinfo:
            client = FilterClient.connect(*resetting, request_timeout=5.0)
            try:
                for _ in range(50):  # the RST lands within a round trip
                    client.ping(b"x")
            finally:
                client.close()
        assert is_transient(excinfo.value)
        assert excinfo.value.endpoint is not None

    def test_connect_timeout_is_typed(self, monkeypatch):
        def hang(address, timeout=None):
            raise socket.timeout("timed out")

        monkeypatch.setattr(socket, "create_connection", hang)
        with pytest.raises(ServeTimeoutError, match="connect"):
            FilterClient.connect("192.0.2.1", 9, timeout=TICK)

    def test_partial_frame_counts_buffered_bytes(self):
        # A daemon that answers with half a frame, then wedges: the
        # timeout error must report the bytes sitting in the decoder.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()[:2]
        half_frame = protocol.encode_frame(protocol.FT_PONG, b"full")[:5]

        def serve_half():
            conn, _ = listener.accept()
            conn.recv(1 << 16)
            conn.sendall(half_frame)
            time.sleep(20 * TICK)
            conn.close()

        thread = threading.Thread(target=serve_half, daemon=True)
        thread.start()
        try:
            client = FilterClient.connect(host, port, request_timeout=TICK)
            with pytest.raises(ServeTimeoutError) as excinfo:
                client.ping(b"x")
            assert excinfo.value.bytes_buffered == len(half_frame)
            client.close()
        finally:
            listener.close()


class TestAsyncClient:
    async def test_connect_timeout_is_typed(self, monkeypatch):
        async def hang(host, port):
            await asyncio.sleep(3600)

        monkeypatch.setattr(asyncio, "open_connection", hang)
        with pytest.raises(ServeTimeoutError, match="connect"):
            await AsyncFilterClient.connect("192.0.2.1", 9, timeout=TICK)

    async def test_request_timeout_raises_not_hangs(self, stalled):
        client = await AsyncFilterClient.connect(
            *stalled, request_timeout=TICK)
        began = time.monotonic()
        with pytest.raises(ServeTimeoutError) as excinfo:
            await client.ping(b"hello?")
        assert time.monotonic() - began < 10 * TICK
        assert excinfo.value.frames_in_flight == 1
        assert is_transient(excinfo.value)
        await client.close()

    async def test_goodbye_drain_deadline(self, stalled):
        client = await AsyncFilterClient.connect(
            *stalled, request_timeout=TICK)
        began = time.monotonic()
        with pytest.raises(ServeTimeoutError):
            await client.goodbye(timeout=TICK)
        assert time.monotonic() - began < 10 * TICK
        await client.close()

    async def test_filter_timeout_counts_frames_in_flight(self, stalled):
        client = await AsyncFilterClient.connect(
            *stalled, request_timeout=TICK)
        from repro.net.packet import PACKET_DTYPE, PacketArray

        batch = PacketArray(np.zeros(3, dtype=PACKET_DTYPE))
        with pytest.raises(ServeTimeoutError) as excinfo:
            await client.filter_stream([batch, batch, batch], window=3)
        assert excinfo.value.frames_in_flight == 3
        await client.close()

    async def test_reset_surfaces_as_typed_connection_error(self, resetting):
        # The RST can land during connect setup or on the first request;
        # both must surface as a typed transient error, never raw OSError.
        with pytest.raises((ServeConnectionError, ServeTimeoutError)):
            client = await AsyncFilterClient.connect(*resetting,
                                                     request_timeout=5.0)
            try:
                for _ in range(50):
                    await client.ping(b"x")
            finally:
                await client.close()
