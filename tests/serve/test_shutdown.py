"""Graceful-shutdown regression tests against a real ``repro serve`` process.

The in-process suite (``test_daemon.py``) exercises drain mechanics inside
one event loop; these tests cover the full operational story the issue
demands: a daemon subprocess takes SIGTERM mid-stream, drains in-flight
batches, writes a restorable snapshot, exits 0 — and a daemon restored
from that snapshot continues producing verdicts byte-identical to an
uninterrupted offline run.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, FilterConfig
from repro.serve import protocol
from repro.serve.client import FilterClient
from repro.sim.pipeline import run_filter_on_trace

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parents[2]

FCFG = FilterConfig(order=12, num_vectors=4, rotation_interval=2.5)

SERVE_FLAGS = ["-n", str(FCFG.order), "--k", str(FCFG.num_vectors),
               "--m", str(FCFG.num_hashes),
               "--dt", str(FCFG.rotation_interval)]


def boot_daemon(trace, *extra):
    """Start ``repro serve`` (packet clock, ephemeral port) and wait READY."""
    protected = ",".join(str(net) for net in trace.protected.networks)
    cmd = [sys.executable, "-m", "repro", "serve",
           "--protected", protected, "--port", "0", "--no-http",
           "--clock", "packet", *SERVE_FLAGS, *extra]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(cmd, cwd=REPO_ROOT, env=env, text=True,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT)
    line = proc.stdout.readline()
    if not line.startswith("REPRO-SERVE READY "):
        proc.kill()
        raise AssertionError(f"daemon failed to start: {line!r} "
                             f"{proc.stdout.read()}")
    info = json.loads(line.split("READY ", 1)[1])
    return proc, tuple(info["data"])


def terminate(proc) -> int:
    proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=60)
    finally:
        proc.stdout.close()


def frames_of(packets, step=400):
    return [packets[i:i + step] for i in range(0, len(packets), step)]


def offline_verdicts(trace) -> np.ndarray:
    filt = BitmapFilter(FCFG, trace.protected)
    return np.asarray(run_filter_on_trace(filt, trace).verdicts, dtype=bool)


class TestGracefulShutdown:
    def test_sigterm_mid_stream_delivers_in_flight_verdicts(
            self, tiny_trace, tmp_path):
        """Frames the daemon received before SIGTERM still get verdicts."""
        snap = tmp_path / "final.npz"
        proc, addr = boot_daemon(tiny_trace, "--snapshot", str(snap))
        client = FilterClient.connect(*addr)
        batches = frames_of(tiny_trace.packets)
        try:
            for batch in batches:
                client._send(protocol.encode_packets(batch))
            # Read a few verdicts so the stream is demonstrably live, then
            # kill the daemon with most responses still outstanding.
            received = [protocol.decode_verdicts(
                client._recv_expect(protocol.FT_VERDICTS))
                for _ in range(3)]
            proc.send_signal(signal.SIGTERM)
            try:
                while True:
                    received.append(protocol.decode_verdicts(
                        client._recv_expect(protocol.FT_VERDICTS)))
            except ConnectionError:
                pass  # drain complete: daemon closed the connection
        finally:
            client.close()
        code = proc.wait(timeout=60)
        proc.stdout.close()
        assert code == 0
        # Ordered delivery: whatever arrived is an exact prefix of the
        # offline replay — drained batches are answered, never reordered
        # or corrupted.
        got = np.concatenate(received)
        assert len(received) >= 3
        np.testing.assert_array_equal(got, offline_verdicts(tiny_trace)[:len(got)])
        # The final snapshot landed and is restorable.
        assert snap.exists()

    def test_snapshot_restore_cycle_matches_uninterrupted_run(
            self, tiny_trace, tmp_path):
        """First half → SIGTERM snapshot → restore → second half ==
        the uninterrupted offline run, byte for byte."""
        expected = offline_verdicts(tiny_trace)
        packets = tiny_trace.packets
        half = len(packets) // 2
        snap = tmp_path / "mid.npz"

        proc, addr = boot_daemon(tiny_trace, "--snapshot", str(snap))
        with FilterClient.connect(*addr) as client:
            masks = list(client.filter_stream(frames_of(packets[:half])))
        assert terminate(proc) == 0
        assert snap.exists()

        proc, addr = boot_daemon(tiny_trace, "--restore", str(snap))
        with FilterClient.connect(*addr) as client:
            masks += list(client.filter_stream(frames_of(packets[half:])))
        assert terminate(proc) == 0

        np.testing.assert_array_equal(np.concatenate(masks), expected)
