"""Enriched /healthz: the fields a fleet health checker decides on.

ISSUE 6 satellite (d): beyond liveness, the health document must carry
the node's fail policy, degraded and warm-up state, rotation lag, and
ingest queue depth — everything :class:`repro.fleet.health.HealthChecker`
and a human operator need to judge a node without guessing.
"""

import asyncio
import json

from repro.core.resilience import FailPolicy

from tests.serve.test_daemon import (
    booted,
    fetch,
    serve_config,
    stop,
)

REQUIRED_FIELDS = (
    "status", "uptime_seconds", "connections_open", "packets_total",
    "rotations", "next_rotation", "fail_policy", "degraded", "warming_up",
    "warmup_until", "rotation_lag_seconds", "ingest_queue_depth",
    "ingest_queue_capacity", "pending_rebuild", "pending_geometry",
    "pending_rebuild_at", "restored", "restored_arrivals",
)


async def healthz(daemon) -> dict:
    host, port = daemon.http_address
    raw = await asyncio.to_thread(fetch, f"http://{host}:{port}/healthz")
    return json.loads(raw)


class TestHealthzFields:
    async def test_every_fleet_facing_field_is_present(self):
        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            doc = await healthz(daemon)
        finally:
            await stop(daemon)
        for field in REQUIRED_FIELDS:
            assert field in doc, f"/healthz missing {field!r}"

    async def test_fail_policy_is_reported(self):
        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            doc = await healthz(daemon)
            assert doc["fail_policy"] == "fail_closed"
            daemon.filter.fail_policy = FailPolicy.FAIL_OPEN
            doc = await healthz(daemon)
            assert doc["fail_policy"] == "fail_open"
        finally:
            await stop(daemon)

    async def test_healthy_packet_clock_daemon_is_not_degraded(self):
        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            doc = await healthz(daemon)
            assert doc["status"] == "serving"
            assert doc["degraded"] is False
            assert doc["rotation_lag_seconds"] == 0.0
        finally:
            await stop(daemon)

    async def test_degraded_reflects_filter_outage(self):
        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            daemon.filter.fail()
            doc = await healthz(daemon)
            assert doc["degraded"] is True
            daemon.filter.recover(0.0, warmup_grace=0.0)
            doc = await healthz(daemon)
            assert doc["degraded"] is False
        finally:
            await stop(daemon)

    async def test_ingest_queue_capacity_matches_config(self):
        daemon = await booted(serve_config(http=True, http_port=0,
                                           queue_frames=17))
        try:
            doc = await healthz(daemon)
            assert doc["ingest_queue_capacity"] == 17
            assert doc["ingest_queue_depth"] == 0
        finally:
            await stop(daemon)

    async def test_wall_clock_daemon_reports_warmup_grace(self):
        # A warm-up grace window (post-restore / post-recovery) must show
        # in /healthz so the checker can treat the node as not-yet-ready.
        daemon = await booted(serve_config(http=True, http_port=0,
                                           clock="wall"))
        try:
            doc = await healthz(daemon)
            assert doc["warming_up"] is False  # fresh boot: no grace
            assert doc["rotation_lag_seconds"] >= 0.0
            now = daemon._scheduler.filter_now()
            daemon.filter.begin_warmup(now + 60.0)
            doc = await healthz(daemon)
            assert doc["warming_up"] is True
            assert doc["warmup_until"] == now + 60.0
        finally:
            await stop(daemon)

    async def test_pending_geometry_echo_for_rolling_reconfig(self):
        """A deferred geometry change is echoed with its boundary — the
        confirmation a rolling-reconfig driver polls for (ISSUE 9)."""
        import dataclasses

        from tests.serve.test_daemon import FCFG

        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            doc = await healthz(daemon)
            assert doc["pending_rebuild"] is False
            assert doc["pending_geometry"] is None
            assert doc["pending_rebuild_at"] is None
            new_cfg = dataclasses.replace(FCFG, order=14)
            daemon.apply_config(new_cfg, rebuild_at=25.0)
            doc = await healthz(daemon)
            assert doc["pending_rebuild"] is True
            assert doc["pending_geometry"]["order"] == 14
            assert doc["pending_rebuild_at"] == 25.0
            assert doc["filter"]["order"] == FCFG.order  # live unchanged
        finally:
            await stop(daemon)

    async def test_restored_arrivals_prove_a_warm_start(self, tmp_path,
                                                        tiny_trace):
        """A node restored from a snapshot reports how much state it
        carried — the scale-out smoke reads this to prove warmth."""
        import io

        from repro.serve.state import snapshot_to_bytes

        donor = await booted(serve_config(http=True, http_port=0))
        try:
            from repro.serve import AsyncFilterClient

            client = await AsyncFilterClient.connect(*donor.data_address)
            await client.filter(tiny_trace.packets[:2000])
            await client.goodbye()
            await client.close()
            doc = await healthz(donor)
            assert doc["restored"] is False
            assert doc["restored_arrivals"] == 0
            blob = snapshot_to_bytes(donor.filter)
        finally:
            await stop(donor)
        path = tmp_path / "warm.npz"
        path.write_bytes(blob)
        warm = await booted(serve_config(http=True, http_port=0,
                                         restore_path=str(path)))
        try:
            doc = await healthz(warm)
            assert doc["restored"] is True
            assert doc["restored_arrivals"] > 0
        finally:
            await stop(warm)

    async def test_health_checker_consumes_the_document(self):
        """The fleet checker's verdict logic runs off this exact payload."""
        from repro.fleet.health import CircuitBreaker, HealthChecker

        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            doc = await healthz(daemon)
            breaker = CircuitBreaker()
            checker = HealthChecker({"n": breaker}, probe=lambda node: doc)
            assert checker.check_node("n") is True
            daemon.filter.fail()
            degraded_doc = await healthz(daemon)
            checker2 = HealthChecker({"n": breaker},
                                     probe=lambda node: degraded_doc)
            assert checker2.check_node("n") is False
        finally:
            await stop(daemon)
