"""Enriched /healthz: the fields a fleet health checker decides on.

ISSUE 6 satellite (d): beyond liveness, the health document must carry
the node's fail policy, degraded and warm-up state, rotation lag, and
ingest queue depth — everything :class:`repro.fleet.health.HealthChecker`
and a human operator need to judge a node without guessing.
"""

import asyncio
import json

from repro.core.resilience import FailPolicy

from tests.serve.test_daemon import (
    booted,
    fetch,
    serve_config,
    stop,
)

REQUIRED_FIELDS = (
    "status", "uptime_seconds", "connections_open", "packets_total",
    "rotations", "next_rotation", "fail_policy", "degraded", "warming_up",
    "warmup_until", "rotation_lag_seconds", "ingest_queue_depth",
    "ingest_queue_capacity",
)


async def healthz(daemon) -> dict:
    host, port = daemon.http_address
    raw = await asyncio.to_thread(fetch, f"http://{host}:{port}/healthz")
    return json.loads(raw)


class TestHealthzFields:
    async def test_every_fleet_facing_field_is_present(self):
        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            doc = await healthz(daemon)
        finally:
            await stop(daemon)
        for field in REQUIRED_FIELDS:
            assert field in doc, f"/healthz missing {field!r}"

    async def test_fail_policy_is_reported(self):
        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            doc = await healthz(daemon)
            assert doc["fail_policy"] == "fail_closed"
            daemon.filter.fail_policy = FailPolicy.FAIL_OPEN
            doc = await healthz(daemon)
            assert doc["fail_policy"] == "fail_open"
        finally:
            await stop(daemon)

    async def test_healthy_packet_clock_daemon_is_not_degraded(self):
        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            doc = await healthz(daemon)
            assert doc["status"] == "serving"
            assert doc["degraded"] is False
            assert doc["rotation_lag_seconds"] == 0.0
        finally:
            await stop(daemon)

    async def test_degraded_reflects_filter_outage(self):
        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            daemon.filter.fail()
            doc = await healthz(daemon)
            assert doc["degraded"] is True
            daemon.filter.recover(0.0, warmup_grace=0.0)
            doc = await healthz(daemon)
            assert doc["degraded"] is False
        finally:
            await stop(daemon)

    async def test_ingest_queue_capacity_matches_config(self):
        daemon = await booted(serve_config(http=True, http_port=0,
                                           queue_frames=17))
        try:
            doc = await healthz(daemon)
            assert doc["ingest_queue_capacity"] == 17
            assert doc["ingest_queue_depth"] == 0
        finally:
            await stop(daemon)

    async def test_wall_clock_daemon_reports_warmup_grace(self):
        # A warm-up grace window (post-restore / post-recovery) must show
        # in /healthz so the checker can treat the node as not-yet-ready.
        daemon = await booted(serve_config(http=True, http_port=0,
                                           clock="wall"))
        try:
            doc = await healthz(daemon)
            assert doc["warming_up"] is False  # fresh boot: no grace
            assert doc["rotation_lag_seconds"] >= 0.0
            now = daemon._scheduler.filter_now()
            daemon.filter.begin_warmup(now + 60.0)
            doc = await healthz(daemon)
            assert doc["warming_up"] is True
            assert doc["warmup_until"] == now + 60.0
        finally:
            await stop(daemon)

    async def test_health_checker_consumes_the_document(self):
        """The fleet checker's verdict logic runs off this exact payload."""
        from repro.fleet.health import CircuitBreaker, HealthChecker

        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            doc = await healthz(daemon)
            breaker = CircuitBreaker()
            checker = HealthChecker({"n": breaker}, probe=lambda node: doc)
            assert checker.check_node("n") is True
            daemon.filter.fail()
            degraded_doc = await healthz(daemon)
            checker2 = HealthChecker({"n": breaker},
                                     probe=lambda node: degraded_doc)
            assert checker2.check_node("n") is False
        finally:
            await stop(daemon)
