"""Property tests for the serve framing codec (tests/strategies.py shapes).

The wire protocol must round-trip *every* valid packet tuple bit-exactly
(verdict parity across the socket depends on it) and reject malformed
streams with a clean :class:`ProtocolError` rather than garbage verdicts.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import PACKET_DTYPE, PacketArray
from repro.serve import protocol
from repro.serve.protocol import (
    FRAME_TYPES,
    FrameDecoder,
    ProtocolError,
    decode_packets,
    decode_verdicts,
    encode_frame,
    encode_packets,
    encode_verdicts,
)
from tests.strategies import mixed_direction_packets, rotation_straddling_arrays


def _arrays():
    """PacketArrays drawn from the shared suite strategies."""
    return st.one_of(
        rotation_straddling_arrays(),
        mixed_direction_packets().map(PacketArray.from_packets),
    )


class TestPacketRoundTrip:
    @given(_arrays())
    @settings(max_examples=60, deadline=None)
    def test_every_field_roundtrips_bit_exactly(self, packets):
        frame = encode_packets(packets)
        decoder = FrameDecoder()
        frames = decoder.feed(frame)
        assert len(frames) == 1
        frame_type, body = frames[0]
        assert frame_type == protocol.FT_PACKETS
        restored = decode_packets(body)
        assert restored.data.dtype == PACKET_DTYPE
        for name in PACKET_DTYPE.names:
            np.testing.assert_array_equal(restored.data[name],
                                          packets.data[name], err_msg=name)

    def test_empty_array_roundtrips(self):
        empty = PacketArray(np.zeros(0, dtype=PACKET_DTYPE))
        _, body = FrameDecoder().feed(encode_packets(empty))[0]
        assert len(decode_packets(body)) == 0

    @given(st.lists(st.booleans(), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_verdicts_roundtrip(self, bits):
        mask = np.array(bits, dtype=bool)
        _, body = FrameDecoder().feed(encode_verdicts(mask))[0]
        np.testing.assert_array_equal(decode_verdicts(body), mask)


class TestDecoderChunking:
    @given(
        st.lists(
            st.tuples(st.sampled_from(sorted(FRAME_TYPES)),
                      st.binary(max_size=64)),
            min_size=1, max_size=8),
        st.integers(1, 17),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_chunking_preserves_frames(self, frames, chunk_size):
        stream = b"".join(encode_frame(t, b) for t, b in frames)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), chunk_size):
            out.extend(decoder.feed(stream[i:i + chunk_size]))
        decoder.finish()
        assert out == frames

    @given(st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_truncated_stream_fails_finish(self, cut):
        stream = encode_frame(protocol.FT_PING, b"x" * 64)
        cut = min(cut, len(stream) - 1)
        decoder = FrameDecoder()
        decoder.feed(stream[:cut])
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.finish()
        assert decoder.pending_bytes == cut


class TestRejections:
    def test_oversized_frame_rejected(self):
        decoder = FrameDecoder(max_frame=16)
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(encode_frame(protocol.FT_PING, b"y" * 32))

    def test_zero_length_frame_rejected(self):
        with pytest.raises(ProtocolError, match="zero-length"):
            FrameDecoder().feed(struct.pack("!I", 0))

    def test_unknown_frame_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            FrameDecoder().feed(struct.pack("!I", 1) + b"\x7f")

    def test_encode_unknown_type_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(0x7F, b"")

    @given(st.integers(1, protocol.WIRE_DTYPE.itemsize - 1))
    @settings(max_examples=10, deadline=None)
    def test_partial_row_body_rejected(self, extra):
        with pytest.raises(ProtocolError, match="not a multiple"):
            decode_packets(b"\x00" * extra)

    def test_nonfinite_timestamp_rejected(self):
        row = np.zeros(1, dtype=protocol.WIRE_DTYPE)
        row["ts"] = np.nan
        with pytest.raises(ProtocolError, match="non-finite"):
            decode_packets(row.tobytes())

    def test_verdict_bytes_other_than_01_rejected(self):
        with pytest.raises(ProtocolError, match="other than 0/1"):
            decode_verdicts(b"\x00\x01\x02")

    def test_decoder_error_is_sticky_protocol_error(self):
        # After a framing error the caller must tear the connection down;
        # feeding more data must not resurface valid-looking frames.
        decoder = FrameDecoder(max_frame=8)
        with pytest.raises(ProtocolError):
            decoder.feed(struct.pack("!I", 100) + b"\x02")
        with pytest.raises(ProtocolError):
            decoder.feed(b"")


class TestWireDtype:
    def test_wire_dtype_is_little_endian_packet_dtype(self):
        assert protocol.WIRE_DTYPE.itemsize == PACKET_DTYPE.itemsize
        for name in PACKET_DTYPE.names:
            wire = protocol.WIRE_DTYPE[name]
            assert wire.byteorder in ("<", "|", "=")
