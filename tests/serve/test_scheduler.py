"""RotationScheduler: drift compensation and missed-boundary catch-up."""

import asyncio

import pytest

from repro.core.bitmap_filter import BitmapFilter, FilterConfig
from repro.net.address import AddressSpace
from repro.serve.scheduler import RotationScheduler
from repro.telemetry.registry import MetricsRegistry

PROTECTED = AddressSpace.class_c_block("172.16.0.0", 2)


class FakeClock:
    """A controllable monotonic clock for driving the scheduler."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now


def make_filter(dt: float = 5.0) -> BitmapFilter:
    return BitmapFilter(
        FilterConfig(order=10, num_vectors=4, rotation_interval=dt),
        PROTECTED)


#: Tests cap the scheduler's wait at 5 ms of real time so it re-reads the
#: fake clock promptly — its sleeps are real even when the clock is fake.
POLL = 0.005


async def spin(scheduler: RotationScheduler, clock: FakeClock,
               until: float, step: float = 0.5) -> None:
    """Advance the fake clock in steps, giving the scheduler real time to
    notice each advance (its waits are wall-clock ``asyncio.wait_for``
    sleeps, re-checking the injected clock every ``poll_cap`` seconds)."""
    while clock.now < until:
        clock.now = min(clock.now + step, until)
        await asyncio.sleep(3 * POLL)


class TestRotationScheduler:
    def test_filter_now_maps_through_epoch(self):
        clock = FakeClock(500.0)
        sched = RotationScheduler(make_filter(), epoch=480.0, clock=clock)
        assert sched.filter_now() == pytest.approx(20.0)
        assert sched.epoch == 480.0

    async def test_rotations_fire_at_wall_boundaries(self):
        filt = make_filter(dt=5.0)
        clock = FakeClock(1000.0)
        sched = RotationScheduler(filt, epoch=1000.0, clock=clock,
                                  poll_cap=POLL)
        sched.start()
        await spin(sched, clock, 1000.0 + 17.5)
        sched.stop()
        await sched.join()
        # Boundaries at filter times 5, 10, 15 have all passed.
        assert filt.stats.rotations == 3
        assert filt.next_rotation == pytest.approx(20.0)

    async def test_deadlines_do_not_drift(self):
        # Wakeups land *after* each boundary (the spin adds lateness), but
        # the next deadline always comes from the filter's origin-anchored
        # schedule — rotation N fires at N*dt, never at "last wake + dt".
        filt = make_filter(dt=2.0)
        clock = FakeClock(0.0)
        sched = RotationScheduler(filt, epoch=0.0, clock=clock,
                                  poll_cap=POLL)
        sched.start()
        await spin(sched, clock, 13.0, step=0.7)  # deliberately off-grid
        sched.stop()
        await sched.join()
        assert filt.stats.rotations == 6          # t=2,4,6,8,10,12
        assert filt.next_rotation == pytest.approx(14.0)

    async def test_stall_catches_up_missed_rotations(self):
        filt = make_filter(dt=5.0)
        clock = FakeClock(0.0)
        registry = MetricsRegistry()
        sched = RotationScheduler(filt, epoch=0.0, clock=clock,
                                  registry=registry, poll_cap=POLL)
        sched.start()
        await asyncio.sleep(2 * POLL)
        # The "event loop" stalls for 23s: four boundaries blow past.
        clock.now = 23.0
        await asyncio.sleep(4 * POLL)
        sched.stop()
        await sched.join()
        assert filt.stats.rotations == 4
        assert filt.next_rotation == pytest.approx(25.0)
        caught_up = registry.get("repro_serve_rotations_caught_up_total")
        assert caught_up is not None and caught_up.value == 3

    async def test_on_boundary_hook_runs_after_rotation(self):
        filt = make_filter(dt=5.0)
        clock = FakeClock(0.0)
        seen = []

        async def hook(now_ft: float) -> None:
            seen.append((now_ft, filt.stats.rotations))

        sched = RotationScheduler(filt, epoch=0.0, clock=clock,
                                  on_boundary=hook, poll_cap=POLL)
        sched.start()
        await spin(sched, clock, 11.0)
        sched.stop()
        await sched.join()
        assert len(seen) >= 2
        # The hook observes the post-rotation state.
        assert seen[0][1] >= 1

    async def test_stalled_filter_does_not_spin(self):
        filt = make_filter(dt=5.0)
        filt.stall_rotations()
        clock = FakeClock(0.0)
        registry = MetricsRegistry()
        sched = RotationScheduler(filt, epoch=0.0, clock=clock,
                                  registry=registry)
        sched.start()
        clock.now = 30.0  # six boundaries due, but the timer is wedged
        await asyncio.sleep(0.2)
        sched.stop()
        await sched.join()
        assert filt.stats.rotations == 0
        wakeups = registry.get("repro_serve_rotation_wakeups_total")
        # advance_to ran 0 rotations each time, so no wakeups counted —
        # and the 0.05s idle keeps the attempt count bounded.
        assert wakeups is not None and wakeups.value == 0

    async def test_stop_interrupts_long_wait(self):
        filt = make_filter(dt=3600.0)
        clock = FakeClock(0.0)
        sched = RotationScheduler(filt, epoch=0.0, clock=clock)
        sched.start()
        await asyncio.sleep(0.05)
        sched.stop()
        await asyncio.wait_for(sched.join(), timeout=2.0)
        assert filt.stats.rotations == 0
