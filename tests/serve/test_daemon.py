"""In-process FilterDaemon tests: parity, ordering, backpressure, lifecycle.

These boot the real daemon on an ephemeral loopback port inside the test's
event loop and talk to it with :class:`AsyncFilterClient` — the full wire
path (framing, micro-batching, ordered delivery) without subprocess cost.
The SIGTERM/subprocess path lives in ``test_shutdown.py``.
"""

import asyncio
import io
import json
import urllib.request

import numpy as np
import pytest

from repro.core.bitmap_filter import BitmapFilter, FilterConfig
from repro.core.persistence import load_filter
from repro.core.resilience import FailPolicy
from repro.net.address import AddressSpace
from repro.net.packet import DIRECTION_INCOMING, PACKET_DTYPE, PacketArray
from repro.serve import (
    AsyncFilterClient,
    FilterDaemon,
    ServeConfig,
    ServerError,
)
from repro.serve import protocol
from repro.sim.pipeline import run_filter_on_trace
from repro.traffic.trace import Trace

PROTECTED = AddressSpace.class_c_block("172.16.0.0", 6)

FCFG = FilterConfig(order=12, num_vectors=4, rotation_interval=2.5)


def serve_config(**overrides) -> ServeConfig:
    fields = dict(filter=FCFG, protected=PROTECTED, http=False, port=0)
    fields.update(overrides)
    return ServeConfig(**fields)


def frames_of(packets: PacketArray, step: int = 500):
    return [packets[i:i + step] for i in range(0, len(packets), step)]


def offline_verdicts(trace, fcfg=FCFG, exact=True) -> np.ndarray:
    filt = BitmapFilter(fcfg, trace.protected)
    result = run_filter_on_trace(filt, trace, exact=exact)
    return np.asarray(result.verdicts, dtype=bool)


async def booted(config: ServeConfig) -> FilterDaemon:
    daemon = FilterDaemon(config)
    await daemon.start()
    return daemon


async def stop(daemon: FilterDaemon) -> None:
    daemon.request_shutdown()
    await daemon.drain()


def fetch(url: str) -> bytes:
    return urllib.request.urlopen(url, timeout=10.0).read()


class TestVerdictParity:
    async def test_serial_daemon_matches_offline_replay(self, tiny_trace):
        expected = offline_verdicts(tiny_trace)
        daemon = await booted(serve_config())
        try:
            client = await AsyncFilterClient.connect(*daemon.data_address)
            masks = await client.filter_stream(
                frames_of(tiny_trace.packets), window=8)
            await client.goodbye()
            await client.close()
        finally:
            await stop(daemon)
        np.testing.assert_array_equal(np.concatenate(masks), expected)

    @pytest.mark.slow
    async def test_sharded_daemon_matches_offline_replay(self, tiny_trace):
        expected = offline_verdicts(tiny_trace)
        daemon = await booted(serve_config(workers=2))
        try:
            client = await AsyncFilterClient.connect(*daemon.data_address)
            masks = await client.filter_stream(
                frames_of(tiny_trace.packets), window=8)
            await client.goodbye()
            await client.close()
        finally:
            await stop(daemon)
        np.testing.assert_array_equal(np.concatenate(masks), expected)

    async def test_windowed_mode_matches_offline_windowed(self, tiny_trace):
        expected = offline_verdicts(tiny_trace, exact=False)
        daemon = await booted(serve_config(exact=False,
                                           batch_max_packets=10 ** 9))
        try:
            client = await AsyncFilterClient.connect(*daemon.data_address)
            # One frame per call, huge coalescing ceiling: the daemon sees
            # the same batch boundaries the offline windowed run does only
            # if we send everything as one frame.
            mask = await client.filter(tiny_trace.packets)
            await client.goodbye()
            await client.close()
        finally:
            await stop(daemon)
        np.testing.assert_array_equal(mask, expected)


class TestProtocolSurface:
    async def test_ping_is_an_ordered_barrier(self, tiny_trace):
        daemon = await booted(serve_config())
        try:
            client = await AsyncFilterClient.connect(*daemon.data_address)
            # Send packets and a ping without awaiting the verdicts first;
            # the pong must arrive after the verdict frame.
            client._writer.write(
                protocol.encode_packets(tiny_trace.packets[:100]))
            client._writer.write(
                protocol.encode_frame(protocol.FT_PING, b"tok"))
            await client._writer.drain()
            first = await client._recv_frame()
            second = await client._recv_frame()
            assert first[0] == protocol.FT_VERDICTS
            assert len(first[1]) == 100
            assert second == (protocol.FT_PONG, b"tok")
            await client.goodbye()
            await client.close()
        finally:
            await stop(daemon)

    async def test_config_describes_the_filter(self):
        daemon = await booted(serve_config())
        try:
            client = await AsyncFilterClient.connect(*daemon.data_address)
            info = await client.config()
            await client.goodbye()
            await client.close()
        finally:
            await stop(daemon)
        assert info["filter"]["order"] == FCFG.order
        assert info["filter"]["rotation_interval"] == FCFG.rotation_interval
        assert info["backend"] == "serial"
        assert info["clock"] == "packet"
        assert sorted(info["protected"]) == sorted(
            str(net) for net in PROTECTED.networks)

    async def test_malformed_stream_gets_error_frame(self):
        daemon = await booted(serve_config())
        try:
            reader, writer = await asyncio.open_connection(
                *daemon.data_address)
            writer.write(b"\x00\x00\x00\x01\x7f")  # unknown frame type
            await writer.drain()
            decoder = protocol.FrameDecoder()
            frames = []
            while not frames:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                frames.extend(decoder.feed(chunk))
            assert frames and frames[0][0] == protocol.FT_ERROR
            assert b"unknown frame type" in frames[0][1]
            writer.close()
        finally:
            await stop(daemon)

    async def test_server_error_raises_in_client(self, tiny_trace):
        daemon = await booted(serve_config())
        try:
            client = await AsyncFilterClient.connect(*daemon.data_address)
            # A verdicts frame is server->client only.
            client._writer.write(
                protocol.encode_frame(protocol.FT_VERDICTS, b"\x01"))
            await client._writer.drain()
            with pytest.raises(ServerError, match="server-only"):
                await client.filter(tiny_trace.packets[:10])
            await client.close()
        finally:
            await stop(daemon)

    async def test_unix_socket_transport(self, tiny_trace, tmp_path):
        path = str(tmp_path / "serve.sock")
        daemon = await booted(serve_config(unix_path=path))
        try:
            client = await AsyncFilterClient.connect_unix(path)
            mask = await client.filter(tiny_trace.packets[:50])
            assert len(mask) == 50
            await client.goodbye()
            await client.close()
        finally:
            await stop(daemon)


async def wedge_ingest(daemon: FilterDaemon) -> None:
    """Suspend the ingest loop and fill the queue so the next frame sheds."""
    daemon._ingest_task.cancel()
    try:
        await daemon._ingest_task
    except asyncio.CancelledError:
        pass
    daemon._ingest_task = None
    loop = asyncio.get_running_loop()
    empty = PacketArray(np.zeros(0, dtype=PACKET_DTYPE))
    while len(daemon._queue) < daemon.config.queue_frames:
        daemon._queue.append((object(), empty, loop.create_future()))


class TestBackpressure:
    async def test_shed_mode_answers_overflow_from_fail_policy(
            self, tiny_trace):
        daemon = await booted(serve_config(
            backpressure="shed", queue_frames=1))
        try:
            await wedge_ingest(daemon)
            client = await AsyncFilterClient.connect(*daemon.data_address)
            packets = tiny_trace.packets[:200]
            directions = packets.directions(PROTECTED)
            shed = await client.filter(packets)  # answered without a filter
            # FAIL_CLOSED shed: incoming dropped, everything else passes.
            np.testing.assert_array_equal(
                shed, directions != DIRECTION_INCOMING)
            assert daemon._m.shed_frames.value == 1
            assert daemon._m.shed_packets.value == len(packets)
            assert daemon._m.packets_total.value == 0  # filter untouched
            await client.close()
        finally:
            daemon._queue.clear()
            await stop(daemon)

    async def test_shed_mode_fail_open_admits_everything(self, tiny_trace):
        import dataclasses
        fcfg = dataclasses.replace(FCFG, fail_policy=FailPolicy.FAIL_OPEN)
        daemon = await booted(serve_config(
            filter=fcfg, backpressure="shed", queue_frames=1))
        try:
            await wedge_ingest(daemon)
            client = await AsyncFilterClient.connect(*daemon.data_address)
            shed = await client.filter(tiny_trace.packets[:100])
            assert shed.all()
            await client.close()
        finally:
            daemon._queue.clear()
            await stop(daemon)


class TestHotReload:
    async def test_fail_policy_swap_is_immediate(self):
        import dataclasses
        daemon = await booted(serve_config())
        try:
            new_cfg = dataclasses.replace(
                FCFG, fail_policy=FailPolicy.FAIL_OPEN)
            assert daemon.apply_config(new_cfg) == "immediate"
            assert daemon.filter.fail_policy is FailPolicy.FAIL_OPEN
            assert daemon.apply_config(new_cfg) == "unchanged"
        finally:
            await stop(daemon)

    async def test_geometry_change_rebuilds_at_rotation_boundary(
            self, tiny_trace):
        daemon = await booted(serve_config())
        try:
            client = await AsyncFilterClient.connect(*daemon.data_address)
            packets = tiny_trace.packets
            await client.filter(packets[:500])
            old_filter = daemon.filter
            new_cfg = FilterConfig(order=14, num_vectors=4,
                                   rotation_interval=2.5)
            assert daemon.apply_config(new_cfg) == "deferred-rebuild"
            assert daemon.filter is old_filter  # not yet
            # Stream small frames past the next rotation boundary; the
            # rebuild triggers on the first batch whose leading timestamp
            # crosses it (window=1 keeps every frame its own batch).
            await client.filter_stream(frames_of(packets[500:4000]),
                                       window=1)
            assert daemon.filter is not old_filter
            assert daemon.filter.config.order == 14
            # The lost marks are covered by a warm-up grace window.
            assert daemon.filter.warmup_until > 0
            assert daemon._m.reloads["rebuild"].value == 1
            await client.goodbye()
            await client.close()
        finally:
            await stop(daemon)

    async def test_rebuild_at_override_splits_the_batch(self, tiny_trace):
        """A shared ``rebuild_at`` is honored mid-batch: packets before
        the boundary see the old geometry, packets at/after it the new —
        byte-identical to the offline reconfig twin at the same boundary,
        no matter how the frames coalesced into batches."""
        from repro.sim.pipeline import run_filter_with_reconfig

        packets = tiny_trace.packets.sorted_by_time()[:6000]
        boundary = 5.0  # a rotation boundary (2 * dt) inside the batch
        ts = np.asarray(packets.ts, dtype=np.float64)
        assert ts[0] < boundary < ts[-1]  # the split is genuinely interior
        new_cfg = FilterConfig(order=14, num_vectors=4,
                               rotation_interval=2.5)
        expected = run_filter_with_reconfig(
            FCFG, new_cfg, Trace(packets, tiny_trace.protected), boundary)
        daemon = await booted(serve_config())
        try:
            assert daemon.apply_config(new_cfg, rebuild_at=boundary) == \
                "deferred-rebuild"
            client = await AsyncFilterClient.connect(*daemon.data_address)
            # One giant window so micro-batching coalesces frames
            # arbitrarily — the boundary split must not care.
            masks = await client.filter_stream(frames_of(packets),
                                               window=8)
            await client.goodbye()
            await client.close()
            assert daemon.filter.config.order == 14
            assert daemon._m.reloads["rebuild"].value == 1
        finally:
            await stop(daemon)
        np.testing.assert_array_equal(np.concatenate(masks), expected)

    async def test_rebuild_at_beyond_the_traffic_never_fires(self,
                                                             tiny_trace):
        daemon = await booted(serve_config())
        try:
            new_cfg = FilterConfig(order=14, num_vectors=4,
                                   rotation_interval=2.5)
            daemon.apply_config(new_cfg, rebuild_at=1e9)
            client = await AsyncFilterClient.connect(*daemon.data_address)
            await client.filter(tiny_trace.packets[:2000])
            await client.goodbye()
            await client.close()
            assert daemon.filter.config.order == FCFG.order  # still pending
            assert daemon.health()["pending_rebuild"] is True
        finally:
            await stop(daemon)

    async def test_sighup_reload_file(self, tmp_path):
        reload_path = tmp_path / "filter.json"
        reload_path.write_text(json.dumps({
            "order": FCFG.order, "num_vectors": FCFG.num_vectors,
            "num_hashes": FCFG.num_hashes,
            "rotation_interval": FCFG.rotation_interval,
            "seed": FCFG.seed, "fail_policy": "fail_open"}))
        daemon = await booted(serve_config(reload_path=str(reload_path)))
        try:
            daemon.request_reload()
            assert daemon.filter.fail_policy is FailPolicy.FAIL_OPEN
        finally:
            await stop(daemon)

    async def test_reload_file_carries_the_shared_boundary(self, tmp_path):
        """A fleet supervisor's reload JSON names the shared rebuild_at;
        the daemon echoes both the pending geometry and the boundary on
        /healthz so the roll can confirm before touching the next node."""
        reload_path = tmp_path / "filter.json"
        reload_path.write_text(json.dumps({
            "order": 14, "num_vectors": FCFG.num_vectors,
            "num_hashes": FCFG.num_hashes,
            "rotation_interval": FCFG.rotation_interval,
            "seed": FCFG.seed, "fail_policy": "fail_closed",
            "rebuild_at": 12.5}))
        daemon = await booted(serve_config(reload_path=str(reload_path)))
        try:
            daemon.request_reload()
            health = daemon.health()
            assert health["pending_rebuild"] is True
            assert health["pending_rebuild_at"] == 12.5
            assert health["pending_geometry"]["order"] == 14
            assert health["filter"]["order"] == FCFG.order  # live unchanged
        finally:
            await stop(daemon)

    async def test_bad_reload_file_is_rejected_not_fatal(self, tmp_path):
        reload_path = tmp_path / "filter.json"
        reload_path.write_text('{"order": 12, "bogus_knob": 1}')
        daemon = await booted(serve_config(reload_path=str(reload_path)))
        try:
            daemon.request_reload()  # prints a diagnostic, daemon survives
            assert daemon.filter.config.order == FCFG.order
        finally:
            await stop(daemon)


class TestHttp:
    async def test_metrics_healthz_snapshot(self, tiny_trace):
        daemon = await booted(serve_config(http=True, http_port=0))
        try:
            client = await AsyncFilterClient.connect(*daemon.data_address)
            await client.filter(tiny_trace.packets[:1000])
            await client.goodbye()
            await client.close()
            host, port = daemon.http_address
            base = f"http://{host}:{port}"
            metrics = (await asyncio.to_thread(fetch, base + "/metrics")) \
                .decode()
            assert "repro_serve_packets_total 1000" in metrics
            assert "repro_filter_marks_total" in metrics
            health = json.loads(await asyncio.to_thread(
                fetch, base + "/healthz"))
            assert health["status"] == "serving"
            assert health["packets_total"] == 1000
            snap = await asyncio.to_thread(fetch, base + "/snapshot")
            restored = load_filter(io.BytesIO(snap))
            assert restored.stats.incoming == \
                daemon.filter.stats.incoming
            not_found = await asyncio.to_thread(
                fetch_status, base + "/nope")
            assert not_found == 404
        finally:
            await stop(daemon)


def fetch_status(url: str) -> int:
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status
    except urllib.error.HTTPError as exc:
        return exc.code


class TestSnapshotRestore:
    async def test_snapshot_then_restore_resumes_identically(
            self, tiny_trace, tmp_path):
        """Stop mid-trace, snapshot, restore, finish: verdicts identical."""
        expected = offline_verdicts(tiny_trace)
        packets = tiny_trace.packets
        half = len(packets) // 2
        snap_path = str(tmp_path / "mid.npz")

        first = await booted(serve_config(snapshot_path=snap_path))
        client = await AsyncFilterClient.connect(*first.data_address)
        masks = await client.filter_stream(frames_of(packets[:half]),
                                           window=4)
        await client.goodbye()
        await client.close()
        await stop(first)  # writes the final snapshot

        second = await booted(serve_config(restore_path=snap_path))
        try:
            client = await AsyncFilterClient.connect(*second.data_address)
            masks += await client.filter_stream(frames_of(packets[half:]),
                                                window=4)
            await client.goodbye()
            await client.close()
        finally:
            await stop(second)
        np.testing.assert_array_equal(np.concatenate(masks), expected)

    @pytest.mark.slow
    async def test_restore_into_sharded_backend(self, tiny_trace, tmp_path):
        expected = offline_verdicts(tiny_trace)
        packets = tiny_trace.packets
        half = len(packets) // 2
        snap_path = str(tmp_path / "mid.npz")

        first = await booted(serve_config(snapshot_path=snap_path))
        client = await AsyncFilterClient.connect(*first.data_address)
        masks = await client.filter_stream(frames_of(packets[:half]),
                                           window=4)
        await client.goodbye()
        await client.close()
        await stop(first)

        second = await booted(serve_config(restore_path=snap_path,
                                           workers=2))
        try:
            client = await AsyncFilterClient.connect(*second.data_address)
            masks += await client.filter_stream(frames_of(packets[half:]),
                                                window=4)
            await client.goodbye()
            await client.close()
        finally:
            await stop(second)
        np.testing.assert_array_equal(np.concatenate(masks), expected)


class TestWallClock:
    async def test_wall_mode_stamps_arrival_time_and_rotates(self):
        daemon = await booted(serve_config(
            clock="wall",
            filter=FilterConfig(order=10, num_vectors=4,
                                rotation_interval=0.05)))
        try:
            client = await AsyncFilterClient.connect(*daemon.data_address)
            row = np.zeros(1, dtype=protocol.WIRE_DTYPE)
            row["ts"] = 1e9  # bogus client timestamp: daemon re-stamps
            packets = protocol.decode_packets(row.tobytes())
            mask = await client.filter(packets)
            assert len(mask) == 1
            # The filter's clock is the scheduler's, not the packet's.
            assert daemon.filter.next_rotation < 1.0
            before = daemon.filter.stats.rotations
            await asyncio.sleep(0.25)
            assert daemon.filter.stats.rotations > before
            await client.goodbye()
            await client.close()
        finally:
            await stop(daemon)


class TestDrainSemantics:
    async def test_shutdown_mid_stream_still_answers_everything(
            self, tiny_trace):
        """Frames already received when SIGTERM lands still get verdicts."""
        daemon = await booted(serve_config())
        client = await AsyncFilterClient.connect(*daemon.data_address)
        batches = frames_of(tiny_trace.packets, step=200)
        for batch in batches:
            client._writer.write(protocol.encode_packets(batch))
        await client._writer.drain()
        await asyncio.sleep(0)  # let the reader pick some frames up
        daemon.request_shutdown()
        drained = asyncio.get_running_loop().create_task(daemon.drain())
        received = []
        try:
            while len(received) < len(batches):
                frame_type, body = await asyncio.wait_for(
                    client._recv_frame(), timeout=10.0)
                assert frame_type == protocol.FT_VERDICTS
                received.append(protocol.decode_verdicts(body))
        except ConnectionError:
            pass
        await drained
        # Every frame the daemon read before the listeners closed got an
        # in-order verdict; a tail cut off by the drain is allowed, but
        # what did arrive must prefix-match the offline run.
        got = np.concatenate(received) if received else np.zeros(0, bool)
        expected = offline_verdicts(tiny_trace)[:len(got)]
        np.testing.assert_array_equal(got, expected)
        await client.close()
